"""Shared state for the benchmark harness.

Heavy artefacts (suite characterisation, the trained predictor, the
four-system simulation at paper scale) are built once per session and
shared across all benchmark files.

The headline run uses seed 1, one of the seeds on which the trained ANN
mispredicts one benchmark — matching the paper's setting where the
energy-centric system's naive always-stall rule visibly backfires (see
EXPERIMENTS.md).
"""

import sys
from pathlib import Path

import pytest

# benchmarks/ is not a package, so make the repo root importable: the
# QoS ablation shares its scenario builders with tests/scenarios.py.
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from repro.experiment import (
    default_predictor,
    default_store,
    run_four_systems,
)
from repro.workloads import eembc_suite, uniform_arrivals

#: Seed of the headline evaluation.
SEED = 1

#: Arrival count of the headline evaluation (paper: 5000).
N_JOBS = 5000


@pytest.fixture(scope="session")
def store():
    """Suite characterisation over the full design space (cached)."""
    return default_store()


@pytest.fixture(scope="session")
def predictor(store):
    """The trained bagged-ANN predictor (dataset cached on disk)."""
    return default_predictor(store, seed=SEED)


@pytest.fixture(scope="session")
def arrivals():
    """The paper's 5000 uniformly-distributed arrivals."""
    return uniform_arrivals(eembc_suite(), count=N_JOBS, seed=SEED)


@pytest.fixture(scope="session")
def four_results(store, predictor, arrivals):
    """Base / optimal / energy-centric / proposed at paper scale."""
    return run_four_systems(arrivals, store, predictor)
