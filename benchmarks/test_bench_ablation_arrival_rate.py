"""A2 — ablation: arrival intensity (design choice, paper §V).

The paper fixes one uniform arrival stream; this ablation sweeps the
mean inter-arrival gap to show *where the crossover falls*: with little
contention the energy-centric system's always-stall rule is harmless
(every best core is usually idle), while under contention the proposed
system's energy-advantageous decision pulls decisively ahead.  The
sweep collects per-replication metric snapshots (``collect_metrics``),
and the table reads every number from the aggregated ``observed``
registry scalars rather than the headline result fields.  The timed
kernel is one proposed-system run at the default intensity.
"""

from repro.analysis import format_table, percent_change
from repro.experiment import run_campaign

GAPS = (200_000, 120_000, 80_000, 56_000)
N_JOBS = 1500
SEED = 4


def sweep(store, workers=1):
    """The whole grid as one campaign (replication seed = old run seed)."""
    return run_campaign(
        store,
        policies=("base", "proposed", "energy_centric"),
        seeds=(SEED,),
        loads=tuple((N_JOBS, gap) for gap in GAPS),
        workers=workers,
        collect_metrics=True,
    )


def test_bench_ablation_arrival_rate(benchmark, store):
    benchmark.pedantic(
        lambda: run_campaign(
            store,
            policies=("proposed",),
            seeds=(SEED,),
            loads=((N_JOBS, 56_000),),
        ),
        rounds=3,
        iterations=1,
    )

    campaign = sweep(store)
    rows = []
    ratios = {}
    for gap in GAPS:
        base = campaign.cell("base", mean_interarrival_cycles=gap)
        proposed = campaign.cell("proposed", mean_interarrival_cycles=gap)
        energy_centric = campaign.cell(
            "energy_centric", mean_interarrival_cycles=gap
        )
        proposed_ratio = (
            proposed.observed["sim.energy.total_nj"].mean
            / base.observed["sim.energy.total_nj"].mean
        )
        ec_ratio = (
            energy_centric.observed["sim.energy.total_nj"].mean
            / base.observed["sim.energy.total_nj"].mean
        )
        ratios[gap] = (proposed_ratio, ec_ratio)
        ec_wait = energy_centric.observed["sim.waiting_cycles.mean"].mean
        rows.append((
            gap,
            f"{percent_change(proposed_ratio):+.1f}%",
            f"{percent_change(ec_ratio):+.1f}%",
            int(proposed.observed["sim.non_best_decisions"].mean),
            f"{ec_wait / 1e3:.0f}k",
        ))
    print()
    print(format_table(
        ("interarrival (cycles)", "proposed vs base", "energy-centric vs base",
         "proposed non-best runs", "energy-centric mean wait"),
        rows,
    ))

    # Proposed always saves energy, at every intensity.
    for proposed_ratio, _ in ratios.values():
        assert proposed_ratio < 0.8

    # Crossover: the energy-centric system's disadvantage versus the
    # proposed system widens as contention grows.
    light_gap = ratios[GAPS[0]][1] - ratios[GAPS[0]][0]
    heavy_gap = ratios[GAPS[-1]][1] - ratios[GAPS[-1]][0]
    assert heavy_gap > light_gap
