"""A2 — ablation: arrival intensity (design choice, paper §V).

The paper fixes one uniform arrival stream; this ablation sweeps the
mean inter-arrival gap to show *where the crossover falls*: with little
contention the energy-centric system's always-stall rule is harmless
(every best core is usually idle), while under contention the proposed
system's energy-advantageous decision pulls decisively ahead.  The
timed kernel is one proposed-system run at the default intensity.
"""

from repro.analysis import format_table, percent_change
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    base_system,
    paper_system,
)
from repro.workloads import eembc_suite, uniform_arrivals

GAPS = (200_000, 120_000, 80_000, 56_000)
N_JOBS = 1500


def run(store, policy_name, gap, seed=4):
    arrivals = uniform_arrivals(
        eembc_suite(), count=N_JOBS, seed=seed, mean_interarrival_cycles=gap
    )
    policy = make_policy(policy_name)
    system = base_system() if policy_name == "base" else paper_system()
    sim = SchedulerSimulation(
        system, policy, store,
        predictor=OraclePredictor(store) if policy.uses_predictor else None,
    )
    return sim.run(arrivals)


def test_bench_ablation_arrival_rate(benchmark, store):
    benchmark.pedantic(
        lambda: run(store, "proposed", 56_000), rounds=3, iterations=1
    )

    rows = []
    ratios = {}
    for gap in GAPS:
        base = run(store, "base", gap)
        proposed = run(store, "proposed", gap)
        energy_centric = run(store, "energy_centric", gap)
        proposed_ratio = proposed.total_energy_nj / base.total_energy_nj
        ec_ratio = energy_centric.total_energy_nj / base.total_energy_nj
        ratios[gap] = (proposed_ratio, ec_ratio)
        rows.append((
            gap,
            f"{percent_change(proposed_ratio):+.1f}%",
            f"{percent_change(ec_ratio):+.1f}%",
            proposed.non_best_decisions,
            f"{energy_centric.mean_waiting_cycles / 1e3:.0f}k",
        ))
    print()
    print(format_table(
        ("interarrival (cycles)", "proposed vs base", "energy-centric vs base",
         "proposed non-best runs", "energy-centric mean wait"),
        rows,
    ))

    # Proposed always saves energy, at every intensity.
    for proposed_ratio, _ in ratios.values():
        assert proposed_ratio < 0.8

    # Crossover: the energy-centric system's disadvantage versus the
    # proposed system widens as contention grows.
    light_gap = ratios[GAPS[0]][1] - ratios[GAPS[0]][0]
    heavy_gap = ratios[GAPS[-1]][1] - ratios[GAPS[-1]][0]
    assert heavy_gap > light_gap
