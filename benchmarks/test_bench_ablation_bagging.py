"""A1 — ablation: bagging ensemble size (design choice, paper §IV.D).

The paper trains 30 randomly-initialised ANNs and averages their
outputs.  This ablation sweeps the ensemble size to show what bagging
buys: prediction accuracy and canonical-benchmark energy degradation as
a function of member count.  The timed kernel is a single-member fit
(the unit of cost the ensemble multiplies).
"""

import numpy as np

from repro.analysis import format_table
from repro.ann.metrics import class_accuracy
from repro.ann.training import TrainingConfig
from repro.core.predictor import AnnPredictor
from repro.experiment import default_dataset
from repro.workloads import eembc_suite

ENSEMBLE_SIZES = (1, 3, 10, 30)


def evaluate(n_members, dataset, split, dataset_store, seed=2):
    predictor = AnnPredictor(n_members=n_members, seed=seed)
    # The batched engine keeps the 30-member sweep cheap; equivalence to
    # the sequential reference is covered by tests/ann/test_batched.py
    # and benchmarks/test_bench_predictor_training_speed.py.
    predictor.fit(
        split.train,
        val_dataset=split.val,
        config=TrainingConfig(epochs=200, seed=seed),
        engine="batched",
    )
    pred = predictor.predict_sizes_kb(split.test.features)
    accuracy = class_accuracy(pred, split.test.labels_kb)
    degradations = []
    for spec in eembc_suite():
        char = dataset_store.get(spec.name)
        predicted = predictor.predict_size_kb(spec.name, char.counters)
        degradations.append(
            char.energy_degradation(char.best_config_for_size(predicted))
        )
    return accuracy, float(np.mean(degradations))


def test_bench_ablation_bagging(benchmark):
    dataset, dataset_store = default_dataset(variants_per_family=12, seed=0)
    split = dataset.split(seed=0, by_family=False)

    benchmark.pedantic(
        lambda: evaluate(1, dataset, split, dataset_store),
        rounds=3, iterations=1,
    )

    rows = []
    scores = {}
    for n in ENSEMBLE_SIZES:
        accuracy, degradation = evaluate(n, dataset, split, dataset_store)
        scores[n] = (accuracy, degradation)
        rows.append((n, f"{accuracy:.3f}", f"{degradation * 100:.2f}%"))
    print()
    print(format_table(
        ("ensemble size", "test accuracy", "mean energy degradation"), rows
    ))

    # Bagging must not hurt: the full 30-member ensemble is at least as
    # accurate as a single net, and its degradation no worse.
    assert scores[30][0] >= scores[1][0] - 1e-9
    assert scores[30][1] <= scores[1][1] + 1e-9
