"""A7 — ablation: scaling the system up and down (§III).

"This general structure could be scaled up or down for different system
requirements."  This ablation runs the proposed system on a dual-core
(4+8 KB), the paper's quad-core (2+4+8+8 KB) and an eight-core machine
(2+2+4+4+8+8+8+8 KB) against the *same* arrival stream, reporting energy
per job, makespan and waiting time.  The timed kernel is the eight-core
run.
"""

from repro.analysis import format_table
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    scaled_system,
)
from repro.workloads import eembc_suite, uniform_arrivals

SYSTEMS = {
    "dual (4+8)": (4, 8),
    "paper quad (2+4+8+8)": (2, 4, 8, 8),
    "octa (2+2+4+4+8+8+8+8)": (2, 2, 4, 4, 8, 8, 8, 8),
}
N_JOBS = 1500


def run(store, sizes):
    arrivals = uniform_arrivals(
        eembc_suite(), count=N_JOBS, seed=6, mean_interarrival_cycles=70_000
    )
    sim = SchedulerSimulation(
        scaled_system(sizes),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
    )
    return sim.run(arrivals)


def test_bench_ablation_core_scaling(benchmark, store):
    benchmark.pedantic(
        lambda: run(store, SYSTEMS["octa (2+2+4+4+8+8+8+8)"]),
        rounds=3, iterations=1,
    )

    results = {name: run(store, sizes) for name, sizes in SYSTEMS.items()}
    rows = []
    for name, result in results.items():
        rows.append((
            name,
            f"{result.total_energy_nj / result.jobs_completed / 1e3:.1f} uJ",
            f"{result.makespan_cycles / 1e6:.0f}M",
            f"{result.mean_waiting_cycles / 1e3:.0f}k",
            f"{result.idle_energy_nj / result.total_energy_nj * 100:.0f}%",
        ))
    print()
    print(format_table(
        ("system", "energy per job", "makespan", "mean wait", "idle share"),
        rows,
    ))

    dual = results["dual (4+8)"]
    quad = results["paper quad (2+4+8+8)"]
    octa = results["octa (2+2+4+4+8+8+8+8)"]

    # Everyone finishes the workload.
    for result in results.values():
        assert result.jobs_completed == N_JOBS

    # More cores: less waiting under the same stream...
    assert octa.mean_waiting_cycles < quad.mean_waiting_cycles
    assert quad.mean_waiting_cycles < dual.mean_waiting_cycles

    # ...but more leakage: the idle-energy share grows with core count.
    assert (
        octa.idle_energy_nj / octa.total_energy_nj
        > quad.idle_energy_nj / quad.total_energy_nj
    )
