"""A4 — extension: a private L2 behind the configurable L1 (§VIII).

The paper's future work lists "additional levels of private and shared
caches".  The architecture (its Figure 1) already draws a private,
non-configurable L2 per core; the energy model only sees the L1, so the
evaluation runs without it.  This benchmark quantifies what the L2 would
change: off-chip (memory) accesses per benchmark with and without the
default 32 KB private L2, across representative L1 configurations.  The
timed kernel is one full suite pass through the two-level hierarchy.
"""

from repro.analysis import format_table
from repro.cache import CacheConfig, CacheHierarchy, DEFAULT_L2_CONFIG
from repro.workloads import eembc_suite

L1_CONFIGS = (
    CacheConfig(2, 1, 32),
    CacheConfig(8, 4, 64),
)


def memory_accesses(spec, l1_config, with_l2):
    trace = spec.generate_trace(seed=0)
    hierarchy = CacheHierarchy(
        l1_config, DEFAULT_L2_CONFIG if with_l2 else None
    )
    stats = hierarchy.run_trace(trace.addresses, trace.writes)
    return stats.memory_accesses


def test_bench_ablation_l2(benchmark):
    suite = eembc_suite()[:6]

    benchmark.pedantic(
        lambda: [memory_accesses(s, L1_CONFIGS[0], True) for s in suite],
        rounds=1, iterations=1,
    )

    rows = []
    reductions = []
    for spec in suite:
        row = [spec.name]
        for l1 in L1_CONFIGS:
            without = memory_accesses(spec, l1, with_l2=False)
            with_l2 = memory_accesses(spec, l1, with_l2=True)
            reduction = 1.0 - with_l2 / without if without else 0.0
            reductions.append((spec.name, l1, without, with_l2, reduction))
            row.append(f"{without} -> {with_l2} (-{reduction * 100:.0f}%)")
        rows.append(row)
    print()
    print(format_table(
        ("benchmark",) + tuple(f"memory accesses @ L1 {c.name}"
                               for c in L1_CONFIGS),
        rows,
    ))

    # The L2 never increases memory traffic, and it rescues the small L1
    # substantially for at least one capacity-bound benchmark.
    for _, _, without, with_l2, _ in reductions:
        assert with_l2 <= without
    small_l1 = [r for (_, l1, _, _, r) in reductions if l1.size_kb == 2]
    assert max(small_l1) > 0.5
