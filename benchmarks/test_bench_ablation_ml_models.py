"""A5 — future work: alternative machine-learning predictors (§VIII).

The paper's future work proposes "evaluating different machine learning
techniques".  This ablation compares the paper's bagged ANN against
three from-scratch alternatives through the identical feature pipeline:

* per-domain bagged ANNs (§IV.D's "multiple ANNs each of which would
  be specialized for a different domain"),
* 1-NN (the Euclidean-distance scheduling of Chen et al., the paper's
  related work),
* k-NN (k = 5, distance-weighted),
* a CART regression tree,
* a 20-tree random forest.

Reported per model: paper-style test accuracy, held-out-family accuracy
and the canonical-benchmark energy degradation.  The timed kernel is
one k-NN fit+predict pass.
"""

import numpy as np

from repro.analysis import format_table
from repro.ann.neighbors import KNNRegressor
from repro.ann.training import TrainingConfig
from repro.ann.tree import DecisionTreeRegressor, RandomForestRegressor
from repro.core.predictor import (
    AnnPredictor,
    DomainPredictor,
    RegressorPredictor,
)
from repro.experiment import default_dataset
from repro.workloads import EEMBC_DOMAINS, eembc_suite


def make_models():
    return {
        "bagged ANN (paper)": AnnPredictor(n_members=10, seed=0),
        "per-domain ANNs (sec. IV.D)": DomainPredictor(
            EEMBC_DOMAINS,
            make_predictor=lambda i: AnnPredictor(n_members=10, seed=i),
        ),
        "1-NN (Chen et al.)": RegressorPredictor(KNNRegressor(k=1)),
        "5-NN": RegressorPredictor(KNNRegressor(k=5)),
        "decision tree": RegressorPredictor(
            DecisionTreeRegressor(max_depth=6)
        ),
        "random forest": RegressorPredictor(
            RandomForestRegressor(n_trees=20, max_depth=6, seed=0)
        ),
    }


def fit(model, split):
    if isinstance(model, AnnPredictor):
        model.fit(
            split.train,
            val_dataset=split.val,
            config=TrainingConfig(epochs=200, seed=0),
        )
    elif isinstance(model, DomainPredictor):
        model.fit(split.train, config=TrainingConfig(epochs=200, seed=0))
    else:
        model.fit(split.train)
    return model


def degradation(model, dataset_store):
    values = []
    for spec in eembc_suite():
        char = dataset_store.get(spec.name)
        predicted = model.predict_size_kb(spec.name, char.counters)
        values.append(
            char.energy_degradation(char.best_config_for_size(predicted))
        )
    return float(np.mean(values))


def accuracy(model, part, dataset_store):
    """Routed per-sample accuracy (works for the domain predictor too)."""
    correct = 0
    for name, label in zip(part.names, part.labels_kb):
        predicted = model.predict_size_kb(name, dataset_store.counters(name))
        correct += predicted == label
    return correct / len(part)


def test_bench_ablation_ml_models(benchmark):
    dataset, dataset_store = default_dataset(variants_per_family=12, seed=0)
    split = dataset.split(seed=0, by_family=False)
    family_split = dataset.split(seed=0, by_family=True)

    def knn_pass():
        model = RegressorPredictor(KNNRegressor(k=5))
        model.fit(split.train)
        return model.predict_sizes_kb(split.test.features)

    benchmark.pedantic(knn_pass, rounds=3, iterations=1)

    rows = []
    scores = {}
    for name, model in make_models().items():
        fit(model, split)
        test_acc = accuracy(model, split.test, dataset_store)
        degr = degradation(model, dataset_store)

        family_model = make_models()[name]
        fit(family_model, family_split)
        family_acc = accuracy(family_model, family_split.test, dataset_store)
        scores[name] = (test_acc, degr, family_acc)
        rows.append((name, f"{test_acc:.3f}", f"{degr * 100:.2f}%",
                     f"{family_acc:.3f}"))

    print()
    print(format_table(
        ("model", "test accuracy", "canonical degradation",
         "held-out-family accuracy"),
        rows,
    ))

    # Every model must be usable (beats always-predict-majority), and
    # the paper's bagged ANN must satisfy its own < 2% claim.
    majority = max(
        np.mean(split.test.labels_kb == s) for s in (2.0, 4.0, 8.0)
    )
    for name, (test_acc, degr, _) in scores.items():
        assert test_acc > majority, name
    assert scores["bagged ANN (paper)"][1] < 0.02
