"""A11 — limitation probe: phased applications.

The paper's scheduler profiles each application *once* and the tuning
heuristic converges to a *single* configuration per core — assumptions
that hold for steady kernels but not for programs with distinct
execution phases (the phase-tracking line of related work the paper
cites).  This ablation builds phased benchmarks whose phases prefer
different cache sizes, then compares:

* the paper's whole-program treatment (one best configuration), and
* a per-phase oracle that re-characterises each phase separately and
  charges each phase its own best configuration,

quantifying the energy the single-configuration assumption leaves on
the table.  The timed kernel is one phased characterisation.
"""

from repro.analysis import format_table
from repro.characterization import characterize_benchmark
from repro.workloads import (
    BenchmarkSpec,
    InstructionMix,
    LoopedArray,
    PhasedTraceMix,
    SequentialStream,
    TraceMix,
)

MIX = InstructionMix(load=0.28, store=0.10, branch=0.12, int_op=0.40,
                     fp_op=0.10)


def phase_mixes():
    """A small-working-set phase and a large-working-set phase."""
    small = TraceMix(
        components=((LoopedArray(region_bytes=1024, stride=4), 3.0),
                    (SequentialStream(region_bytes=16_384, stride=4), 0.5)),
    )
    large = TraceMix(
        components=((LoopedArray(region_bytes=6656, stride=8), 3.0),),
    )
    return small, large


def make_phased(share_small):
    small, large = phase_mixes()
    return BenchmarkSpec(
        name=f"phased_{int(share_small * 100)}",
        family="phased",
        instructions=80_000,
        mix=MIX,
        trace_mix=PhasedTraceMix(
            phases=((small, share_small), (large, 1.0 - share_small)),
        ),
        description="Synthetic two-phase program: small-WS compute phase "
                    "followed by a large-WS phase.",
    )


def make_phase_benchmark(mix, name, instructions):
    return BenchmarkSpec(
        name=name, family="phase", instructions=instructions, mix=MIX,
        trace_mix=mix,
    )


def test_bench_ablation_phases(benchmark):
    benchmark.pedantic(
        lambda: characterize_benchmark(make_phased(0.5)),
        rounds=3, iterations=1,
    )

    small, large = phase_mixes()
    rows = []
    gaps = []
    for share_small in (0.8, 0.5, 0.2):
        spec = make_phased(share_small)
        whole = characterize_benchmark(spec)
        whole_best = whole.best_config()
        whole_energy = whole.result(whole_best).total_energy_nj

        # Per-phase oracle: each phase characterised as its own program
        # with its share of the instruction stream.
        n_small = int(spec.instructions * share_small)
        phase_specs = (
            make_phase_benchmark(small, f"{spec.name}.small", n_small),
            make_phase_benchmark(large, f"{spec.name}.large",
                                 spec.instructions - n_small),
        )
        phase_energy = 0.0
        phase_bests = []
        for phase_spec in phase_specs:
            char = characterize_benchmark(phase_spec)
            best = char.best_config()
            phase_bests.append(best.name)
            phase_energy += char.result(best).total_energy_nj

        gap = whole_energy / phase_energy - 1.0
        gaps.append(gap)
        rows.append((
            f"{int(share_small * 100)}% small-WS phase",
            whole_best.name,
            " / ".join(phase_bests),
            f"{gap * 100:+.1f}%",
        ))

    print()
    print(format_table(
        ("phase split", "whole-program best", "per-phase bests",
         "energy left on the table"),
        rows,
    ))
    print("(positive = the single-configuration assumption costs energy "
          "on phased programs)")

    # The single-configuration treatment is never better than the
    # per-phase oracle, and the phases genuinely disagree about the
    # best configuration for at least one split.
    assert all(gap >= -0.01 for gap in gaps)
    assert max(gaps) > 0.02
