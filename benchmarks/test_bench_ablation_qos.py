"""A6 — future work: priority and deadline scheduling (§VIII).

The paper's future work includes "considering systems with preemption,
priority, and deadlines".  This ablation annotates the headline arrival
stream with deadlines (4x the base-configuration execution time) and
priorities, then runs the proposed system under three ready-queue
disciplines:

* FIFO — the paper's discipline,
* static priority (FIFO within a level),
* EDF — earliest deadline first.

plus preemptive variants of the latter two.

Reported: deadline-miss rate, mean and high-priority turnaround, total
energy and preemption counts.  Expected shape: EDF cuts deadline misses
at unchanged energy (the same executions happen, reordered); naive
preemption buys high-priority responsiveness but its churn (lost cache
state, reconfigurations) worsens the aggregate.  The timed kernel is
one EDF run.
"""

from repro.analysis import format_table
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)

from tests.scenarios import qos_headline_arrivals

DISCIPLINES = ("fifo", "priority", "edf")
N_JOBS = 1500


def annotated_arrivals(store, seed=5):
    return qos_headline_arrivals(store, count=N_JOBS, seed=seed)


def run(store, arrivals, discipline, preemptive=False):
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        discipline=discipline,
        preemptive=preemptive,
    )
    return sim.run(arrivals)


def test_bench_ablation_qos(benchmark, store):
    arrivals = annotated_arrivals(store)

    benchmark.pedantic(
        lambda: run(store, arrivals, "edf"), rounds=3, iterations=1
    )

    results = {d: run(store, arrivals, d) for d in DISCIPLINES}
    for d in ("priority", "edf"):
        results[f"{d}+preempt"] = run(store, arrivals, d, preemptive=True)

    def high_priority_turnaround(result):
        high = [r for r in result.jobs if r.priority == 2]
        return sum(r.turnaround_cycles for r in high) / len(high)

    rows = []
    for discipline, result in results.items():
        rows.append((
            discipline,
            f"{result.deadline_miss_rate * 100:.1f}%",
            f"{result.mean_turnaround_cycles / 1e3:.0f}k",
            f"{high_priority_turnaround(result) / 1e3:.0f}k",
            f"{result.total_energy_nj / 1e6:.2f} mJ",
            result.preemption_count,
        ))
    print()
    print(format_table(
        ("discipline", "deadline miss rate", "mean turnaround",
         "high-prio turnaround", "total energy", "preemptions"),
        rows,
    ))

    # All variants complete the same jobs.
    for result in results.values():
        assert result.jobs_completed == N_JOBS
        assert result.deadline_jobs == N_JOBS

    # Preemption fires under this contention, and buys what preemption
    # is for — high-priority responsiveness — at the cost of churn for
    # the aggregate (naive preemption discards cache state, so the mean
    # turnaround and miss rate can worsen; the table shows both sides).
    assert results["priority+preempt"].preemption_count > 0
    assert results["edf+preempt"].preemption_count > 0
    assert (
        high_priority_turnaround(results["priority+preempt"])
        < high_priority_turnaround(results["priority"])
    )

    # EDF does not miss more deadlines than FIFO.
    assert (
        results["edf"].deadline_miss_rate
        <= results["fifo"].deadline_miss_rate + 1e-9
    )

    # Reordering barely moves total energy (within 10%): the executions
    # are the same, only idle-time placement shifts.
    energies = [r.total_energy_nj for r in results.values()]
    assert max(energies) / min(energies) < 1.10
