"""A9 — robustness: sensitivity of the headline result to model constants.

The reproduction substitutes synthetic energy/timing constants for
CACTI and the authors' DRAM datasheet (DESIGN.md §2), so the headline
claim should not hinge on those choices.  This ablation sweeps the two
most influential constants —

* the static-energy fraction (the "10 %" of Figure 4's E(per Kbyte)),
* the off-chip miss latency (the paper's 40× L1 fetch),

re-characterises the suite and re-runs base vs proposed for each
setting.  The claim under test: **the proposed system saves substantial
total energy at every setting**.  Energy numbers are read from the
campaign's aggregated metrics-registry scalars (``collect_metrics``),
not the headline result fields.  The timed kernel is one
characterise+simulate pass.
"""

from repro.analysis import format_table, percent_change
from repro.characterization import CharacterizationStore, characterize_suite
from repro.energy import EnergyModel, MemoryModel
from repro.energy.tables import EnergyTable
from repro.experiment import run_campaign
from repro.workloads import eembc_suite

SETTINGS = (
    ("paper defaults", dict()),
    ("static 5% (leakier-logic node)", dict(static_fraction=0.05)),
    ("static 20%", dict(static_fraction=0.20)),
    ("miss latency 20 (fast DRAM)", dict(miss_latency=20)),
    ("miss latency 80 (slow DRAM)", dict(miss_latency=80)),
)
N_JOBS = 1200


def build_model(static_fraction=0.10, miss_latency=40):
    memory = MemoryModel(
        miss_latency_cycles=miss_latency,
        bandwidth_cycles_per_chunk=miss_latency // 2,
    )
    return EnergyModel(memory=memory, static_fraction=static_fraction)


def evaluate(model):
    store = CharacterizationStore(
        characterize_suite(eembc_suite(), energy_model=model)
    )
    campaign = run_campaign(
        store,
        policies=("base", "proposed"),
        seeds=(8,),
        loads=((N_JOBS, 56_000),),
        energy_table=EnergyTable(model),
        collect_metrics=True,
    )
    return campaign


def test_bench_ablation_sensitivity(benchmark):
    benchmark.pedantic(
        lambda: evaluate(build_model()), rounds=1, iterations=1
    )

    rows = []
    savings = {}
    for label, overrides in SETTINGS:
        campaign = evaluate(build_model(**overrides))
        base = campaign.cell("base")
        proposed = campaign.cell("proposed")
        ratio = (
            proposed.observed["sim.energy.total_nj"].mean
            / base.observed["sim.energy.total_nj"].mean
        )
        savings[label] = -percent_change(ratio)
        idle_share = (
            base.observed["sim.energy.idle_nj"].mean
            / base.observed["sim.energy.total_nj"].mean
        )
        rows.append((
            label,
            f"{savings[label]:.1f}%",
            f"{idle_share * 100:.0f}%",
        ))
    print()
    print(format_table(
        ("energy-model setting", "proposed saving vs base",
         "base idle share"),
        rows,
    ))

    # The headline claim survives every constant choice: the proposed
    # system always saves at least 25% (paper: ~28%).
    for label, saving in savings.items():
        assert saving > 25.0, label
