"""A12 — future work: a shared L2 and inter-core interference (§VIII).

The paper's future work names "additional levels of private and shared
caches".  A4 covers the private L2; this ablation adds the shared case
and the phenomenon only sharing exhibits: one core's misses evicting
another core's working set.  Four memory-hungry benchmarks run
concurrently behind a shared L2, and each core's off-chip accesses are
compared with running alone — the interference factor.

Why it matters for the paper's method: per-application profiling (the
basis of the ANN's features and the profiling table's energies) is
measured in isolation; interference makes those measurements optimistic
exactly when the machine is busy, which is an assumption the paper's
MATLAB evaluation shares.  The timed kernel is one four-core shared
replay.
"""

from repro.analysis import format_table
from repro.cache import CacheConfig, SharedL2System, interference_penalty
from repro.workloads import eembc_benchmark

HEAVY = ("cacheb", "matrix", "pntrch", "tblook")
LIGHT = ("puwmod", "bitmnp", "iirflt", "rspeed")
L1 = CacheConfig(2, 1, 32)
TRACE_LEN = 12_000


def traces_for(names):
    return [
        eembc_benchmark(name).generate_trace(0).addresses[:TRACE_LEN]
        for name in names
    ]


def test_bench_ablation_shared_l2(benchmark):
    heavy_traces = traces_for(HEAVY)
    light_traces = traces_for(LIGHT)

    benchmark.pedantic(
        lambda: SharedL2System([L1] * 4, CacheConfig(16, 4, 64)).run(
            heavy_traces
        ),
        rounds=1, iterations=1,
    )

    rows = []
    worst = {}
    typical = {}
    for label, names, traces in (
        ("4 memory-hungry cores", HEAVY, heavy_traces),
        ("4 small-working-set cores", LIGHT, light_traces),
    ):
        for l2_kb in (16, 32):
            penalties = interference_penalty(
                [L1] * 4, traces, CacheConfig(l2_kb, 4, 64)
            )
            ordered = sorted(penalties.values())
            worst[(label, l2_kb)] = ordered[-1]
            typical[(label, l2_kb)] = ordered[len(ordered) // 2]
            rows.append((
                label,
                f"{l2_kb} KB",
                *(f"{penalties[i]:.2f}x" for i in range(4)),
            ))
    print()
    print(format_table(
        ("workload", "shared L2", "core 1", "core 2", "core 3", "core 4"),
        rows,
    ))
    print("(per-core off-chip accesses vs running alone; 1.00x = no "
          "interference)")

    # Small working sets mostly fit together: the typical core is
    # untouched and even the worst (rspeed's streaming buffer) stays
    # far below the heavy cores' penalties.
    assert typical[("4 small-working-set cores", 16)] < 1.2
    assert worst[("4 small-working-set cores", 16)] < 2.5
    # Memory-hungry neighbours interfere heavily at 16 KB and a larger
    # shared L2 relieves (but does not eliminate) it.
    assert worst[("4 memory-hungry cores", 16)] > 3.0
    assert (
        worst[("4 memory-hungry cores", 32)]
        < worst[("4 memory-hungry cores", 16)]
    )
