"""A3 — ablation: tuning-heuristic parameter order (design choice §IV.F).

The paper sweeps associativity before line size "since the associativity
has the second largest impact on energy after the size".  This ablation
runs both orders over every (benchmark, core size) pair and compares
exploration cost and the quality of the configuration each converges to.
The timed kernel is one full assoc-first sweep across the suite.
"""

from repro.analysis import format_table
from repro.cache import CACHE_SIZES_KB
from repro.core.tuning import TuningSession
from repro.workloads import eembc_suite


def sweep(store, line_first):
    explored = 0
    hits = 0
    total_gap = 0.0
    pairs = 0
    for spec in eembc_suite():
        char = store.get(spec.name)
        for size in CACHE_SIZES_KB:
            session = TuningSession(size_kb=size, line_first=line_first)
            while not session.done:
                config = session.next_config()
                session.record(config, char.result(config).total_energy_nj)
            true_best = char.best_config_for_size(size)
            explored += session.exploration_count
            hits += session.best_config == true_best
            total_gap += (
                session.best_energy_nj
                / char.result(true_best).total_energy_nj
                - 1.0
            )
            pairs += 1
    return explored, hits / pairs, total_gap / pairs


def test_bench_ablation_tuning_order(benchmark, store):
    assoc_first = benchmark.pedantic(
        lambda: sweep(store, line_first=False), rounds=3, iterations=1
    )
    line_first = sweep(store, line_first=True)

    rows = [
        ("assoc first (paper)", assoc_first[0], f"{assoc_first[1]:.2f}",
         f"{assoc_first[2] * 100:.2f}%"),
        ("line first", line_first[0], f"{line_first[1]:.2f}",
         f"{line_first[2] * 100:.2f}%"),
    ]
    print()
    print(format_table(
        ("order", "total configs explored", "true-best hit rate",
         "mean energy gap"),
        rows,
    ))

    # The paper's order must be at least as good on converged quality.
    assert assoc_first[2] <= line_first[2] + 1e-9

    # Both orders stay within the heuristic's exploration bounds.
    pairs = len(eembc_suite()) * len(CACHE_SIZES_KB)
    assert assoc_first[0] <= 5 * pairs
    assert line_first[0] <= 5 * pairs
