"""A8 — extension: write-back caches and writeback energy.

Figure 4 models a write-through L1 (every write also goes down, and no
writeback term exists).  This ablation characterises a subset of the
suite with write-back caches and an energy model extended with one
off-chip line-write per eviction of a dirty line, asking two questions:

* how much dynamic energy does the missing writeback term represent?
* does the choice flip any benchmark's best configuration?

The timed kernel is one write-back characterisation (the reference
cache model, several times slower than the write-through fast path).
"""

from repro.analysis import format_table
from repro.characterization import characterize_benchmark
from repro.energy import EnergyModel
from repro.workloads import eembc_benchmark

#: Store-heavy and store-light benchmarks.
SUBSET = ("matrix", "idctrn", "canrdr", "pntrch")


def test_bench_ablation_writeback(benchmark):
    wb_model = EnergyModel(include_writeback_energy=True)

    benchmark.pedantic(
        lambda: characterize_benchmark(
            eembc_benchmark("idctrn"), energy_model=wb_model, write_back=True
        ),
        rounds=1, iterations=1,
    )

    rows = []
    flips = 0
    for name in SUBSET:
        spec = eembc_benchmark(name)
        wt = characterize_benchmark(spec)
        wb = characterize_benchmark(
            spec, energy_model=wb_model, write_back=True
        )
        wt_best = wt.best_config()
        wb_best = wb.best_config()
        flips += wt_best != wb_best
        # Writeback share of dynamic energy at the write-back best config.
        stats = wb.result(wb_best).stats
        writeback_nj = stats.writebacks * wb_model.writeback_energy_nj(wb_best)
        share = writeback_nj / wb.result(wb_best).estimate.energy.dynamic_nj
        rows.append((
            name,
            wt_best.name,
            wb_best.name,
            stats.writebacks,
            f"{share * 100:.1f}%",
        ))
    print()
    print(format_table(
        ("benchmark", "best (write-through)", "best (write-back + wb energy)",
         "writebacks", "writeback share of dynamic"),
        rows,
    ))
    print(f"best-configuration flips: {flips}/{len(SUBSET)}")

    # The writeback term is real but second-order: it never dominates
    # dynamic energy for these kernels.
    for _, _, _, writebacks, share_text in rows:
        assert writebacks >= 0
        assert float(share_text.rstrip("%")) < 50.0
