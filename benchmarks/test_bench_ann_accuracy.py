"""E4 — ANN prediction quality (paper §IV.D).

Paper claim: the bagged 30-ANN ensemble's predicted best cache sizes
"only degraded the average energy consumption by less than 2 % over all
the benchmarks as compared to the optimal cache size".

Reported here at full paper scale (30 members, {n, 18, 5, 1} topology,
70/15/15 split): per-benchmark predictions, the mean/max energy
degradation (paper-style shuffled split), and — beyond the paper — the
held-out-family generalisation accuracy.  The timed kernel is one
ensemble training run.

Run with ``pytest benchmarks/test_bench_ann_accuracy.py --benchmark-only
-s`` to see the tables.
"""

import numpy as np

from repro.analysis import format_table
from repro.ann.metrics import class_accuracy
from repro.ann.training import TrainingConfig
from repro.core.predictor import AnnPredictor
from repro.experiment import default_dataset
from repro.workloads import eembc_suite


def test_bench_ann_accuracy(benchmark, store):
    dataset, dataset_store = default_dataset(variants_per_family=24, seed=0)
    split = dataset.split(seed=0, by_family=False)

    def train():
        predictor = AnnPredictor(n_members=30, seed=0)
        predictor.fit(
            split.train,
            val_dataset=split.val,
            config=TrainingConfig(epochs=300, seed=0),
        )
        return predictor

    predictor = benchmark.pedantic(train, rounds=1, iterations=1)

    rows = []
    degradations = []
    for spec in eembc_suite():
        char = dataset_store.get(spec.name)
        predicted = predictor.predict_size_kb(spec.name, char.counters)
        degradation = char.energy_degradation(
            char.best_config_for_size(predicted)
        )
        degradations.append(degradation)
        rows.append((spec.name, char.best_size_kb(), predicted,
                     f"{degradation * 100:.2f}%"))
    print()
    print(format_table(
        ("benchmark", "true best (KB)", "predicted (KB)", "degradation"),
        rows,
    ))

    test_pred = predictor.predict_sizes_kb(split.test.features)
    test_acc = class_accuracy(test_pred, split.test.labels_kb)
    mean_degr = float(np.mean(degradations))
    print()
    print(f"test-split accuracy (paper-style shuffled split): {test_acc:.3f}")
    print(f"mean energy degradation: {mean_degr * 100:.2f}%  (paper: < 2%)")

    # Extension: held-out-family generalisation (not measured in the
    # paper; families unseen in training).
    family_split = dataset.split(seed=0, by_family=True)
    family_predictor = AnnPredictor(n_members=10, seed=0)
    family_predictor.fit(
        family_split.train,
        val_dataset=family_split.val,
        config=TrainingConfig(epochs=200, seed=0),
    )
    family_pred = family_predictor.predict_sizes_kb(family_split.test.features)
    family_acc = class_accuracy(family_pred, family_split.test.labels_kb)
    print(f"held-out-family accuracy (beyond the paper): {family_acc:.3f}")

    assert mean_degr < 0.02  # the paper's claim
    assert test_acc > 0.8
