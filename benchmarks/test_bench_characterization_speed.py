"""P1 — characterisation engine speed: stack distance vs per-config replay.

The headline number of the performance work: one full-suite
characterisation (15 benchmarks x 18 configurations) measured with the
single-pass stack-distance engine against the seed implementation's
per-configuration trace replay.  Both engines are run through the same
:func:`characterize_suite` front end, so the ratio includes trace
generation and energy modelling — it is the end-to-end speedup a user
sees, not a cherry-picked kernel ratio.

Run with ``pytest benchmarks/test_bench_characterization_speed.py
--benchmark-only -s`` to see the throughput table.
"""

import time

from repro.analysis import format_table
from repro.characterization import characterize_suite
from repro.characterization.parallel import characterize_suite_parallel
from repro.workloads import eembc_suite

#: Required end-to-end advantage of the stack-distance engine.
MIN_SPEEDUP = 3.0

#: Timing repetitions; the minimum is reported (least-noise estimator).
ROUNDS = 3


def _time_suite(engine: str) -> float:
    specs = eembc_suite()
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        characterize_suite(specs, seed=0, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_characterization_speed(benchmark):
    specs = eembc_suite()

    # Warm both paths (imports, allocator) before timing anything.
    characterize_suite(specs[:1], seed=0, engine="legacy")
    characterize_suite(specs[:1], seed=0)

    legacy_seconds = _time_suite("legacy")
    stackdist_seconds = _time_suite("stackdist")
    speedup = legacy_seconds / stackdist_seconds

    # pytest-benchmark records the new engine as the tracked series.
    result = benchmark.pedantic(
        lambda: characterize_suite_parallel(specs, seed=0, workers=1),
        rounds=ROUNDS,
        iterations=1,
    )
    timing = result.timing

    print()
    print("Full-suite characterisation (15 benchmarks x 18 configs)")
    print(format_table(
        ("engine", "wall s", "traces/s", "accesses/s"),
        (
            (
                "legacy (per-config replay)",
                f"{legacy_seconds:.3f}",
                f"{len(specs) / legacy_seconds:.1f}",
                f"{timing.total_accesses / legacy_seconds:,.0f}",
            ),
            (
                "stackdist (single pass)",
                f"{stackdist_seconds:.3f}",
                f"{len(specs) / stackdist_seconds:.1f}",
                f"{timing.total_accesses / stackdist_seconds:,.0f}",
            ),
        ),
    ))
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    print(timing.summary())

    # Same numbers, much faster.
    legacy = characterize_suite(specs, seed=0, engine="legacy")
    fast = result.characterizations
    assert set(legacy) == set(fast)
    for name in legacy:
        assert legacy[name].counters == fast[name].counters
        for config in legacy[name].results:
            assert (
                legacy[name].result(config).stats
                == fast[name].result(config).stats
            )

    assert speedup >= MIN_SPEEDUP
