"""E2 — Figure 6: idle/dynamic/total energy normalised to the base system.

Paper numbers (percent change vs base):

=================  =====  ========  ======
system             idle   dynamic   total
=================  =====  ========  ======
optimal            -3%    -35%      -6%
energy-centric     +6%    -58%      +2%
proposed (ours)    -27%   -55%      -29%   (abstract: 28% average)
=================  =====  ========  ======

The reproduction checks the *shape*: the proposed system wins total
energy by a wide margin; the energy-centric system has the deepest
dynamic reduction but pays so much idle energy that its total ends near
the base system; the optimal system sits between them with the weakest
dynamic reduction of the three.  The timed kernel is one proposed-system
simulation at 1000 jobs.

Run with ``pytest benchmarks/test_bench_fig6_energy_vs_base.py
--benchmark-only -s`` to see the figure.
"""

from repro.analysis import normalize_results, percent_change, render_figure6
from repro.core import OraclePredictor, SchedulerSimulation, make_policy, paper_system
from repro.workloads import eembc_suite, uniform_arrivals


def test_bench_fig6_energy_vs_base(benchmark, store, four_results):
    def run_proposed():
        arrivals = uniform_arrivals(eembc_suite(), count=1000, seed=2)
        sim = SchedulerSimulation(
            paper_system(),
            make_policy("proposed"),
            store,
            predictor=OraclePredictor(store),
        )
        return sim.run(arrivals)

    timed = benchmark.pedantic(run_proposed, rounds=3, iterations=1)
    assert timed.jobs_completed == 1000

    print()
    print(render_figure6(four_results))

    normalized = normalize_results(four_results, "base")
    total = {name: r["total_energy"] for name, r in normalized.items()}
    dynamic = {name: r["dynamic_energy"] for name, r in normalized.items()}
    idle = {name: r["idle_energy"] for name, r in normalized.items()}

    print()
    print("shape checks vs paper Figure 6:")
    print(f"  proposed total: {percent_change(total['proposed']):+.1f}% "
          "(paper -29%)")
    print(f"  optimal  total: {percent_change(total['optimal']):+.1f}% "
          "(paper -6%)")
    print(f"  e-centr. total: {percent_change(total['energy_centric']):+.1f}% "
          "(paper +2%)")

    # Who wins: proposed < optimal < energy-centric in total energy.
    assert total["proposed"] < total["optimal"]
    assert total["optimal"] < total["energy_centric"]
    assert total["proposed"] < 0.75  # substantial reduction vs base

    # Energy-centric: deepest dynamic cut of all systems...
    assert dynamic["energy_centric"] <= min(
        dynamic["optimal"], 1.02 * dynamic["proposed"]
    )
    # ...but the worst idle energy, above the base system's.
    assert idle["energy_centric"] > 1.0
    assert idle["energy_centric"] > idle["proposed"]

    # Optimal has the weakest dynamic reduction of the three systems.
    assert dynamic["optimal"] > dynamic["energy_centric"]
    assert dynamic["optimal"] > dynamic["proposed"]
