"""E3 — Figure 7: cycles and energy normalised to the optimal system.

Paper numbers (percent change vs the optimal system):

=================  =======  =====  ========  ======
system             cycles   idle   dynamic   total
=================  =======  =====  ========  ======
energy-centric     -17%     +10%   -35%      +9%
proposed (ours)    -25%     -26%   -31%      -24%
=================  =======  =====  ========  ======

Shape checks: the proposed system is faster than the optimal system and
reduces its total energy; the energy-centric system *increases* total
energy over the optimal system despite a dynamic-energy win.  One known
deviation (EXPERIMENTS.md): in this substrate the energy-centric
system's per-best-core queueing makes it *slower* than the optimal
system, where the paper reports it 17 % faster.  The timed kernel is one
optimal-system simulation at 1000 jobs (exhaustive exploration included).

Run with ``pytest benchmarks/test_bench_fig7_vs_optimal.py
--benchmark-only -s`` to see the figure.
"""

from repro.analysis import normalize_results, percent_change, render_figure7
from repro.core import SchedulerSimulation, make_policy, paper_system
from repro.workloads import eembc_suite, uniform_arrivals


def test_bench_fig7_vs_optimal(benchmark, store, four_results):
    def run_optimal():
        arrivals = uniform_arrivals(eembc_suite(), count=1000, seed=2)
        sim = SchedulerSimulation(
            paper_system(), make_policy("optimal"), store
        )
        return sim.run(arrivals)

    timed = benchmark.pedantic(run_optimal, rounds=3, iterations=1)
    assert timed.jobs_completed == 1000

    print()
    print(render_figure7(four_results))

    normalized = normalize_results(four_results, "optimal")
    proposed = normalized["proposed"]
    energy_centric = normalized["energy_centric"]

    print()
    print("shape checks vs paper Figure 7:")
    print(f"  proposed cycles: {percent_change(proposed['cycles']):+.1f}% "
          "(paper -25%)")
    print(f"  proposed total:  {percent_change(proposed['total_energy']):+.1f}% "
          "(paper -24%)")
    print(f"  e-centr. total:  "
          f"{percent_change(energy_centric['total_energy']):+.1f}% (paper +9%)")
    print(f"  e-centr. cycles: "
          f"{percent_change(energy_centric['cycles']):+.1f}% "
          "(paper -17%; known deviation, see EXPERIMENTS.md)")

    # The proposed system beats the optimal system on both axes.
    assert proposed["cycles"] < 1.0
    assert proposed["total_energy"] < 1.0
    assert proposed["dynamic_energy"] < 1.0

    # The energy-centric system wins dynamic energy but loses total.
    assert energy_centric["dynamic_energy"] < 1.0
    assert energy_centric["total_energy"] > 1.0

    # And the proposed system beats the energy-centric system outright
    # (§VI: naive always-stall "can not be made naively").
    assert proposed["total_energy"] < energy_centric["total_energy"]
    assert proposed["cycles"] < energy_centric["cycles"]
