"""P2 — ensemble-training speed: batched stacked pass vs sequential loop.

The headline number of the batched training engine: fitting the paper's
full 30-member bagged ensemble through :meth:`AnnPredictor.fit` with the
vectorised stacked-pass trainer against the per-member reference loop.
Both engines run the identical pipeline (log-compress → standardise →
bootstrap → MSE/Adam with early stopping), so the ratio is the
end-to-end speedup a user sees — and the resulting members must be
*identical*, which is asserted per member below.

Run with ``pytest benchmarks/test_bench_predictor_training_speed.py
--benchmark-only -s`` to see the timing table.
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.ann.bagging import PAPER_ENSEMBLE_SIZE
from repro.ann.training import TrainingConfig
from repro.core.predictor import AnnPredictor
from repro.experiment import default_dataset

#: Required end-to-end advantage of the batched engine.
MIN_SPEEDUP = 3.0

#: Timing repetitions; the minimum is reported (least-noise estimator).
ROUNDS = 3

#: The paper's training budget for the headline comparison.
EPOCHS = 200

SEED = 0


def _fit(split, engine: str) -> AnnPredictor:
    predictor = AnnPredictor(n_members=PAPER_ENSEMBLE_SIZE, seed=SEED)
    predictor.fit(
        split.train,
        val_dataset=split.val,
        config=TrainingConfig(epochs=EPOCHS, seed=SEED),
        engine=engine,
    )
    return predictor


def _time_fit(split, engine: str) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _fit(split, engine)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_predictor_training_speed(benchmark):
    dataset, _ = default_dataset(variants_per_family=12, seed=SEED)
    split = dataset.split(seed=SEED, by_family=False)

    # Warm both paths (imports, allocator) before timing anything.
    warm = AnnPredictor(n_members=2, seed=SEED)
    warm.fit(split.train, val_dataset=split.val,
             config=TrainingConfig(epochs=2, seed=SEED),
             engine="sequential")
    warm = AnnPredictor(n_members=2, seed=SEED)
    warm.fit(split.train, val_dataset=split.val,
             config=TrainingConfig(epochs=2, seed=SEED),
             engine="batched")

    sequential_seconds = _time_fit(split, "sequential")
    batched_seconds = _time_fit(split, "batched")
    speedup = sequential_seconds / batched_seconds

    # pytest-benchmark records the batched engine as the tracked series.
    benchmark.pedantic(
        lambda: _fit(split, "batched"), rounds=ROUNDS, iterations=1
    )

    print()
    print(
        f"{PAPER_ENSEMBLE_SIZE}-member ensemble fit "
        f"({len(split.train)} train samples, {EPOCHS} epochs max)"
    )
    print(format_table(
        ("engine", "wall s", "members/s"),
        (
            (
                "sequential (per-member loop)",
                f"{sequential_seconds:.3f}",
                f"{PAPER_ENSEMBLE_SIZE / sequential_seconds:.1f}",
            ),
            (
                "batched (stacked pass)",
                f"{batched_seconds:.3f}",
                f"{PAPER_ENSEMBLE_SIZE / batched_seconds:.1f}",
            ),
        ),
    ))
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")

    # Same members, much faster: every ensemble member's predictions on
    # the full dataset must match bit for bit.
    reference = _fit(split, "sequential")
    fast = _fit(split, "batched")
    x = fast.scaler.transform(fast._pre(dataset.features))
    ref_members = reference.ensemble.member_predictions(x)
    fast_members = fast.ensemble.member_predictions(x)
    np.testing.assert_array_equal(ref_members, fast_members)
    assert (
        fast.predict_sizes_kb(dataset.features)
        == reference.predict_sizes_kb(dataset.features)
    ).all()

    assert speedup >= MIN_SPEEDUP
