"""E5 — profiling overhead (paper §VI).

Paper claim: "Profiling only introduced less than .5% overhead in total
energy consumption."

Measured two ways:

* the *counter overhead* — the extra cycles/energy charged for reading
  and storing the hardware counters during a profiling run (compared to
  a run with the overhead knob at zero);
* the *profiling-run penalty* — the full cost of the policy executing
  each new application once in the pessimistic base configuration,
  measured against a run with zero counter overhead and against §IV.B's
  alternative of pre-loaded design-time profiling information (no
  run-time profiling or tuning at all).

The timed kernel is one proposed-system simulation.
"""

from repro.core import OraclePredictor, SchedulerSimulation, make_policy, paper_system
from repro.workloads import eembc_suite, uniform_arrivals


def run_proposed(store, overhead_fraction, preload=False):
    arrivals = uniform_arrivals(eembc_suite(), count=1500, seed=3)
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        profiling_overhead_fraction=overhead_fraction,
        preload_profiles=preload,
    )
    return sim.run(arrivals)


def test_bench_profiling_overhead(benchmark, store):
    with_overhead = benchmark.pedantic(
        lambda: run_proposed(store, 0.003), rounds=3, iterations=1
    )
    without_overhead = run_proposed(store, 0.0)

    counter_overhead = with_overhead.profiling_overhead_nj
    counter_fraction = counter_overhead / with_overhead.total_energy_nj

    run_delta = (
        with_overhead.total_energy_nj - without_overhead.total_energy_nj
    )
    run_fraction = run_delta / with_overhead.total_energy_nj

    preloaded = run_proposed(store, 0.003, preload=True)
    preload_delta = (
        with_overhead.total_energy_nj - preloaded.total_energy_nj
    ) / with_overhead.total_energy_nj

    print()
    print(f"profiling runs: {with_overhead.profiling_executions} "
          f"(~one per distinct benchmark; a second job of the same "
          f"benchmark arriving before its first profile completes is "
          f"also profiled)")
    print(f"counter overhead: {counter_overhead / 1e3:.1f} uJ = "
          f"{counter_fraction * 100:.4f}% of total energy")
    print(f"total-energy delta vs zero-overhead profiling: "
          f"{run_fraction * 100:.4f}%")
    print(f"total-energy saving from pre-loaded design-time profiling "
          f"(sec. IV.B alternative, incl. tuning): {preload_delta * 100:.2f}%")
    print("paper claim: < 0.5%")

    # Roughly one profiling run per distinct benchmark: concurrent
    # arrivals of a not-yet-profiled benchmark may each profile once.
    assert (
        len(eembc_suite())
        <= with_overhead.profiling_executions
        <= len(eembc_suite()) + 4
    )
    # The paper's claim holds with ample margin.
    assert counter_fraction < 0.005
    assert abs(run_fraction) < 0.005
