"""E5 — profiling overhead (paper §VI).

Paper claim: "Profiling only introduced less than .5% overhead in total
energy consumption."

Measured two ways:

* the *counter overhead* — the extra cycles/energy charged for reading
  and storing the hardware counters during a profiling run (compared to
  a run with the overhead knob at zero);
* the *profiling-run penalty* — the full cost of the policy executing
  each new application once in the pessimistic base configuration,
  measured against a run with zero counter overhead and against §IV.B's
  alternative of pre-loaded design-time profiling information (no
  run-time profiling or tuning at all).

All numbers are read from the run's ``MetricsRegistry`` (the
``sim.energy.*`` gauges and ``sim.profiling_executions`` counter), not
from the ``SimulationResult`` — exercising the observability path the
campaign pipeline uses.  The timed kernel is one proposed-system
simulation.
"""

import pytest

from repro.core import OraclePredictor, SchedulerSimulation, make_policy, paper_system
from repro.obs import MetricsRegistry
from repro.workloads import eembc_suite, uniform_arrivals


def run_proposed(store, overhead_fraction, preload=False):
    """One proposed-system run; returns the metrics-registry scalars."""
    arrivals = uniform_arrivals(eembc_suite(), count=1500, seed=3)
    registry = MetricsRegistry()
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        profiling_overhead_fraction=overhead_fraction,
        preload_profiles=preload,
        metrics=registry,
    )
    result = sim.run(arrivals)
    scalars = registry.scalars()
    # The registry is the simulation's own ledger, to the bit.
    assert scalars["sim.energy.total_nj"] == pytest.approx(
        result.total_energy_nj, rel=1e-12
    )
    assert scalars["sim.profiling_executions"] == result.profiling_executions
    return scalars


def test_bench_profiling_overhead(benchmark, store):
    with_overhead = benchmark.pedantic(
        lambda: run_proposed(store, 0.003), rounds=3, iterations=1
    )
    without_overhead = run_proposed(store, 0.0)

    profiling_runs = int(with_overhead["sim.profiling_executions"])
    counter_overhead = with_overhead["sim.energy.profiling_overhead_nj"]
    counter_fraction = counter_overhead / with_overhead["sim.energy.total_nj"]

    run_delta = (
        with_overhead["sim.energy.total_nj"]
        - without_overhead["sim.energy.total_nj"]
    )
    run_fraction = run_delta / with_overhead["sim.energy.total_nj"]

    preloaded = run_proposed(store, 0.003, preload=True)
    preload_delta = (
        with_overhead["sim.energy.total_nj"]
        - preloaded["sim.energy.total_nj"]
    ) / with_overhead["sim.energy.total_nj"]

    print()
    print(f"profiling runs: {profiling_runs} "
          f"(~one per distinct benchmark; a second job of the same "
          f"benchmark arriving before its first profile completes is "
          f"also profiled)")
    print(f"counter overhead: {counter_overhead / 1e3:.1f} uJ = "
          f"{counter_fraction * 100:.4f}% of total energy")
    print(f"total-energy delta vs zero-overhead profiling: "
          f"{run_fraction * 100:.4f}%")
    print(f"total-energy saving from pre-loaded design-time profiling "
          f"(sec. IV.B alternative, incl. tuning): {preload_delta * 100:.2f}%")
    print("paper claim: < 0.5%")

    # Roughly one profiling run per distinct benchmark: concurrent
    # arrivals of a not-yet-profiled benchmark may each profile once.
    assert (
        len(eembc_suite())
        <= profiling_runs
        <= len(eembc_suite()) + 4
    )
    # The paper's claim holds with ample margin.
    assert counter_fraction < 0.005
    assert abs(run_fraction) < 0.005
