"""A10 — robustness: seed stability of the headline comparison.

Everything stochastic in the reproduction is seeded (arrival stream,
ANN initialisation/bagging, dataset split).  This benchmark re-runs the
four-system comparison under several seeds and reports the spread of
the proposed system's saving, plus the energy-centric system's
sensitivity to ANN mispredictions — the robustness/fragility contrast
behind the paper's §VI observation that the naive stall decision "can
not be made naively".  The timed kernel is one full seeded evaluation
(training included).
"""

import numpy as np

from repro.analysis import format_table, percent_change
from repro.experiment import default_predictor, run_four_systems
from repro.workloads import eembc_suite, uniform_arrivals

SEEDS = (0, 1, 2, 3)
N_JOBS = 2000


def evaluate(store, seed):
    predictor = default_predictor(store, seed=seed)
    arrivals = uniform_arrivals(eembc_suite(), count=N_JOBS, seed=seed)
    results = run_four_systems(arrivals, store, predictor)
    base = results["base"].total_energy_nj
    mispredictions = sum(
        1 for spec in eembc_suite()
        if results["proposed"].predictions_kb.get(spec.name)
        != store.best_size_kb(spec.name)
    )
    return {
        "proposed": results["proposed"].total_energy_nj / base,
        "energy_centric": results["energy_centric"].total_energy_nj / base,
        "optimal": results["optimal"].total_energy_nj / base,
        "mispredictions": mispredictions,
    }


def test_bench_seed_stability(benchmark, store):
    benchmark.pedantic(
        lambda: evaluate(store, SEEDS[0]), rounds=1, iterations=1
    )

    rows = []
    proposed = []
    energy_centric = []
    for seed in SEEDS:
        outcome = evaluate(store, seed)
        proposed.append(outcome["proposed"])
        energy_centric.append(outcome["energy_centric"])
        rows.append((
            seed,
            outcome["mispredictions"],
            f"{percent_change(outcome['proposed']):+.1f}%",
            f"{percent_change(outcome['optimal']):+.1f}%",
            f"{percent_change(outcome['energy_centric']):+.1f}%",
        ))
    print()
    print(format_table(
        ("seed", "ANN mispredictions", "proposed vs base",
         "optimal vs base", "energy-centric vs base"),
        rows,
    ))
    spread = (max(proposed) - min(proposed)) * 100
    print(f"proposed-saving spread across seeds: {spread:.1f} percentage "
          f"points; energy-centric spread: "
          f"{(max(energy_centric) - min(energy_centric)) * 100:.1f}")

    # The proposed system is robust: deep savings at every seed, tight
    # spread.  The energy-centric system is fragile: one mispredicted
    # benchmark is enough to erase most of its savings.
    for ratio in proposed:
        assert ratio < 0.6
    assert spread < 5.0
    assert max(energy_centric) - min(energy_centric) > 0.15
