"""S1 — simulation engine speed: struct-of-arrays vs reference loop.

The headline number of the fast-engine work: the fig6-style proposed
system run (1500 jobs, paper arrival intensity) measured on the
struct-of-arrays engine (:mod:`repro.sim.fast`) against the reference
event loop.  Both engines consume the same arrival stream through the
same :class:`SchedulerSimulation` front end and must return bit-identical
:class:`SimulationResult` objects — the speedup is pure engine, not a
change in what gets computed.

Timing protocol: simulations are constructed outside the timed region
(the fast engine precompiles its tables at construction), rounds are
interleaved ref/fast/ref/fast so drift hits both engines alike, and the
ratio is the global-min estimator — min over *all* reference times
divided by min over *all* fast times — the least-noise estimate of the
true cost ratio.

The measured numbers are also written to ``BENCH_simulation_speed.json``
so CI can upload them as an artifact.

Run with ``pytest benchmarks/test_bench_simulation_speed.py -s`` to see
the throughput table.
"""

import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.workloads import eembc_suite, uniform_arrivals

#: Required end-to-end advantage of the struct-of-arrays engine.
MIN_SPEEDUP = 10.0

#: Interleaved timing rounds; the global minimum per engine is used.
ROUNDS = 3

#: Repetitions inside each round (each one is a fresh simulation).
REPS = 3

N_JOBS = 1500
SEED = 4


def _make_sim(store, engine):
    return SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        engine=engine,
    )


def _timed_run(store, engine, arrivals):
    """One construction-excluded run; returns (seconds, result)."""
    sim = _make_sim(store, engine)
    start = time.perf_counter()
    result = sim.run(arrivals)
    return time.perf_counter() - start, result


def test_bench_simulation_speed(benchmark, store):
    arrivals = uniform_arrivals(
        eembc_suite(), count=N_JOBS, seed=SEED,
        mean_interarrival_cycles=56_000,
    )

    # Warm both paths (imports, allocator, branch caches) before timing.
    _, ref_result = _timed_run(store, "reference", arrivals)
    _, fast_result = _timed_run(store, "fast", arrivals)

    # Oracle equivalence: the speedup must not change a single bit.
    assert fast_result == ref_result, "fast engine diverged from reference"
    assert ref_result.jobs_completed == N_JOBS

    # Interleaved rounds: drift (thermal, GC pressure) hits both engines.
    ref_times, fast_times = [], []
    for _ in range(ROUNDS):
        for _ in range(REPS):
            seconds, _ = _timed_run(store, "reference", arrivals)
            ref_times.append(seconds)
        for _ in range(REPS):
            seconds, _ = _timed_run(store, "fast", arrivals)
            fast_times.append(seconds)

    ref_seconds = min(ref_times)
    fast_seconds = min(fast_times)
    speedup = ref_seconds / fast_seconds

    # pytest-benchmark records the fast engine as the tracked series.
    benchmark.pedantic(
        lambda: _timed_run(store, "fast", arrivals),
        rounds=ROUNDS,
        iterations=1,
    )

    ref_jps = N_JOBS / ref_seconds
    fast_jps = N_JOBS / fast_seconds

    print()
    print(f"Proposed-system run ({N_JOBS} jobs, seed {SEED}, "
          f"56k mean interarrival)")
    print(format_table(
        ("engine", "wall ms", "jobs/s"),
        (
            ("reference (event loop)", f"{ref_seconds * 1e3:.1f}",
             f"{ref_jps:,.0f}"),
            ("fast (struct-of-arrays)", f"{fast_seconds * 1e3:.1f}",
             f"{fast_jps:,.0f}"),
        ),
    ))
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")

    payload = {
        "benchmark": "simulation_speed",
        "jobs": N_JOBS,
        "seed": SEED,
        "mean_interarrival_cycles": 56_000,
        "rounds": ROUNDS * REPS,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "reference_jobs_per_second": ref_jps,
        "fast_jobs_per_second": fast_jps,
        "speedup": speedup,
        "bit_identical": True,
        "min_speedup_required": MIN_SPEEDUP,
    }
    Path("BENCH_simulation_speed.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"fast engine speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x bar"
    )
