"""S2 — streaming engine throughput and memory bound at 1M jobs.

The headline number of the open-system work: one million Poisson
arrivals streamed through :class:`~repro.sim.stream.StreamingSimulation`
in bounded memory must sustain jobs/sec within ``MAX_SLOWDOWN`` of the
closed-batch fast engine on the same (policy, system, load).  The
stream never materialises its arrivals or retains per-job records, so
peak RSS growth over the run must stay under ``MAX_RSS_GROWTH_MIB``
regardless of job count — that is what makes the 1M-job scale runnable
at all.

Measurement order matters: ``ru_maxrss`` is a process-lifetime
high-water mark, so the streaming run goes FIRST and its RSS ceiling is
asserted before the closed-batch comparison run (which materialises
arrivals and job records and would raise the mark).  Throughput is
compared on jobs/sec with construction excluded on both sides.

The measured numbers are written to ``BENCH_streaming_throughput.json``
so CI can upload them as an artifact.

Run with ``pytest benchmarks/test_bench_streaming_throughput.py -s`` to
see the throughput table.
"""

import json
import resource
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.sim.stream import StreamConfig, StreamingSimulation
from repro.workloads import PoissonProcess, eembc_suite, poisson_arrivals

#: Streamed jobs (the acceptance floor is one million).
STREAM_JOBS = 1_000_000

#: Closed-batch comparison size — large enough for a stable jobs/sec
#: estimate, small enough to keep the total benchmark wall time sane.
BATCH_JOBS = 200_000

#: The stream may be at most this factor slower than the closed batch.
MAX_SLOWDOWN = 1.5

#: Peak-RSS growth allowed across the 1M-job stream.  A linear engine
#: (arrival list + per-job records, ~150 B/job) would add ~300 MiB.
MAX_RSS_GROWTH_MIB = 256

SEED = 1
MEAN_GAP = 56_000.0


def _rss_mib() -> float:
    """Process peak RSS in MiB (Linux reports ru_maxrss in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def _run_stream(store, jobs):
    """One construction-excluded streaming run: (seconds, result, sim)."""
    streaming = StreamingSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        config=StreamConfig(max_jobs=jobs),
    )
    process = PoissonProcess(
        eembc_suite(), mean_interarrival_cycles=MEAN_GAP, seed=SEED
    )
    start = time.perf_counter()
    result = streaming.run(process)
    return time.perf_counter() - start, result, streaming


def _run_batch(store, arrivals):
    """One construction-excluded closed-batch fast-engine run."""
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        engine="fast",
    )
    start = time.perf_counter()
    result = sim.run(arrivals)
    return time.perf_counter() - start, result


def test_bench_streaming_throughput(benchmark, store):
    # Warm the path (imports, allocator, characterisation rows) with a
    # short stream, then take the RSS baseline.
    _run_stream(store, 20_000)
    rss_before = _rss_mib()

    # 1M jobs FIRST: ru_maxrss only ever rises, so the stream's memory
    # ceiling must be read before the batch run inflates the mark.
    stream_seconds, stream_result, streaming = _run_stream(
        store, STREAM_JOBS
    )
    rss_after = _rss_mib()
    rss_growth = rss_after - rss_before

    assert stream_result.jobs_completed == STREAM_JOBS
    slots = len(streaming._s["jbid"])
    # O(cores + window) job slots, not O(jobs): recycling must hold.
    assert slots < 10_000, (
        f"slot table grew to {slots} entries over {STREAM_JOBS} jobs"
    )
    assert rss_growth < MAX_RSS_GROWTH_MIB, (
        f"streaming 1M jobs grew peak RSS by {rss_growth:.0f} MiB "
        f"(allowed: {MAX_RSS_GROWTH_MIB} MiB)"
    )

    # Closed-batch comparison (materialised arrivals, retained records).
    arrivals = poisson_arrivals(
        eembc_suite(), count=BATCH_JOBS,
        mean_interarrival_cycles=MEAN_GAP, seed=SEED,
    )
    batch_seconds, batch_result = _run_batch(store, arrivals)
    assert batch_result.jobs_completed == BATCH_JOBS

    stream_jps = STREAM_JOBS / stream_seconds
    batch_jps = BATCH_JOBS / batch_seconds
    slowdown = batch_jps / stream_jps

    # pytest-benchmark tracks a short stream as the recorded series
    # (full 1M rounds would dominate the suite's wall time).
    benchmark.pedantic(
        lambda: _run_stream(store, 20_000), rounds=3, iterations=1
    )

    print()
    print(f"Proposed-system throughput (seed {SEED}, "
          f"{MEAN_GAP:.0f} mean interarrival)")
    print(format_table(
        ("engine", "jobs", "wall s", "jobs/s"),
        (
            ("fast (closed batch)", f"{BATCH_JOBS:,}",
             f"{batch_seconds:.1f}", f"{batch_jps:,.0f}"),
            ("streaming (open system)", f"{STREAM_JOBS:,}",
             f"{stream_seconds:.1f}", f"{stream_jps:,.0f}"),
        ),
    ))
    print(f"slowdown: {slowdown:.2f}x (allowed: <= {MAX_SLOWDOWN:.1f}x); "
          f"peak RSS growth {rss_growth:.0f} MiB over {STREAM_JOBS:,} "
          f"jobs, {slots} job slots")

    payload = {
        "benchmark": "streaming_throughput",
        "stream_jobs": STREAM_JOBS,
        "batch_jobs": BATCH_JOBS,
        "seed": SEED,
        "mean_interarrival_cycles": MEAN_GAP,
        "stream_seconds": stream_seconds,
        "batch_seconds": batch_seconds,
        "stream_jobs_per_second": stream_jps,
        "batch_jobs_per_second": batch_jps,
        "slowdown": slowdown,
        "max_slowdown_allowed": MAX_SLOWDOWN,
        "rss_growth_mib": rss_growth,
        "max_rss_growth_mib": MAX_RSS_GROWTH_MIB,
        "job_slots": slots,
    }
    Path("BENCH_streaming_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert slowdown <= MAX_SLOWDOWN, (
        f"streaming is {slowdown:.2f}x slower than the closed batch "
        f"(allowed: {MAX_SLOWDOWN:.1f}x)"
    )
