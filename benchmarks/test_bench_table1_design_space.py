"""E1 — Table 1: the 18-configuration cache design space.

Regenerates the design-space characterisation behind every other
experiment: all 15 benchmarks through all 18 configurations of Table 1,
printing the per-benchmark energy matrix and best configuration.  The
timed kernel is one full benchmark characterisation (the SimpleScalar
role of the reproduction).

Run with ``pytest benchmarks/test_bench_table1_design_space.py
--benchmark-only -s`` to see the table.
"""

from repro.analysis import format_table
from repro.cache import DESIGN_SPACE
from repro.characterization import characterize_benchmark
from repro.workloads import eembc_benchmark, eembc_suite


def test_bench_table1_design_space(benchmark, store):
    spec = eembc_benchmark("idctrn")
    result = benchmark.pedantic(
        lambda: characterize_benchmark(spec), rounds=3, iterations=1
    )
    assert len(result.configs()) == 18

    print()
    print("Table 1 design space - total energy (uJ) per configuration")
    headers = ["benchmark"] + [c.name for c in DESIGN_SPACE] + ["best"]
    rows = []
    for suite_spec in eembc_suite():
        char = store.get(suite_spec.name)
        row = [suite_spec.name]
        for config in DESIGN_SPACE:
            row.append(f"{char.result(config).total_energy_nj / 1e3:.0f}")
        row.append(char.best_config().name)
        rows.append(row)
    print(format_table(headers, rows))

    # The paper's premise: the suite spans all three cache sizes.
    best_sizes = {store.best_size_kb(s.name) for s in eembc_suite()}
    assert best_sizes == {2, 4, 8}
