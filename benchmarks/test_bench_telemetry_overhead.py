"""S3 — sampled telemetry must cost <= 5 % on the 1M-job stream.

Telemetry's whole premise is that chunk-boundary sampling is cheap
enough to leave on for the long runs it exists to observe: the engines
pay one integer compare per completion when it is off, and only touch
the sink at arrival-buffer refills when it is on.  This benchmark pins
that premise at the ROADMAP's headline scale: a one-million-job
streaming run with JSONL telemetry + sampled tracing attached must
finish within ``MAX_OVERHEAD`` of the telemetry-off run — and produce
the bit-identical :class:`~repro.sim.stream.StreamResult`, because a
telemetry layer that perturbs the simulation is wrong long before it
is slow.

Shared-host noise dwarfs the true cost (one sample is ~20 us and the
streaming engine takes ~1000 of them per million jobs), so a single
off-then-on measurement can swing past the gate on machine drift
alone.  The harness therefore alternates telemetry-off and
telemetry-on rounds and gates on ``min(on) / min(off)`` — interleaving
exposes both sides to the same drift and the minimum is the classic
robust estimator for "how fast can this code actually go".

The measured numbers are written to ``BENCH_telemetry_overhead.json``
so CI can upload them as an artifact (``repro bench report`` folds it
into the perf-trajectory table).

Run with ``pytest benchmarks/test_bench_telemetry_overhead.py -s`` to
see the comparison table.
"""

import dataclasses
import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.core import OraclePredictor, make_policy, paper_system
from repro.obs import Telemetry
from repro.sim.stream import StreamConfig, StreamingSimulation
from repro.workloads import PoissonProcess, eembc_suite

#: Streamed jobs (matches the streaming-throughput headline scale).
STREAM_JOBS = 1_000_000

#: Telemetry-on wall time may be at most this factor of telemetry-off.
MAX_OVERHEAD = 1.05

#: Alternating off/on measurement rounds; the gate compares the
#: per-side minima so host drift cannot masquerade as overhead.  The
#: development container shows bursty ±15 % run-to-run noise against a
#: true overhead of ~1.5 %, so each side needs several shots at a
#: clean run.
ROUNDS = 5

#: Sampled-trace stride: one typed event per 10k dispatches and
#: completions — dense enough to exercise the trace path ~200 times.
TRACE_EVERY = 10_000

SEED = 1
MEAN_GAP = 56_000.0


def _run_stream(store, jobs, telemetry=None):
    """One construction-excluded streaming run: (seconds, result)."""
    streaming = StreamingSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        config=StreamConfig(max_jobs=jobs),
        telemetry=telemetry,
    )
    process = PoissonProcess(
        eembc_suite(), mean_interarrival_cycles=MEAN_GAP, seed=SEED
    )
    start = time.perf_counter()
    result = streaming.run(process)
    return time.perf_counter() - start, result


def test_bench_telemetry_overhead(benchmark, store, tmp_path):
    # Warm the path (imports, allocator, characterisation rows).
    _run_stream(store, 20_000)

    off_times, on_times = [], []
    off_result = on_result = None
    last_telemetry = None
    for _ in range(ROUNDS):
        seconds, off_result = _run_stream(store, STREAM_JOBS)
        off_times.append(seconds)

        telemetry = Telemetry(
            out=tmp_path / "telemetry.jsonl",
            trace_out=tmp_path / "sampled.jsonl",
            trace_every=TRACE_EVERY,
        )
        seconds, on_result = _run_stream(
            store, STREAM_JOBS, telemetry=telemetry
        )
        telemetry.close()
        on_times.append(seconds)

        # Non-perturbation before performance: identical results,
        # every round.
        assert dataclasses.asdict(on_result) == dataclasses.asdict(
            off_result
        )
        last_telemetry = telemetry

    telemetry = last_telemetry
    assert telemetry.samples > 100  # one per arrival-buffer refill
    assert telemetry.trace_events > 100

    off_seconds = min(off_times)
    on_seconds = min(on_times)
    overhead = on_seconds / off_seconds
    off_jps = STREAM_JOBS / off_seconds
    on_jps = STREAM_JOBS / on_seconds

    # pytest-benchmark tracks a short telemetry-on stream as the
    # recorded series (full 1M rounds would dominate the wall time).
    def _short():
        tel = Telemetry(out=tmp_path / "short.jsonl")
        try:
            return _run_stream(store, 20_000, telemetry=tel)
        finally:
            tel.close()

    benchmark.pedantic(_short, rounds=3, iterations=1)

    print()
    print(f"Streaming telemetry overhead (seed {SEED}, "
          f"{STREAM_JOBS:,} jobs, best of {ROUNDS} alternating rounds)")
    print(format_table(
        ("run", "wall s", "jobs/s", "samples", "trace events"),
        (
            ("telemetry off", f"{off_seconds:.1f}", f"{off_jps:,.0f}",
             "-", "-"),
            ("telemetry on", f"{on_seconds:.1f}", f"{on_jps:,.0f}",
             f"{telemetry.samples:,}", f"{telemetry.trace_events:,}"),
        ),
    ))
    print(f"overhead: {overhead:.3f}x "
          f"(allowed: <= {MAX_OVERHEAD:.2f}x)")

    payload = {
        "benchmark": "telemetry_overhead",
        "stream_jobs": STREAM_JOBS,
        "seed": SEED,
        "mean_interarrival_cycles": MEAN_GAP,
        "trace_every": TRACE_EVERY,
        "rounds": ROUNDS,
        "off_seconds_per_round": off_times,
        "on_seconds_per_round": on_times,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "off_jobs_per_second": off_jps,
        "on_jobs_per_second": on_jps,
        "samples": telemetry.samples,
        "trace_events": telemetry.trace_events,
        "bit_identical": True,
        "overhead": overhead,
        "max_overhead_allowed": MAX_OVERHEAD,
    }
    Path("BENCH_telemetry_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert overhead <= MAX_OVERHEAD, (
        f"telemetry-on stream is {overhead:.3f}x the telemetry-off "
        f"wall time (allowed: {MAX_OVERHEAD:.2f}x)"
    )
