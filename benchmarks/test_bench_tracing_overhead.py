"""O1 — observability overhead: tracing must never perturb or slow.

Two contracts of the `repro.obs` layer (docs/observability.md):

* **non-perturbation** — a fully traced run (JSONL recorder + metrics
  registry) produces a ``SimulationResult`` bit-identical to an
  untraced one, and two traced runs serialise to byte-identical JSONL;
* **near-zero default cost** — with the default ``NullRecorder`` every
  emission site short-circuits on ``recorder.enabled``, so the fig6
  kernel's wall time must stay within noise of the pre-observability
  code path.

The timed kernel is the fig6-style proposed-system run at 1000 jobs
with the default ``NullRecorder`` — the same kernel as
test_bench_fig6_energy_vs_base, so its history doubles as the
regression record for the observability hooks.
"""

import time

from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.obs import ListRecorder, MetricsRegistry, encode_event
from repro.workloads import eembc_suite, uniform_arrivals


def make_run(store, recorder=None, metrics=None):
    arrivals = uniform_arrivals(eembc_suite(), count=1000, seed=2)
    # Pinned to the reference engine: this benchmark measures what the
    # *hooks* cost, so both sides must run the hook-bearing loop.  With
    # engine="auto" the untraced side would silently switch to the
    # hook-free fast engine (benchmarks/test_bench_simulation_speed.py
    # measures that gap) and the ratio would conflate the two effects.
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        recorder=recorder,
        metrics=metrics,
        engine="reference",
    )
    return sim.run(arrivals)


def best_of(fn, rounds=3):
    """Minimum wall time over a few rounds (robust against GC noise)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_tracing_overhead(benchmark, store):
    # Timed kernel: the default (NullRecorder) path.
    untraced = benchmark.pedantic(
        lambda: make_run(store), rounds=3, iterations=1
    )
    assert untraced.jobs_completed == 1000

    # Non-perturbation: full tracing changes nothing observable.
    recorder = ListRecorder()
    registry = MetricsRegistry()
    traced = make_run(store, recorder=recorder, metrics=registry)
    assert traced == untraced, "tracing perturbed the simulation"
    assert registry.scalars()["sim.jobs_completed"] == 1000.0

    # Determinism: a second traced run serialises byte-identically.
    second = ListRecorder()
    make_run(store, recorder=second)
    lines = [encode_event(e) for e in recorder.events]
    assert lines == [encode_event(e) for e in second.events]

    # Relative cost of full tracing vs the NullRecorder default.
    null_seconds = best_of(lambda: make_run(store))
    traced_seconds = best_of(
        lambda: make_run(store, recorder=ListRecorder(),
                         metrics=MetricsRegistry())
    )
    overhead = traced_seconds / null_seconds - 1.0

    print()
    print(f"events per run: {len(lines)}")
    print(f"null-recorder run:  {null_seconds * 1e3:.1f} ms")
    print(f"fully traced run:   {traced_seconds * 1e3:.1f} ms "
          f"({overhead * 100:+.1f}%)")

    # Full tracing may cost real time (it materialises ~7 events per
    # job), but it must stay within the same order of magnitude; the
    # *default* path's budget is enforced by the fig6 benchmark history.
    assert overhead < 2.0
