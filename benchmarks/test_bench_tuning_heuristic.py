"""E6 — tuning-heuristic efficiency (paper §VI and Figure 5).

Paper claims: "our heuristic may explore a minimum of three
configurations and a maximum of nine configurations, out of 18; no
benchmark explored more than six configurations, thus our tuning
heuristic explored significantly fewer configurations than the optimal
system".

Reported: per-benchmark, per-core-size exploration counts of the
heuristic run against the measured design space, the quality of the
configuration it converges to versus the exhaustive per-size best, and
the exploration totals of the proposed versus optimal systems from the
headline simulation.  The timed kernel is a full heuristic run across
the suite.
"""

from repro.analysis import format_table
from repro.cache import CACHE_SIZES_KB, configs_for_size
from repro.core.tuning import TuningSession
from repro.workloads import eembc_suite


def run_heuristic(store):
    """Drive the heuristic for every (benchmark, size); return stats."""
    outcomes = []
    for spec in eembc_suite():
        char = store.get(spec.name)
        for size in CACHE_SIZES_KB:
            session = TuningSession(size_kb=size)
            while not session.done:
                config = session.next_config()
                session.record(config, char.result(config).total_energy_nj)
            true_best = char.best_config_for_size(size)
            gap = (
                session.best_energy_nj
                / char.result(true_best).total_energy_nj
                - 1.0
            )
            outcomes.append(
                (spec.name, size, session.exploration_count,
                 session.best_config == true_best, gap)
            )
    return outcomes


def test_bench_tuning_heuristic(benchmark, store, four_results):
    outcomes = benchmark.pedantic(
        lambda: run_heuristic(store), rounds=3, iterations=1
    )

    rows = []
    for spec in eembc_suite():
        mine = [o for o in outcomes if o[0] == spec.name]
        explored_total = sum(o[2] for o in mine)
        found = sum(1 for o in mine if o[3])
        worst_gap = max(o[4] for o in mine)
        rows.append((spec.name, explored_total, f"{found}/3",
                     f"{worst_gap * 100:.2f}%"))
    print()
    print(format_table(
        ("benchmark", "configs explored (of 18)", "true best found",
         "worst energy gap"),
        rows,
    ))

    per_size_counts = [o[2] for o in outcomes]
    print()
    print(f"per-core-size explorations: min {min(per_size_counts)}, "
          f"max {max(per_size_counts)} (exhaustive would be "
          f"{[len(configs_for_size(s)) for s in CACHE_SIZES_KB]} per size)")

    found_rate = sum(1 for o in outcomes if o[3]) / len(outcomes)
    mean_gap = sum(o[4] for o in outcomes) / len(outcomes)
    print(f"true-best hit rate: {found_rate:.2f}; "
          f"mean energy gap {mean_gap * 100:.2f}%")

    # Exploration bounds: 2-5 per core size, never exhaustive.
    assert min(per_size_counts) >= 2
    assert max(per_size_counts) <= 5

    # Per benchmark across all sizes: well below the exhaustive 18
    # (the paper observed at most 6 on its single-best-core usage).
    for _, explored_total, _, _ in rows:
        assert explored_total <= 13

    # Quality: the greedy heuristic finds the true per-size best for the
    # overwhelming majority of (benchmark, size) pairs and never loses
    # much energy when it does not.
    assert found_rate > 0.8
    assert mean_gap < 0.05

    # In the headline simulation, the proposed system explores far fewer
    # configurations than the optimal system.
    proposed = four_results["proposed"].exploration_counts
    optimal = four_results["optimal"].exploration_counts
    assert max(proposed.values()) < max(optimal.values())
