"""V1 — validation overhead: the ledger must be cheap and invisible.

Two contracts of the `repro.validate` layer (docs/validation.md):

* **non-perturbation** — a run with ``validate=True`` produces a
  ``SimulationResult`` bit-identical to an unvalidated one (the ledger
  only mirrors charges; it never participates in them);
* **bounded cost** — the validator does O(cores) work per engine event
  plus one O(jobs) conservation pass at end of run, so the fig6
  kernel's wall time with validation enabled must stay within 15 % of
  the default path's, and the default (``validate=False``) path adds a
  single attribute check per hook site (~0 cost).
"""

import time

from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.workloads import eembc_suite, uniform_arrivals


def make_run(store, validate=False):
    arrivals = uniform_arrivals(eembc_suite(), count=1000, seed=2)
    # Pinned to the reference engine: this benchmark measures what the
    # *validator* costs, so both sides must run the hook-bearing loop.
    # With engine="auto" the unvalidated side would silently switch to
    # the hook-free fast engine and blow the 15% budget with a speedup
    # that test_bench_simulation_speed measures on purpose.
    sim = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
        validate=validate,
        engine="reference",
    )
    return sim.run(arrivals)


def best_of(fn, rounds=3):
    """Minimum wall time over a few rounds (robust against GC noise)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_validation_overhead(benchmark, store):
    # Timed kernel: the validated path.
    validated = benchmark.pedantic(
        lambda: make_run(store, validate=True), rounds=3, iterations=1
    )
    assert validated.jobs_completed == 1000

    # Non-perturbation: the ledger changes nothing observable.
    plain = make_run(store)
    assert validated == plain, "validation perturbed the simulation"

    # Relative cost of the invariant checks + ledger vs the default.
    plain_seconds = best_of(lambda: make_run(store))
    validated_seconds = best_of(lambda: make_run(store, validate=True))
    overhead = validated_seconds / plain_seconds - 1.0

    print()
    print(f"unvalidated run: {plain_seconds * 1e3:.1f} ms")
    print(f"validated run:   {validated_seconds * 1e3:.1f} ms "
          f"({overhead * 100:+.1f}%)")

    assert overhead < 0.15, (
        f"validation overhead {overhead * 100:.1f}% exceeds the 15% budget"
    )
