#!/usr/bin/env python3
"""Explore one benchmark's cache-configuration design space (Table 1).

Characterises a single benchmark over all 18 configurations, prints the
full energy/performance table, and then runs the paper's cache tuning
heuristic (its Figure 5) against the measurements to show how few
configurations it needs to find the best one on each core.

Run with::

    python examples/cache_design_space.py [benchmark]
"""

import sys

from repro.analysis import format_table
from repro.cache import CACHE_SIZES_KB
from repro.characterization import characterize_benchmark
from repro.core.tuning import TuningSession
from repro.workloads import eembc_benchmark


def main(benchmark: str = "idctrn") -> None:
    spec = eembc_benchmark(benchmark)
    print(f"{spec.name}: {spec.description}")
    print(
        f"  {spec.instructions} instructions, "
        f"{spec.mem_accesses} memory references, "
        f"footprint ~{spec.trace_mix.footprint_bytes // 1024} KB"
    )

    char = characterize_benchmark(spec)
    best = char.best_config()

    rows = []
    for config in char.configs():
        result = char.result(config)
        rows.append((
            config.name + (" *" if config == best else ""),
            f"{result.stats.miss_rate * 100:.2f}%",
            result.total_cycles,
            f"{result.estimate.energy.static_nj / 1e3:.1f}",
            f"{result.estimate.energy.dynamic_nj / 1e3:.1f}",
            f"{result.total_energy_nj / 1e3:.1f}",
        ))
    print()
    print(format_table(
        ("config (* = best)", "miss rate", "cycles", "static uJ",
         "dynamic uJ", "total uJ"),
        rows,
    ))

    # Run the tuning heuristic against the measured design space, per
    # core size, exactly as the scheduler would across executions.
    print()
    print("tuning heuristic (assoc sweep, then line size):")
    for size in CACHE_SIZES_KB:
        session = TuningSession(size_kb=size)
        while not session.done:
            config = session.next_config()
            session.record(config, char.result(config).total_energy_nj)
        true_best = char.best_config_for_size(size)
        found = session.best_config
        outcome = "found true best" if found == true_best else (
            f"local optimum (true best {true_best.name})"
        )
        print(
            f"  {size}KB core: explored {session.exploration_count} of "
            f"{len([c for c in char.configs() if c.size_kb == size])} "
            f"configs -> {found.name} ({outcome})"
        )


def working_set_sweep(benchmark: str) -> None:
    """Show how the best size moves as the working set scales."""
    from repro.characterization import sweep_working_set

    spec = eembc_benchmark(benchmark)
    print()
    print("working-set sweep (all regions scaled):")
    points = sweep_working_set(spec, scales=(0.25, 0.5, 1.0, 2.0, 4.0))
    rows = [
        (f"x{p.scale:g}", f"~{p.footprint_bytes // 1024} KB",
         p.best_config.name,
         *(f"{p.energy_by_size_nj[s] / 1e3:.1f}" for s in (2, 4, 8)))
        for p in points
    ]
    print(format_table(
        ("scale", "footprint", "best config", "E@2KB uJ", "E@4KB uJ",
         "E@8KB uJ"),
        rows,
    ))


if __name__ == "__main__":
    main(*sys.argv[1:2])
    working_set_sweep(*(sys.argv[1:2] or ["idctrn"]))
