#!/usr/bin/env python3
"""Full four-system comparison at paper scale (Figures 6 and 7).

Runs the complete evaluation of §V-VI: 5000 uniformly-arriving jobs
from the EEMBC-analogue suite through the base, optimal, energy-centric
and proposed systems, then prints both of the paper's result figures
and the per-system summaries.  Takes a minute or two on first run
(characterisation and ANN training are cached afterwards).

Run with::

    python examples/compare_systems.py [n_jobs] [seed]
"""

import sys

from repro import default_predictor, default_store, run_four_systems
from repro.analysis import (
    render_figure6,
    render_figure7,
    render_result_summary,
)
from repro.workloads import eembc_suite, uniform_arrivals


def main(n_jobs: int = 5000, seed: int = 1) -> None:
    store = default_store()
    predictor = default_predictor(store, seed=seed)
    arrivals = uniform_arrivals(eembc_suite(), count=n_jobs, seed=seed)

    results = run_four_systems(arrivals, store, predictor)

    print(render_figure6(results))
    print()
    print(render_figure7(results))
    print()
    for result in results.values():
        print(render_result_summary(result))
        print()


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
