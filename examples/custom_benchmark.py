#!/usr/bin/env python3
"""Bring your own benchmark: model a new application and schedule it.

The paper's method is not tied to EEMBC — any application that can be
profiled works.  This example models a small JSON-parser-like kernel
(pointer chasing through a DOM plus a hot token table and a streaming
input buffer), characterises it, and then schedules a mixed workload of
the new benchmark plus three EEMBC-analogue kernels through the
proposed system with an oracle predictor.

Run with::

    python examples/custom_benchmark.py
"""

from repro.analysis import format_table, render_result_summary
from repro.characterization import CharacterizationStore, characterize_suite
from repro.core import OraclePredictor, SchedulerSimulation, make_policy, paper_system
from repro.workloads import (
    BenchmarkSpec,
    HotspotAccess,
    InstructionMix,
    PointerChase,
    SequentialStream,
    TraceMix,
    eembc_benchmark,
    uniform_arrivals,
)


def make_parser_benchmark() -> BenchmarkSpec:
    """A parser-like kernel: DOM chase + hot token table + input stream."""
    return BenchmarkSpec(
        name="jsonparse",
        family="jsonparse",
        instructions=58_000,
        mix=InstructionMix(load=0.31, store=0.08, branch=0.19,
                           int_op=0.40, fp_op=0.02),
        trace_mix=TraceMix(
            components=(
                (PointerChase(region_bytes=3072, node_bytes=32), 2.0),
                (HotspotAccess(region_bytes=1024, skew=1.4), 1.0),
                (SequentialStream(region_bytes=24_576, stride=4), 1.0),
            ),
        ),
        description="JSON-parser analogue: DOM pointer chase, hot token "
                    "table, streaming input.",
    )


def main() -> None:
    custom = make_parser_benchmark()
    suite = [custom] + [eembc_benchmark(n) for n in ("a2time", "matrix", "basefp")]

    store = CharacterizationStore(characterize_suite(suite))
    char = store.get("jsonparse")
    print(f"characterised {custom.name}: best config {char.best_config().name}")
    rows = [
        (size, char.best_config_for_size(size).name,
         f"{char.result(char.best_config_for_size(size)).total_energy_nj / 1e3:.1f}")
        for size in (2, 4, 8)
    ]
    print(format_table(("core size (KB)", "best config", "energy uJ"), rows))

    # Schedule a mixed stream through the paper's proposed system.
    arrivals = uniform_arrivals(suite, count=400, seed=7)
    simulation = SchedulerSimulation(
        paper_system(),
        make_policy("proposed"),
        store,
        predictor=OraclePredictor(store),
    )
    result = simulation.run(arrivals)
    print()
    print(render_result_summary(result))

    placements = {}
    for record in result.jobs:
        if record.benchmark == "jsonparse" and not record.profiled:
            placements[record.core_index] = placements.get(record.core_index, 0) + 1
    print()
    print(f"jsonparse placements by core (0-indexed): {placements}")
    print(f"predicted best size: {result.predictions_kb.get('jsonparse')} KB")


if __name__ == "__main__":
    main()
