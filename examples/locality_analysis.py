#!/usr/bin/env python3
"""Why do benchmarks prefer different cache sizes?

Uses the locality toolkit to explain the premise behind the paper's
heterogeneous system: different applications have different working
sets, so no single cache size is best.  For three benchmarks with
different best sizes the script prints

* the miss-ratio curve over the design-space sizes (its knee locates
  the natural capacity),
* the working-set curve (distinct lines per window),
* the reuse-distance mass below each cache's capacity.

Run with::

    python examples/locality_analysis.py
"""

from repro.analysis import format_table
from repro.cache import CACHE_SIZES_KB
from repro.workloads import (
    eembc_benchmark,
    miss_ratio_curve,
    reuse_distance_histogram,
    working_set_curve,
)

#: One benchmark per best size (2, 4 and 8 KB).
EXAMPLES = ("puwmod", "idctrn", "pntrch")
LINE_B = 32


def main() -> None:
    rows = []
    for name in EXAMPLES:
        spec = eembc_benchmark(name)
        trace = spec.generate_trace(seed=0)
        curve = miss_ratio_curve(trace.addresses, line_b=LINE_B)
        ws = working_set_curve(trace.addresses, window=2000, line_b=LINE_B)
        peak_ws_kb = max(d for _, d in ws) * LINE_B / 1024
        rows.append((
            name,
            f"~{peak_ws_kb:.1f} KB",
            *(f"{curve[s] * 100:.2f}%" for s in CACHE_SIZES_KB),
        ))
    print(format_table(
        ("benchmark", "peak working set")
        + tuple(f"miss ratio @ {s}KB" for s in CACHE_SIZES_KB),
        rows,
    ))

    print()
    print("reuse-distance mass captured by each capacity "
          f"(fully-associative, {LINE_B}B lines):")
    rows = []
    for name in EXAMPLES:
        spec = eembc_benchmark(name)
        trace = spec.generate_trace(seed=0)
        histogram = reuse_distance_histogram(trace.addresses, line_b=LINE_B)
        total = sum(histogram.values())
        row = [name]
        for size_kb in CACHE_SIZES_KB:
            capacity_lines = size_kb * 1024 // LINE_B
            captured = sum(
                count for distance, count in histogram.items()
                if 0 <= distance < capacity_lines
            )
            row.append(f"{captured / total * 100:.1f}%")
        rows.append(tuple(row))
    print(format_table(
        ("benchmark",) + tuple(f"hits @ {s}KB" for s in CACHE_SIZES_KB),
        rows,
    ))
    print()
    print("The knee of each curve sits at a different size - exactly the "
          "diversity the heterogeneous system exploits.")


if __name__ == "__main__":
    main()
