#!/usr/bin/env python3
"""Priority, deadline and preemption scheduling (paper future work).

The paper's future work (§VIII) includes "considering systems with
preemption, priority, and deadlines".  This example annotates a
contended arrival stream with deadlines (4x each benchmark's base
execution time) and three priority levels, then runs the proposed
scheduler under five queueing variants:

* FIFO (the paper's discipline),
* static priority, with and without preemption,
* earliest-deadline-first, with and without preemption.

Run with::

    python examples/qos_scheduling.py
"""

from repro.analysis import format_table
from repro.cache import BASE_CONFIG
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.experiment import default_store
from repro.workloads import eembc_suite, uniform_arrivals, with_qos

VARIANTS = (
    ("fifo", False),
    ("priority", False),
    ("priority", True),
    ("edf", False),
    ("edf", True),
)


def main() -> None:
    store = default_store()
    raw = uniform_arrivals(
        eembc_suite(), count=1200, seed=5, mean_interarrival_cycles=70_000
    )
    arrivals = with_qos(
        raw,
        service_estimate=lambda name: store.estimate(
            name, BASE_CONFIG
        ).total_cycles,
        priority_levels=3,
        deadline_slack=4.0,
        seed=5,
    )
    print(f"{len(arrivals)} jobs, all with deadlines "
          f"(4x base execution time), priorities 0-2")

    rows = []
    for discipline, preemptive in VARIANTS:
        sim = SchedulerSimulation(
            paper_system(),
            make_policy("proposed"),
            store,
            predictor=OraclePredictor(store),
            discipline=discipline,
            preemptive=preemptive,
        )
        result = sim.run(arrivals)
        high = [r for r in result.jobs if r.priority == 2]
        rows.append((
            discipline + ("+preempt" if preemptive else ""),
            f"{result.deadline_miss_rate * 100:.1f}%",
            f"{result.mean_turnaround_cycles / 1e3:.0f}k",
            f"{sum(r.turnaround_cycles for r in high) / len(high) / 1e3:.0f}k",
            result.preemption_count,
            f"{result.total_energy_nj / 1e6:.2f} mJ",
        ))

    print()
    print(format_table(
        ("variant", "deadline misses", "mean turnaround",
         "high-prio turnaround", "preemptions", "total energy"),
        rows,
    ))
    print()
    print("Preemption buys high-priority responsiveness and deadline "
          "adherence for almost no energy: the same executions happen, "
          "split across cores and time.")


if __name__ == "__main__":
    main()
