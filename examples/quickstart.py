#!/usr/bin/env python3
"""Quickstart: compare the four scheduling systems on one workload.

Reproduces the paper's headline comparison at reduced scale (800 jobs
instead of 5000) so it runs in well under a minute:

* **base** — homogeneous quad-core, every L1 fixed at 8KB_4W_64B;
* **optimal** — heterogeneous cores, exhaustive design-space search,
  never stalls;
* **energy_centric** — ANN-predicted best core, always stalls for it;
* **proposed** — the paper's scheduler: ANN prediction + tuning
  heuristic + the energy-advantageous stall-vs-non-best decision.

Run with::

    python examples/quickstart.py
"""

from repro import default_predictor, default_store, run_four_systems
from repro.analysis import percent_change, render_figure6
from repro.workloads import eembc_suite, uniform_arrivals


def main() -> None:
    # 1. Characterise the suite: every benchmark through every cache
    #    configuration (cached under ~/.cache/repro after the first run).
    store = default_store()
    print(f"characterised {len(store)} benchmarks over 18 configurations")

    # 2. Train the paper's bagged-ANN best-core predictor.
    predictor = default_predictor(store, seed=1)

    # 3. Generate one arrival stream and simulate all four systems on it.
    arrivals = uniform_arrivals(eembc_suite(), count=800, seed=1)
    results = run_four_systems(arrivals, store, predictor)

    # 4. Report, normalised to the base system (the paper's Figure 6).
    print()
    print(render_figure6(results))

    proposed = results["proposed"]
    base = results["base"]
    saving = -percent_change(proposed.total_energy_nj / base.total_energy_nj)
    print()
    print(
        f"proposed system: {proposed.jobs_completed} jobs, "
        f"{proposed.stall_decisions} stall / "
        f"{proposed.non_best_decisions} non-best-core decisions, "
        f"total energy {saving:.1f}% below the base system"
    )


if __name__ == "__main__":
    main()
