#!/usr/bin/env python3
"""Regenerate the paper's full evaluation into ``results/``.

One command reproduces everything the paper reports — the four-system
comparison (Figures 6 and 7), the ANN-accuracy claim, the profiling-
overhead claim and the tuning-efficiency claim — and writes:

* ``results/REPORT.md`` — all tables in one markdown report,
* ``results/summary.csv`` — per-system summary metrics,
* ``results/results.json`` — full results including per-job records,
* ``results/jobs_proposed.csv`` — the proposed system's per-job trace.

Takes a few minutes cold (characterisation and training are cached
under ``~/.cache/repro`` afterwards).  Equivalent to
``python -m repro reproduce``.

Run with::

    python examples/reproduce_paper.py [output_dir]
"""

import sys

from repro.reporting import write_report


if __name__ == "__main__":
    write_report(*(sys.argv[1:2] or ["results"]))
