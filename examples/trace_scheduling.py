#!/usr/bin/env python3
"""Trace one scheduler run and reconstruct its decisions offline.

The observability layer (`repro.obs`) records every decision point of a
simulation — arrivals, profiling runs, size predictions, stall and
non-best dispatch decisions, tuning steps, reconfigurations and energy
attribution — as typed events streamed to byte-deterministic JSONL.
This example:

1. characterises a small four-benchmark suite,
2. runs the proposed system under contention with a
   :class:`JsonlRecorder` and a :class:`MetricsRegistry` attached,
3. reloads the trace from disk and rebuilds the per-core timeline and
   the decision breakdown (where the energy went, by dispatch
   category),
4. cross-checks the trace against the live metrics registry.

The same analysis is available from the command line::

    python -m repro trace run.jsonl --validate

Run with::

    python examples/trace_scheduling.py
"""

import tempfile
from pathlib import Path

from repro.characterization import CharacterizationStore, characterize_suite
from repro.core import (
    OraclePredictor,
    SchedulerSimulation,
    make_policy,
    paper_system,
)
from repro.obs import (
    JsonlRecorder,
    MetricsRegistry,
    decision_breakdown,
    per_core_timeline,
    read_trace,
    render_trace_report,
)
from repro.workloads import eembc_benchmark, uniform_arrivals

SUITE = ("puwmod", "idctrn", "pntrch", "a2time")


def main() -> None:
    specs = [eembc_benchmark(name) for name in SUITE]
    store = CharacterizationStore(characterize_suite(specs))
    arrivals = uniform_arrivals(
        specs, count=80, seed=7, mean_interarrival_cycles=25_000
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "run.jsonl"
        recorder = JsonlRecorder(trace_path)
        registry = MetricsRegistry()
        try:
            sim = SchedulerSimulation(
                paper_system(),
                make_policy("proposed"),
                store,
                predictor=OraclePredictor(store),
                recorder=recorder,
                metrics=registry,
            )
            result = sim.run(arrivals)
        finally:
            recorder.close()

        print(f"simulated {result.jobs_completed} jobs; "
              f"wrote {recorder.count} events to {trace_path.name}")
        print()

        # Everything below uses only the file on disk.
        events = read_trace(trace_path)

    print(render_trace_report(events))

    # The trace carries enough to re-derive the run's accounting.
    timeline = per_core_timeline(events)
    busy = {core: sum(s.cycles for s in segments)
            for core, segments in timeline.items()}
    assert busy == result.core_busy_cycles, "trace disagrees with run"

    breakdown = decision_breakdown(events)
    scalars = registry.scalars()
    assert scalars["sim.non_best_decisions"] == result.non_best_decisions
    assert breakdown["stall"]["decisions"] == result.stall_decisions
    non_best_nj = breakdown["non_best"]["total_nj"]
    print()
    print(f"energy spent on non-best dispatches: "
          f"{non_best_nj / 1e3:.1f} uJ of "
          f"{result.total_energy_nj / 1e3:.1f} uJ total "
          f"({non_best_nj / result.total_energy_nj * 100:.1f}%)")
    print(f"stall decisions taken instead: "
          f"{int(breakdown['stall']['decisions'])}")
    print()
    print("trace, timeline, breakdown and metrics registry all agree.")


if __name__ == "__main__":
    main()
