#!/usr/bin/env python3
"""Train and evaluate the paper's bagged-ANN best-core predictor.

Walks through §IV.C/D of the paper end to end:

1. grow the 15-benchmark suite into a training dataset with seeded
   parameter-jittered variants (DESIGN.md §5 documents this
   substitution for the paper's 270-input EEMBC dataset);
2. split 70/15/15 and train a bagging ensemble of small MLPs
   (topology {n_features, 18, 5, 1}, random weight init per member);
3. report accuracy, the confusion matrix over {2, 4, 8} KB, and the
   paper's headline metric: how much energy is lost by trusting the
   predicted best cache size instead of the true one (< 2 % claimed).

Run with::

    python examples/train_predictor.py
"""

import numpy as np

from repro.ann.metrics import class_accuracy, confusion_counts
from repro.ann.training import TrainingConfig
from repro.analysis import format_table
from repro.core.predictor import AnnPredictor
from repro.experiment import default_dataset
from repro.workloads import eembc_suite


def main() -> None:
    dataset, store = default_dataset(variants_per_family=12, seed=0)
    print(
        f"dataset: {len(dataset)} samples x {len(dataset.feature_names)} "
        f"features ({', '.join(dataset.feature_names)})"
    )

    # Paper-style shuffled 70/15/15 split (§IV.D).
    split = dataset.split(seed=0, by_family=False)
    predictor = AnnPredictor(n_members=10, seed=0)
    predictor.fit(
        split.train,
        val_dataset=split.val,
        config=TrainingConfig(epochs=200, seed=0),
    )

    rows = []
    for name, part in (("train", split.train), ("val", split.val),
                       ("test", split.test)):
        pred = predictor.predict_sizes_kb(part.features)
        rows.append((name, len(part), class_accuracy(pred, part.labels_kb)))
    print()
    print(format_table(("split", "samples", "accuracy"), rows))

    # Confusion matrix on the test split.
    pred = predictor.predict_sizes_kb(split.test.features)
    counts = confusion_counts(pred, split.test.labels_kb, classes=[2, 4, 8])
    print()
    print("test confusion (rows = true size, cols = predicted):")
    print(format_table(
        ("true\\pred", "2KB", "4KB", "8KB"),
        [(f"{size}KB", *counts[i]) for i, size in enumerate((2, 4, 8))],
    ))

    # The paper's metric: energy degradation on the deployed benchmarks.
    rows = []
    degradations = []
    for spec in eembc_suite():
        char = store.get(spec.name)
        predicted = predictor.predict_size_kb(spec.name, char.counters)
        best_at_predicted = char.best_config_for_size(predicted)
        degradation = char.energy_degradation(best_at_predicted)
        degradations.append(degradation)
        rows.append(
            (spec.name, char.best_size_kb(), predicted,
             f"{degradation * 100:.2f}%")
        )
    print()
    print(format_table(
        ("benchmark", "true best", "predicted", "energy degradation"), rows
    ))
    print(
        f"\nmean energy degradation vs optimal cache size: "
        f"{np.mean(degradations) * 100:.2f}%  (paper: < 2%)"
    )


if __name__ == "__main__":
    main()
