"""Setup shim for environments without the ``wheel`` package.

The offline evaluation environment lacks ``wheel``, which PEP 660
editable installs require; with this shim and no ``[build-system]``
table, ``pip install -e .`` falls back to the legacy ``setup.py
develop`` path, which works everywhere.
"""

from setuptools import setup

setup()
