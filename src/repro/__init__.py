"""repro — reproduction of *Dynamic Scheduling on Heterogeneous
Multicores* (Edun, Vazquez, Gordon-Ross, Stitt; DATE 2019).

An ANN-guided, energy-aware dynamic scheduler for heterogeneous
multicores with run-time configurable L1 caches, together with every
substrate the evaluation needs: a set-associative cache simulator, a
CACTI-style energy model, synthetic EEMBC-analogue workloads, a
from-scratch neural network, and a deterministic discrete-event
scheduler simulation.

Quick start::

    from repro import quick_experiment
    results = quick_experiment(n_jobs=500, seed=0)
    print(results["proposed"].total_energy_nj / results["base"].total_energy_nj)

Subpackages
-----------
``repro.core``
    The paper's contribution: scheduler, policies, ANN predictor,
    tuning heuristic, energy-advantageous decision, simulation driver.
``repro.cache`` / ``repro.energy`` / ``repro.workloads`` /
``repro.ann`` / ``repro.characterization`` / ``repro.sim``
    The substrates (see DESIGN.md for the full inventory).
``repro.analysis``
    Normalisation and text rendering of the paper's figures.
"""

from repro.experiment import (
    CampaignResult,
    default_dataset,
    default_predictor,
    default_store,
    quick_experiment,
    run_campaign,
    run_four_systems,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignResult",
    "__version__",
    "default_dataset",
    "default_predictor",
    "default_store",
    "quick_experiment",
    "run_campaign",
    "run_four_systems",
]
