"""Small internal utilities shared across the package."""

from __future__ import annotations

import hashlib

__all__ = ["stable_seed"]


def stable_seed(*parts: object) -> int:
    """Deterministic 63-bit seed from arbitrary hashable parts.

    Python's built-in ``hash`` of strings is salted per process, which
    would make trace generation irreproducible across runs; this instead
    hashes the ``repr`` of the parts with BLAKE2, which is stable
    everywhere.
    """
    digest = hashlib.blake2s(repr(parts).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1
