"""Result normalisation and text reporting for the paper's figures."""

from .bench import (
    BenchCheck,
    bench_checks,
    load_bench_artifacts,
    render_bench_report,
)
from .export import (
    jobs_to_csv,
    result_summary_dict,
    results_to_csv,
    results_to_json,
)
from .frontier import (
    FrontierPoint,
    frontier_points,
    pareto_front,
    render_frontier,
)
from .normalize import METRICS, normalize_results, percent_change
from .report import (
    format_table,
    render_benchmark_breakdown,
    render_figure6,
    render_energy_decomposition,
    render_figure7,
    render_gantt,
    render_result_summary,
)

__all__ = [
    "METRICS",
    "BenchCheck",
    "bench_checks",
    "format_table",
    "load_bench_artifacts",
    "render_bench_report",
    "jobs_to_csv",
    "FrontierPoint",
    "frontier_points",
    "normalize_results",
    "pareto_front",
    "percent_change",
    "render_frontier",
    "render_benchmark_breakdown",
    "render_figure6",
    "render_energy_decomposition",
    "render_figure7",
    "render_gantt",
    "render_result_summary",
    "result_summary_dict",
    "results_to_csv",
    "results_to_json",
]
