"""Performance-trajectory reporting over ``BENCH_*.json`` artifacts.

The tier-2 benchmark suite (``benchmarks/``) asserts perf and accuracy
floors and writes flat JSON artifacts next to the repo root — e.g.
``BENCH_simulation_speed.json`` with a measured ``speedup`` and the
``min_speedup_required`` threshold it was checked against.  This module
reads every artifact in a directory and renders them as one table, so a
CI run (or a developer after ``pytest benchmarks/``) sees the whole
perf trajectory — measured value, bound, and remaining margin — in one
place instead of opening JSON files one by one.

The threshold convention is scanned generically rather than hard-coded
per benchmark: any key shaped ``min_<metric>_required`` / ``min_<metric>``
is a floor for the measured ``<metric>`` key, and ``max_<metric>_allowed``
/ ``max_<metric>`` is a ceiling.  New benchmarks that follow the
convention appear in the report with no changes here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

from .report import format_table

__all__ = [
    "BenchCheck",
    "bench_checks",
    "load_bench_artifacts",
    "render_bench_report",
]


@dataclass(frozen=True)
class BenchCheck:
    """One measured-metric-vs-bound pair from a benchmark artifact."""

    #: Benchmark name (the artifact's ``benchmark`` field, or the file
    #: stem without the ``BENCH_`` prefix).
    benchmark: str
    #: Measured metric key in the artifact.
    metric: str
    measured: float
    #: ``"floor"`` (``min_*``) or ``"ceiling"`` (``max_*``).
    kind: str
    bound: float
    #: Artifact file the check came from.
    source: str

    @property
    def ok(self) -> bool:
        if self.kind == "floor":
            return self.measured >= self.bound
        return self.measured <= self.bound

    @property
    def margin(self) -> float:
        """Signed headroom as a fraction of the bound (``>= 0`` = ok).

        A floor check with ``measured == 1.2 * bound`` has margin 0.2;
        a ceiling check at 80 % of its bound has margin 0.2.  Zero
        bounds degenerate to absolute headroom.
        """
        if self.bound == 0:
            slack = self.measured - self.bound
            return slack if self.kind == "floor" else -slack
        if self.kind == "floor":
            return (self.measured - self.bound) / abs(self.bound)
        return (self.bound - self.measured) / abs(self.bound)


def _checks_from_payload(payload: dict, source: str) -> List[BenchCheck]:
    name = payload.get("benchmark") or Path(source).stem.replace(
        "BENCH_", "", 1
    )
    checks: List[BenchCheck] = []
    for key, bound in sorted(payload.items()):
        if not isinstance(bound, (int, float)) or isinstance(bound, bool):
            continue
        if key.startswith("min_"):
            kind, base = "floor", key[len("min_"):]
            for suffix in ("_required",):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
        elif key.startswith("max_"):
            kind, base = "ceiling", key[len("max_"):]
            for suffix in ("_allowed",):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
        else:
            continue
        measured = payload.get(base)
        if not isinstance(measured, (int, float)) or isinstance(
            measured, bool
        ):
            continue
        checks.append(BenchCheck(
            benchmark=str(name), metric=base, measured=float(measured),
            kind=kind, bound=float(bound), source=source,
        ))
    return checks


def load_bench_artifacts(
    directory=".",
) -> List[Tuple[Path, dict]]:
    """``(path, payload)`` for every ``BENCH_*.json`` under ``directory``.

    Sorted by file name so the report order is stable.  A file that is
    not valid JSON raises ``ValueError`` naming the file.
    """
    artifacts: List[Tuple[Path, dict]] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from error
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: expected a JSON object")
        artifacts.append((path, payload))
    return artifacts


def bench_checks(
    artifacts: Sequence[Tuple[Path, dict]],
) -> List[BenchCheck]:
    """Every threshold check found across the artifacts, in file order."""
    checks: List[BenchCheck] = []
    for path, payload in artifacts:
        checks.extend(_checks_from_payload(payload, str(path)))
    return checks


def render_bench_report(
    artifacts: Sequence[Tuple[Path, dict]],
) -> str:
    """The perf-trajectory table plus a pass/fail summary line."""
    checks = bench_checks(artifacts)
    if not checks:
        return (
            f"{len(artifacts)} artifact(s), no threshold checks found "
            "(no min_*/max_* keys with matching measured metrics)"
        )
    rows = []
    for check in checks:
        sign = ">=" if check.kind == "floor" else "<="
        rows.append((
            check.benchmark,
            check.metric,
            f"{check.measured:,.4g}",
            f"{sign} {check.bound:,.4g}",
            f"{check.margin * 100:+.1f}%",
            "ok" if check.ok else "FAIL",
        ))
    table = format_table(
        ("benchmark", "metric", "measured", "bound", "margin", "status"),
        tuple(rows),
    )
    failed = sum(1 for check in checks if not check.ok)
    summary = (
        f"{len(artifacts)} artifact(s), {len(checks)} check(s), "
        + (f"{failed} FAILING" if failed else "all within bounds")
    )
    return f"{table}\n{summary}"
