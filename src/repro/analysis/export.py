"""Result export to CSV and JSON.

Downstream users typically want the raw numbers, not the text tables;
these helpers serialise :class:`~repro.core.results.SimulationResult`
objects (summary metrics and per-job records) with stdlib csv/json only.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Union

from repro.core.results import SimulationResult

__all__ = ["result_summary_dict", "results_to_json", "jobs_to_csv",
           "results_to_csv"]

#: Summary metrics exported per system, in column order.
SUMMARY_FIELDS = (
    "policy",
    "jobs_completed",
    "makespan_cycles",
    "idle_energy_nj",
    "busy_static_energy_nj",
    "dynamic_energy_nj",
    "total_energy_nj",
    "reconfig_energy_nj",
    "profiling_overhead_nj",
    "reconfig_cycles",
    "stall_decisions",
    "non_best_decisions",
    "tuning_executions",
    "profiling_executions",
    "preemption_count",
    "mean_waiting_cycles",
    "mean_turnaround_cycles",
    "deadline_jobs",
    "deadline_misses",
    "deadline_miss_rate",
)

#: Per-job record fields exported to CSV, in column order.
JOB_FIELDS = (
    "job_id",
    "benchmark",
    "arrival_cycle",
    "start_cycle",
    "completion_cycle",
    "core_index",
    "config_name",
    "profiled",
    "tuning",
    "energy_nj",
    "priority",
    "deadline_cycle",
    "preemptions",
)


def result_summary_dict(result: SimulationResult) -> dict:
    """Summary metrics of one run as a flat JSON-friendly dict."""
    return {name: getattr(result, name) for name in SUMMARY_FIELDS}


def results_to_json(
    results: Mapping[str, SimulationResult],
    path: Union[str, Path],
    *,
    include_jobs: bool = False,
) -> None:
    """Write one or more runs to a JSON file.

    ``include_jobs`` additionally embeds every per-job record (large for
    paper-scale runs).
    """
    blob = {}
    for name, result in results.items():
        entry = result_summary_dict(result)
        entry["exploration_counts"] = dict(result.exploration_counts)
        entry["predictions_kb"] = dict(result.predictions_kb)
        if include_jobs:
            entry["jobs"] = [
                {field: getattr(job, field) for field in JOB_FIELDS}
                for job in result.jobs
            ]
        blob[name] = entry
    Path(path).write_text(json.dumps(blob, indent=2))


def jobs_to_csv(result: SimulationResult, path: Union[str, Path]) -> None:
    """Write one run's per-job records to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(JOB_FIELDS)
        for job in result.jobs:
            writer.writerow([getattr(job, field) for field in JOB_FIELDS])


def results_to_csv(
    results: Mapping[str, SimulationResult], path: Union[str, Path]
) -> None:
    """Write per-system summary rows to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SUMMARY_FIELDS)
        for result in results.values():
            writer.writerow(
                [getattr(result, field) for field in SUMMARY_FIELDS]
            )
