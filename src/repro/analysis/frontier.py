"""Energy / deadline-miss trade-off frontiers over the power axis.

A power-capped campaign (``run_campaign(..., power_configs=...)``)
produces one cell per (policy, load, power configuration).  Tightening
the cap trades energy headroom against deadline misses: cheaper degraded
(config × DVFS) dispatches and throttled waits push completions later.
This module turns those cells into a trade-off *frontier* — one point
per power configuration with the cell's mean energy on one axis and its
mean deadline-miss rate on the other — and marks the Pareto-optimal
(non-dominated) points.

The miss rate comes from :attr:`CampaignCell.observed` (default key
``dag.deadline_miss_rate``, the precedence-gated DAG axis — the only
built-in campaign load whose jobs carry deadlines).  Any observed key
works, so a custom campaign can plot e.g. shed rates instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["FrontierPoint", "frontier_points", "pareto_front",
           "render_frontier"]

#: Observed key holding the deadline-miss rate of a DAG campaign cell.
DEFAULT_MISS_KEY = "dag.deadline_miss_rate"


@dataclass(frozen=True)
class FrontierPoint:
    """One (power configuration → energy, miss-rate) trade-off point."""

    policy: str
    #: Power-configuration label (``None`` = unconstrained baseline).
    power: Optional[str]
    energy_nj: float
    energy_ci95: float
    miss_rate: float
    miss_ci95: float
    #: Replications behind the point.
    n: int
    #: Set by :func:`pareto_front`: no other point of the same policy
    #: has both lower-or-equal energy and lower-or-equal miss rate (with
    #: one strictly lower).
    pareto: bool = False

    @property
    def label(self) -> str:
        return "uncapped" if self.power is None else self.power


def frontier_points(
    result,
    *,
    policy: Optional[str] = None,
    miss_key: str = DEFAULT_MISS_KEY,
    energy_metric: str = "total_energy_nj",
) -> List[FrontierPoint]:
    """Trade-off points of a power-swept campaign, energy-ascending.

    ``result`` is a :class:`~repro.campaign.CampaignResult` whose cells
    carry the ``power`` axis and whose ``observed`` aggregates include
    ``miss_key`` (run the campaign with the ``dag`` axis, or any load
    that publishes a miss-rate key).  ``policy`` restricts the points to
    one policy; by default every policy contributes its own frontier.
    """
    points = []
    for cell in result.cells:
        if policy is not None and cell.policy != policy:
            continue
        if miss_key not in cell.observed:
            continue
        energy = cell.metrics[energy_metric]
        miss = cell.observed[miss_key]
        points.append(
            FrontierPoint(
                policy=cell.policy,
                power=cell.power,
                energy_nj=energy.mean,
                energy_ci95=energy.ci95,
                miss_rate=miss.mean,
                miss_ci95=miss.ci95,
                n=cell.n,
            )
        )
    if not points:
        raise KeyError(
            f"no campaign cell carries the {miss_key!r} observed key"
            + ("" if policy is None else f" for policy {policy!r}")
            + "; run the campaign with the dag axis (deadline-carrying "
            "jobs) and a power_configs sweep"
        )
    points.sort(key=lambda p: (p.policy, p.energy_nj, p.miss_rate))
    return pareto_front(points)


def pareto_front(
    points: Sequence[FrontierPoint],
) -> List[FrontierPoint]:
    """Mark each point's Pareto-optimality within its policy.

    A point is dominated when another point of the same policy is no
    worse on both axes and strictly better on at least one.  Returns new
    :class:`FrontierPoint` instances (inputs are frozen), input order
    preserved.
    """
    marked = []
    for p in points:
        dominated = False
        for q in points:
            if q is p or q.policy != p.policy:
                continue
            if (
                q.energy_nj <= p.energy_nj
                and q.miss_rate <= p.miss_rate
                and (
                    q.energy_nj < p.energy_nj
                    or q.miss_rate < p.miss_rate
                )
            ):
                dominated = True
                break
        marked.append(
            FrontierPoint(
                policy=p.policy,
                power=p.power,
                energy_nj=p.energy_nj,
                energy_ci95=p.energy_ci95,
                miss_rate=p.miss_rate,
                miss_ci95=p.miss_ci95,
                n=p.n,
                pareto=not dominated,
            )
        )
    return marked


def render_frontier(
    result,
    *,
    policy: Optional[str] = None,
    miss_key: str = DEFAULT_MISS_KEY,
    energy_metric: str = "total_energy_nj",
) -> str:
    """Text table of the energy / deadline-miss frontier.

    Pareto-optimal points are starred; energies are mJ, miss rates
    percentages, both with their 95 % CI half-widths.
    """
    points = frontier_points(
        result, policy=policy, miss_key=miss_key,
        energy_metric=energy_metric,
    )
    width = max([12] + [len(p.label) for p in points])
    pwidth = max([6] + [len(p.policy) for p in points])
    header = (
        f"{'policy':<{pwidth}} {'power':<{width}} {'n':>3} "
        f"{'energy (mJ)':>18} {'miss rate (%)':>18}  pareto"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.policy:<{pwidth}} {p.label:<{width}} {p.n:>3} "
            f"{p.energy_nj / 1e6:>10.3f} ±{p.energy_ci95 / 1e6:<6.3f} "
            f"{p.miss_rate * 100:>10.2f} ±{p.miss_ci95 * 100:<6.2f} "
            f"{'*' if p.pareto else ''}"
        )
    return "\n".join(lines)
