"""Normalisation helpers for the paper's figures.

Both result figures report ratios: Figure 6 normalises idle/dynamic/total
energy to the *base* system, Figure 7 normalises cycles and energies to
the *optimal* system.  :func:`normalize_results` produces those ratio
tables from raw :class:`~repro.core.results.SimulationResult` objects.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.results import SimulationResult

__all__ = ["normalize_results", "percent_change"]

#: Metrics reported by the paper's figures.
METRICS = ("idle_energy", "dynamic_energy", "total_energy", "cycles")


def normalize_results(
    results: Mapping[str, SimulationResult],
    baseline: str,
) -> Dict[str, Dict[str, float]]:
    """Ratio of each system's metrics to a baseline system.

    Returns ``{system: {metric: ratio}}`` including the baseline itself
    (all ratios 1.0), ordered as the input mapping.
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among results")
    base = results[baseline]
    return {
        name: result.normalized_to(base) for name, result in results.items()
    }


def percent_change(ratio: float) -> float:
    """Ratio → signed percent change (0.72 → -28.0)."""
    return (ratio - 1.0) * 100.0
