"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.results import SimulationResult

from .normalize import METRICS, normalize_results, percent_change

__all__ = [
    "format_table",
    "render_benchmark_breakdown",
    "render_figure6",
    "render_figure7",
    "render_energy_decomposition",
    "render_gantt",
    "render_result_summary",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Fixed-width text table (no external dependencies)."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _normalized_table(
    results: Mapping[str, SimulationResult],
    baseline: str,
    metrics: Sequence[str],
    title: str,
) -> str:
    normalized = normalize_results(results, baseline)
    headers = ["system"] + [f"{m} (norm)" for m in metrics] + [
        f"{m} (%)" for m in metrics
    ]
    rows = []
    for name, ratios in normalized.items():
        rows.append(
            [name]
            + [ratios[m] for m in metrics]
            + [percent_change(ratios[m]) for m in metrics]
        )
    return f"{title}\n(baseline = {baseline})\n" + format_table(
        headers, rows, float_format="{:+.3f}"
    )


def render_figure6(results: Mapping[str, SimulationResult]) -> str:
    """Figure 6: idle/dynamic/total energy normalised to the base system."""
    metrics = ("idle_energy", "dynamic_energy", "total_energy")
    return _normalized_table(
        results, "base", metrics, "Figure 6 — energy normalised to base"
    )


def render_figure7(results: Mapping[str, SimulationResult]) -> str:
    """Figure 7: cycles and energy normalised to the optimal system."""
    return _normalized_table(
        results,
        "optimal",
        METRICS,
        "Figure 7 — cycles and energy normalised to optimal",
    )


def render_benchmark_breakdown(result: SimulationResult) -> str:
    """Per-benchmark placement/energy table for one run.

    Shows, for each benchmark: how many jobs ran, the configurations
    used (profiling and tuning runs included), the core-placement
    spread and the mean per-job energy — the level of detail the
    paper's aggregate figures hide.
    """
    by_benchmark: Dict[str, list] = {}
    for record in result.jobs:
        by_benchmark.setdefault(record.benchmark, []).append(record)
    rows = []
    for benchmark in sorted(by_benchmark):
        records = by_benchmark[benchmark]
        configs = sorted({r.config_name for r in records})
        cores = sorted({r.core_index + 1 for r in records})
        mean_energy = sum(r.energy_nj for r in records) / len(records)
        mean_wait = sum(r.waiting_cycles for r in records) / len(records)
        rows.append((
            benchmark,
            len(records),
            f"{mean_energy / 1e3:.1f}",
            f"{mean_wait / 1e3:.0f}k",
            ",".join(str(c) for c in cores),
            configs[0] if len(configs) == 1 else f"{len(configs)} configs",
        ))
    return f"per-benchmark breakdown ({result.policy})\n" + format_table(
        ("benchmark", "jobs", "mean energy (uJ)", "mean wait",
         "cores used", "configuration(s)"),
        rows,
    )


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 78,
) -> str:
    """ASCII timeline of core occupancy for one run.

    One row per core; each executed job paints its span with a
    single-character tag cycling through the benchmark's first letter.
    Meant for small runs (examples, debugging) — at paper scale the
    lines just show solid occupancy.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    if not result.jobs:
        return "(no jobs)"
    makespan = max(result.makespan_cycles, 1)
    cores: Dict[int, list] = {}
    for record in result.jobs:
        cores.setdefault(record.core_index, []).append(record)
    lines = [f"schedule timeline ({result.policy}; "
             f"{makespan} cycles across {width} columns)"]
    for core_index in sorted(cores):
        row = [" "] * width
        for record in cores[core_index]:
            start = int(record.start_cycle / makespan * (width - 1))
            stop = max(start + 1,
                       int(record.completion_cycle / makespan * (width - 1)))
            tag = record.benchmark[0]
            if record.profiled:
                tag = tag.upper()
            for i in range(start, min(stop, width)):
                row[i] = tag
        lines.append(f"core {core_index + 1} |{''.join(row)}|")
    lines.append(
        "(lower-case = normal execution, upper-case first letter = "
        "profiling run)"
    )
    return "\n".join(lines)


def render_energy_decomposition(configs=None) -> str:
    """CACTI-style per-access energy decomposition table.

    Shows where each configuration's access energy goes (decoder, word
    lines, bit lines, sense amps, tags, output drivers) — the structural
    view behind the monotone size/associativity trends the scheduler
    exploits.  Defaults to the full Table 1 design space.
    """
    from repro.cache.config import DESIGN_SPACE
    from repro.energy.cacti import CactiModel

    model = CactiModel()
    rows = []
    for config in (configs if configs is not None else DESIGN_SPACE):
        c = model.components(config)
        rows.append((
            config.name,
            f"{c.decode_nj:.3f}",
            f"{c.wordline_nj:.3f}",
            f"{c.bitline_nj:.3f}",
            f"{c.senseamp_nj:.3f}",
            f"{c.tag_nj:.3f}",
            f"{c.output_nj:.3f}",
            f"{c.total_nj:.3f}",
        ))
    return "per-access energy decomposition (nJ)\n" + format_table(
        ("config", "decode", "wordline", "bitline", "sense",
         "tag", "output", "total"),
        rows,
    )


def render_result_summary(result: SimulationResult) -> str:
    """Human-readable single-run summary."""
    rows = [
        ("jobs completed", result.jobs_completed),
        ("makespan (cycles)", result.makespan_cycles),
        ("idle energy (uJ)", result.idle_energy_nj / 1e3),
        ("busy static energy (uJ)", result.busy_static_energy_nj / 1e3),
        ("dynamic energy (uJ)", result.dynamic_energy_nj / 1e3),
        ("total energy (uJ)", result.total_energy_nj / 1e3),
        ("reconfigurations (cycles)", result.reconfig_cycles),
        ("profiling runs", result.profiling_executions),
        ("tuning executions", result.tuning_executions),
        ("stall decisions", result.stall_decisions),
        ("non-best decisions", result.non_best_decisions),
        ("mean waiting (cycles)", result.mean_waiting_cycles),
    ]
    return f"system: {result.policy}\n" + format_table(
        ("metric", "value"), rows, float_format="{:.1f}"
    )
