"""From-scratch artificial neural network substrate (numpy only):
dense layers, activations, losses, optimisers, a training loop with
early stopping, and the paper's 30-member bagging ensemble.
"""

from .activations import (
    ACTIVATION_NAMES,
    Activation,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
    make_activation,
)
from .bagging import (
    PAPER_ENSEMBLE_SIZE,
    TRAINING_ENGINES,
    BaggedRegressor,
    bootstrap_indices,
)
from .batched import train_ensemble_batched
from .layers import Dense
from .losses import LOSS_NAMES, HuberLoss, Loss, MAELoss, MSELoss, make_loss
from .metrics import class_accuracy, confusion_counts, mae, mse, r2_score
from .neighbors import KNNRegressor
from .network import MLP, PAPER_TOPOLOGY
from .optimizers import OPTIMIZER_NAMES, Adam, Optimizer, SGD, make_optimizer
from .preprocessing import StandardScaler, log_transform, snap_to_classes
from .tree import DecisionTreeRegressor, RandomForestRegressor
from .training import TrainingConfig, TrainingHistory, train

__all__ = [
    "ACTIVATION_NAMES",
    "Activation",
    "Adam",
    "BaggedRegressor",
    "DecisionTreeRegressor",
    "Dense",
    "HuberLoss",
    "Identity",
    "KNNRegressor",
    "LOSS_NAMES",
    "LeakyReLU",
    "Loss",
    "MAELoss",
    "MLP",
    "MSELoss",
    "OPTIMIZER_NAMES",
    "Optimizer",
    "PAPER_ENSEMBLE_SIZE",
    "PAPER_TOPOLOGY",
    "RandomForestRegressor",
    "ReLU",
    "SGD",
    "Sigmoid",
    "StandardScaler",
    "TRAINING_ENGINES",
    "Tanh",
    "TrainingConfig",
    "TrainingHistory",
    "bootstrap_indices",
    "class_accuracy",
    "confusion_counts",
    "log_transform",
    "mae",
    "make_activation",
    "make_loss",
    "make_optimizer",
    "mse",
    "r2_score",
    "snap_to_classes",
    "train",
    "train_ensemble_batched",
]
