"""Activation functions with analytic derivatives.

Each activation is a stateless object with ``forward`` and ``backward``;
``backward`` receives the *pre-activation* input that ``forward`` saw and
the upstream gradient, and returns the downstream gradient.  Keeping the
derivative next to the function keeps the backpropagation in
:mod:`repro.ann.network` a three-line chain rule.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Type

import numpy as np

__all__ = [
    "Activation",
    "Identity",
    "Tanh",
    "Sigmoid",
    "ReLU",
    "LeakyReLU",
    "make_activation",
    "ACTIVATION_NAMES",
]


class Activation(ABC):
    """Elementwise nonlinearity."""

    name: str = "activation"

    @abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise."""

    @abstractmethod
    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. ``x`` given the gradient w.r.t. the output."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class Identity(Activation):
    """Linear pass-through (used for regression output layers)."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Tanh(Activation):
    """Hyperbolic tangent, the classic small-MLP nonlinearity."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        y = np.tanh(x)
        return grad_out * (1.0 - y * y)


class Sigmoid(Activation):
    """Logistic sigmoid."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return out

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        y = self.forward(x)
        return grad_out * y * (1.0 - y)


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (x > 0.0)


class LeakyReLU(Activation):
    """ReLU with a small negative-side slope (avoids dead units)."""

    name = "leaky_relu"

    def __init__(self, slope: float = 0.01) -> None:
        if slope < 0:
            raise ValueError(f"slope must be non-negative, got {slope}")
        self.slope = slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0.0, x, self.slope * x)

    def backward(self, x: np.ndarray, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * np.where(x > 0.0, 1.0, self.slope)


_REGISTRY: Dict[str, Type[Activation]] = {
    cls.name: cls for cls in (Identity, Tanh, Sigmoid, ReLU, LeakyReLU)
}

#: Names accepted by :func:`make_activation`.
ACTIVATION_NAMES = tuple(sorted(_REGISTRY))


def make_activation(name: str) -> Activation:
    """Construct an activation by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; choose from {ACTIVATION_NAMES}"
        ) from None
