"""Bagged ensemble of MLP regressors.

Paper §IV.D: "We used bagging to improve the ANN's accuracy and
generalization, which trains several different ANNs using a subset of the
input data and averages the ANNs' outputs to determine the final
prediction.  We trained 30 ANNs and initialized the model weights
randomly."

:class:`BaggedRegressor` reproduces exactly that: each member trains on a
bootstrap resample of the training set with its own weight-initialisation
seed, and prediction is the mean of the member outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .network import MLP, PAPER_TOPOLOGY
from .training import TrainingConfig, TrainingHistory, train

__all__ = ["BaggedRegressor", "PAPER_ENSEMBLE_SIZE"]

#: The paper trained 30 ANNs.
PAPER_ENSEMBLE_SIZE = 30


@dataclass
class BaggedRegressor:
    """Bootstrap-aggregated MLP ensemble.

    Parameters
    ----------
    in_features:
        Input feature width.
    n_members:
        Ensemble size (the paper used 30).
    hidden:
        Hidden topology of every member (the paper's {18, 5}).
    hidden_activation:
        Hidden nonlinearity name.
    seed:
        Root seed; member ``i`` uses ``seed + i`` for both its bootstrap
        resample and its random weight initialisation.
    """

    in_features: int
    n_members: int = PAPER_ENSEMBLE_SIZE
    hidden: Sequence[int] = PAPER_TOPOLOGY
    hidden_activation: str = "tanh"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.in_features <= 0:
            raise ValueError("in_features must be positive")
        if self.n_members <= 0:
            raise ValueError("n_members must be positive")
        self.members: List[MLP] = [
            MLP(
                self.in_features,
                self.hidden,
                1,
                hidden_activation=self.hidden_activation,
                seed=self.seed + i,
            )
            for i in range(self.n_members)
        ]
        self._trained = False

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        *,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        config: TrainingConfig = TrainingConfig(),
    ) -> List[TrainingHistory]:
        """Train every member on its own bootstrap resample."""
        x_train = np.atleast_2d(np.asarray(x_train, dtype=float))
        y_train = np.asarray(y_train, dtype=float)
        if y_train.ndim == 1:
            y_train = y_train[:, None]
        n = x_train.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        histories: List[TrainingHistory] = []
        for i, member in enumerate(self.members):
            rng = np.random.default_rng(self.seed + i)
            idx = rng.integers(0, n, size=n)
            member_config = TrainingConfig(
                epochs=config.epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                patience=config.patience,
                shuffle=config.shuffle,
                seed=config.seed + i,
            )
            histories.append(
                train(
                    member,
                    x_train[idx],
                    y_train[idx],
                    x_val=x_val,
                    y_val=y_val,
                    config=member_config,
                )
            )
        self._trained = True
        return histories

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean of member predictions, shape ``(n,)``."""
        if not self._trained:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros((x.shape[0], 1))
        for member in self.members:
            total += member.forward(x)
        return (total / self.n_members).ravel()

    def member_predictions(self, x: np.ndarray) -> np.ndarray:
        """Per-member predictions, shape ``(n_members, n)``."""
        if not self._trained:
            raise RuntimeError("member_predictions() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.stack([m.forward(x).ravel() for m in self.members])

    def prediction_std(self, x: np.ndarray) -> np.ndarray:
        """Ensemble disagreement (std of member outputs) per sample."""
        return self.member_predictions(x).std(axis=0)
