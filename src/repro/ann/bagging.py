"""Bagged ensemble of MLP regressors.

Paper §IV.D: "We used bagging to improve the ANN's accuracy and
generalization, which trains several different ANNs using a subset of the
input data and averages the ANNs' outputs to determine the final
prediction.  We trained 30 ANNs and initialized the model weights
randomly."

:class:`BaggedRegressor` reproduces exactly that: each member trains on a
bootstrap resample of the training set with its own weight-initialisation
seed, and prediction is the mean of the member outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .batched import train_ensemble_batched
from .network import MLP, PAPER_TOPOLOGY
from .training import TrainingConfig, TrainingHistory, train

__all__ = [
    "BaggedRegressor",
    "PAPER_ENSEMBLE_SIZE",
    "TRAINING_ENGINES",
    "bootstrap_indices",
]

#: The paper trained 30 ANNs.
PAPER_ENSEMBLE_SIZE = 30

#: Ensemble-training engines accepted by :meth:`BaggedRegressor.fit`.
#: ``batched`` (the default) trains all members in one stacked pass
#: (:mod:`repro.ann.batched`); ``sequential`` is the per-member
#: reference loop the batched engine is property-tested against.
TRAINING_ENGINES = ("batched", "sequential")


def bootstrap_indices(seed: int, n_members: int, n: int) -> np.ndarray:
    """Per-member bootstrap resample matrix, shape ``(n_members, n)``.

    Member ``i`` draws its resample from ``default_rng(seed + i)`` —
    the single source of bootstrap randomness for *both* training
    engines, so their members see identical data.
    """
    if n_members <= 0:
        raise ValueError("n_members must be positive")
    if n <= 0:
        raise ValueError("n must be positive")
    return np.stack(
        [
            np.random.default_rng(seed + i).integers(0, n, size=n)
            for i in range(n_members)
        ]
    )


@dataclass
class BaggedRegressor:
    """Bootstrap-aggregated MLP ensemble.

    Parameters
    ----------
    in_features:
        Input feature width.
    n_members:
        Ensemble size (the paper used 30).
    hidden:
        Hidden topology of every member (the paper's {18, 5}).
    hidden_activation:
        Hidden nonlinearity name.
    seed:
        Root seed; member ``i`` uses ``seed + i`` for both its bootstrap
        resample and its random weight initialisation.
    """

    in_features: int
    n_members: int = PAPER_ENSEMBLE_SIZE
    hidden: Sequence[int] = PAPER_TOPOLOGY
    hidden_activation: str = "tanh"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.in_features <= 0:
            raise ValueError("in_features must be positive")
        if self.n_members <= 0:
            raise ValueError("n_members must be positive")
        self.members: List[MLP] = [
            MLP(
                self.in_features,
                self.hidden,
                1,
                hidden_activation=self.hidden_activation,
                seed=self.seed + i,
            )
            for i in range(self.n_members)
        ]
        self._trained = False

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        *,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        config: TrainingConfig = TrainingConfig(),
        engine: str = "batched",
    ) -> List[TrainingHistory]:
        """Train every member on its own bootstrap resample.

        ``engine`` selects between the vectorised stacked-pass trainer
        (``batched``, the default) and the per-member reference loop
        (``sequential``); both consume identical per-member bootstrap
        and shuffle RNG streams and produce equivalent members.
        """
        if engine not in TRAINING_ENGINES:
            raise ValueError(
                f"unknown training engine {engine!r}; "
                f"choose from {TRAINING_ENGINES}"
            )
        x_train = np.atleast_2d(np.asarray(x_train, dtype=float))
        y_train = np.asarray(y_train, dtype=float)
        if y_train.ndim == 1:
            y_train = y_train[:, None]
        n = x_train.shape[0]
        if n == 0:
            raise ValueError("empty training set")
        bootstrap = bootstrap_indices(self.seed, self.n_members, n)
        if engine == "batched":
            histories = train_ensemble_batched(
                self.members,
                x_train,
                y_train,
                bootstrap=bootstrap,
                x_val=x_val,
                y_val=y_val,
                config=config,
                seeds=[config.seed + i for i in range(self.n_members)],
            )
            self._trained = True
            return histories
        histories: List[TrainingHistory] = []
        for i, member in enumerate(self.members):
            member_config = TrainingConfig(
                epochs=config.epochs,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                patience=config.patience,
                shuffle=config.shuffle,
                seed=config.seed + i,
            )
            histories.append(
                train(
                    member,
                    x_train[bootstrap[i]],
                    y_train[bootstrap[i]],
                    x_val=x_val,
                    y_val=y_val,
                    config=member_config,
                )
            )
        self._trained = True
        return histories

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean of member predictions, shape ``(n,)``."""
        if not self._trained:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        total = np.zeros((x.shape[0], 1))
        for member in self.members:
            total += member.forward(x)
        return (total / self.n_members).ravel()

    def member_predictions(self, x: np.ndarray) -> np.ndarray:
        """Per-member predictions, shape ``(n_members, n)``."""
        if not self._trained:
            raise RuntimeError("member_predictions() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.stack([m.forward(x).ravel() for m in self.members])

    def prediction_std(self, x: np.ndarray) -> np.ndarray:
        """Ensemble disagreement (std of member outputs) per sample."""
        return self.member_predictions(x).std(axis=0)
