"""Batched (vectorised) ensemble training engine.

The sequential reference (:func:`repro.ann.training.train` called once
per ensemble member by :class:`repro.ann.bagging.BaggedRegressor`)
spends its time in Python loop overhead: the paper's 30-member ensemble
multiplies every forward/backward/optimiser dispatch by 30 on matrices
of at most a few hundred floats.  This engine trains **all members in
one stacked pass**:

* parameters are held as ``(members, in, out)`` tensors, one stack per
  layer, and the forward/backward passes are batched matmuls
  (``(M, B, in) @ (M, in, out)``) — numpy dispatches the same GEMM per
  member slice, so per-member arithmetic is identical to the reference;
* every member trains on its own rows of a per-member bootstrap index
  matrix, gathered into an ``(M, n, features)`` tensor up front;
* per-member early stopping is an *active-member mask*: members whose
  validation loss stops improving drop out of the stacked tensors (the
  state is compacted), while the survivors keep training in lockstep.

Member equivalence is exact by construction — each member consumes its
own shuffle RNG stream (``config.seed + i``, as the reference does), the
Adam step count ``t`` is shared by all active members because members
only ever *leave* the lockstep batch loop, and reductions run over the
same contiguous data per member — and is property-tested against the
sequential loop in ``tests/ann/test_batched.py``.

The engine implements the reference's defaults (MSE loss, Adam); those
are the only settings :class:`~repro.ann.bagging.BaggedRegressor` uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .network import MLP
from .training import TrainingConfig, TrainingHistory

__all__ = ["train_ensemble_batched"]


def _validate_members(members: Sequence[MLP]) -> None:
    if not members:
        raise ValueError("need at least one ensemble member")
    first = members[0]
    for member in members[1:]:
        if member.topology != first.topology:
            raise ValueError(
                "batched training needs a homogeneous ensemble: "
                f"{member.topology} != {first.topology}"
            )
        for layer, ref_layer in zip(member.layers, first.layers):
            if type(layer.activation) is not type(ref_layer.activation):
                raise ValueError(
                    "batched training needs identical member activations"
                )


def train_ensemble_batched(
    members: Sequence[MLP],
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    bootstrap: Optional[np.ndarray] = None,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    config: TrainingConfig = TrainingConfig(),
    seeds: Optional[Sequence[int]] = None,
) -> List[TrainingHistory]:
    """Train every member in place in one stacked pass.

    Parameters
    ----------
    members:
        Homogeneous ensemble (same topology and activations); their
        weights are updated in place, exactly as the sequential
        reference leaves them.
    x_train, y_train:
        Shared training pool, ``(n, in)`` and ``(n, out)``.
    bootstrap:
        Optional ``(len(members), n)`` per-member resample index matrix;
        member ``i`` trains on ``x_train[bootstrap[i]]``.  ``None``
        trains every member on the pool as-is.
    x_val, y_val:
        Shared validation set driving per-member early stopping and
        best-weight restoration (semantics of
        :func:`repro.ann.training.train`).
    config:
        Hyperparameters; the engine implements the reference defaults
        (MSE loss, Adam optimiser).
    seeds:
        Per-member shuffle seeds; defaults to ``config.seed + i``,
        matching :class:`~repro.ann.bagging.BaggedRegressor`.

    Returns per-member :class:`TrainingHistory`, index-aligned with
    ``members``.
    """
    _validate_members(members)
    n_members = len(members)
    x_train = np.atleast_2d(np.asarray(x_train, dtype=float))
    y_train = np.atleast_2d(np.asarray(y_train, dtype=float))
    if y_train.shape[0] != x_train.shape[0]:
        raise ValueError("x_train and y_train row counts differ")
    n = x_train.shape[0]
    if n == 0:
        raise ValueError("empty training set")

    if bootstrap is None:
        xs = np.broadcast_to(x_train, (n_members, *x_train.shape)).copy()
        ys = np.broadcast_to(y_train, (n_members, *y_train.shape)).copy()
    else:
        bootstrap = np.asarray(bootstrap, dtype=int)
        if bootstrap.shape != (n_members, n):
            raise ValueError(
                f"bootstrap must have shape {(n_members, n)}, "
                f"got {bootstrap.shape}"
            )
        xs = x_train[bootstrap]
        ys = y_train[bootstrap]

    has_val = x_val is not None and y_val is not None and len(x_val) > 0
    if has_val:
        x_val = np.atleast_2d(np.asarray(x_val, dtype=float))
        y_val = np.atleast_2d(np.asarray(y_val, dtype=float))
        if y_val.shape[0] != x_val.shape[0]:
            raise ValueError("x_val and y_val row counts differ")

    if seeds is None:
        seeds = [config.seed + i for i in range(n_members)]
    elif len(seeds) != n_members:
        raise ValueError("need one shuffle seed per member")
    rngs = [np.random.default_rng(seed) for seed in seeds]

    n_layers = len(members[0].layers)
    activations = [layer.activation for layer in members[0].layers]
    # Stacked parameters and Adam state, compacted to active members.
    weights = [
        np.stack([m.layers[l].weights for m in members])
        for l in range(n_layers)
    ]
    biases = [
        np.stack([m.layers[l].bias for m in members]) for l in range(n_layers)
    ]
    m_w = [np.zeros_like(w) for w in weights]
    v_w = [np.zeros_like(w) for w in weights]
    m_b = [np.zeros_like(b) for b in biases]
    v_b = [np.zeros_like(b) for b in biases]
    lr = config.learning_rate
    beta1, beta2, eps = 0.9, 0.999, 1e-8
    t = 0  # Adam step count — shared: active members step in lockstep.

    histories = [TrainingHistory() for _ in range(n_members)]
    # Early-stopping state, indexed by original member id.
    best_val = np.full(n_members, np.inf)
    since_best = np.zeros(n_members, dtype=int)
    best_weights = [w.copy() for w in weights]
    best_biases = [b.copy() for b in biases]
    has_best = np.zeros(n_members, dtype=bool)
    ids = np.arange(n_members)  # original id of each compacted row

    def mean_per_member(values: np.ndarray) -> np.ndarray:
        """Row-wise mean over the flattened (batch, out) trailing axes."""
        return values.reshape(values.shape[0], -1).mean(axis=1)

    for epoch in range(config.epochs):
        if ids.size == 0:
            break
        if config.shuffle:
            orders = np.stack([rngs[i].permutation(n) for i in ids])
            xe = np.take_along_axis(xs, orders[:, :, None], axis=1)
            ye = np.take_along_axis(ys, orders[:, :, None], axis=1)
        else:
            xe, ye = xs, ys

        epoch_loss = np.zeros(ids.size)
        batches = 0
        for start in range(0, n, config.batch_size):
            xb = xe[:, start : start + config.batch_size]
            yb = ye[:, start : start + config.batch_size]
            # Forward, caching layer inputs and pre-activations.
            out = xb
            inputs: List[np.ndarray] = []
            preacts: List[np.ndarray] = []
            for l in range(n_layers):
                inputs.append(out)
                z = out @ weights[l] + biases[l][:, None, :]
                preacts.append(z)
                out = activations[l].forward(z)
            diff = out - yb
            epoch_loss += mean_per_member(diff * diff)
            batches += 1
            # Backward (MSE gradient, same evaluation order as the
            # reference: (2 * diff) / per-member prediction size).
            grad = 2.0 * diff / diff[0].size
            grads_w: List[np.ndarray] = [None] * n_layers  # type: ignore
            grads_b: List[np.ndarray] = [None] * n_layers  # type: ignore
            for l in reversed(range(n_layers)):
                grad_z = activations[l].backward(preacts[l], grad)
                grads_w[l] = np.matmul(inputs[l].transpose(0, 2, 1), grad_z)
                grads_b[l] = grad_z.sum(axis=1)
                grad = np.matmul(grad_z, weights[l].transpose(0, 2, 1))
            # Adam step; bias corrections are scalars because every
            # active member has taken exactly t steps.
            t += 1
            c1 = 1 - beta1**t
            c2 = 1 - beta2**t
            for l in range(n_layers):
                for params, grads, ms, vs in (
                    (weights, grads_w, m_w, v_w),
                    (biases, grads_b, m_b, v_b),
                ):
                    ms[l] = beta1 * ms[l] + (1 - beta1) * grads[l]
                    vs[l] = beta2 * vs[l] + (1 - beta2) * grads[l] * grads[l]
                    m_hat = ms[l] / c1
                    v_hat = vs[l] / c2
                    params[l] -= lr * m_hat / (np.sqrt(v_hat) + eps)

        mean_loss = epoch_loss / max(batches, 1)
        for row, member_id in enumerate(ids):
            histories[member_id].train_loss.append(float(mean_loss[row]))

        if not has_val:
            continue
        out = x_val[None, :, :]
        for l in range(n_layers):
            out = activations[l].forward(
                out @ weights[l] + biases[l][:, None, :]
            )
        val_diff = out - y_val[None, :, :]
        val_values = mean_per_member(val_diff * val_diff)
        for row, member_id in enumerate(ids):
            histories[member_id].val_loss.append(float(val_values[row]))

        improved = val_values < best_val[ids] - 1e-12
        improved_ids = ids[improved]
        best_val[improved_ids] = val_values[improved]
        since_best[improved_ids] = 0
        since_best[ids[~improved]] += 1
        has_best[improved_ids] = True
        for member_id in improved_ids:
            histories[member_id].best_epoch = epoch
        for l in range(n_layers):
            best_weights[l][improved_ids] = weights[l][improved]
            best_biases[l][improved_ids] = biases[l][improved]

        if config.patience is None:
            continue
        keep = since_best[ids] < config.patience
        if keep.all():
            continue
        for member_id in ids[~keep]:
            histories[member_id].stopped_early = True
        # Compact every stacked tensor down to the surviving members.
        ids = ids[keep]
        xs, ys = xs[keep], ys[keep]
        for l in range(n_layers):
            weights[l] = weights[l][keep]
            biases[l] = biases[l][keep]
            m_w[l], v_w[l] = m_w[l][keep], v_w[l][keep]
            m_b[l], v_b[l] = m_b[l][keep], v_b[l][keep]

    # Scatter surviving members' final weights into the snapshot stacks,
    # then hand each member its reference-equivalent final parameters:
    # best-validation weights when a validation set drove the run, the
    # final weights otherwise.
    final_weights = [w.copy() for w in best_weights]
    final_biases = [b.copy() for b in best_biases]
    if has_val:
        keep_final = ~has_best[ids]  # never-improved members keep final
    else:
        keep_final = np.ones(ids.size, dtype=bool)
    for l in range(n_layers):
        final_weights[l][ids[keep_final]] = weights[l][keep_final]
        final_biases[l][ids[keep_final]] = biases[l][keep_final]
    for member_id, member in enumerate(members):
        member.set_weights(
            [
                (final_weights[l][member_id], final_biases[l][member_id])
                for l in range(n_layers)
            ]
        )
        if not has_val:
            history = histories[member_id]
            history.best_epoch = history.epochs_run - 1
    return histories
