"""Dense (fully connected) layer with explicit backpropagation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .activations import Activation, Identity, make_activation

__all__ = ["Dense"]


class Dense:
    """One fully connected layer: ``y = activation(x @ W + b)``.

    Weights use the classic Glorot/Xavier uniform initialisation, which
    suits the tanh hidden layers of the paper's small MLP.

    The layer caches the last forward inputs so ``backward`` can compute
    parameter gradients; call ``forward`` before every ``backward``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[Activation] = None,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation if activation is not None else Identity()
        generator = rng if rng is not None else np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weights = generator.uniform(
            -limit, limit, size=(in_features, out_features)
        )
        self.bias = np.zeros(out_features)
        # Gradients mirror the parameter shapes.
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._last_input: Optional[np.ndarray] = None
        self._last_preact: Optional[np.ndarray] = None

    @classmethod
    def from_activation_name(
        cls,
        in_features: int,
        out_features: int,
        activation: str,
        rng: Optional[np.random.Generator] = None,
    ) -> "Dense":
        """Construct with an activation looked up by name."""
        return cls(
            in_features, out_features, make_activation(activation), rng=rng
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for a batch ``(n, in_features)``."""
        x = np.atleast_2d(x)
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input width {self.in_features}, got {x.shape[1]}"
            )
        self._last_input = x
        self._last_preact = x @ self.weights + self.bias
        return self.activation.forward(self._last_preact)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input."""
        if self._last_input is None or self._last_preact is None:
            raise RuntimeError("backward() called before forward()")
        grad_preact = self.activation.backward(self._last_preact, grad_out)
        self.grad_weights = self._last_input.T @ grad_preact
        self.grad_bias = grad_preact.sum(axis=0)
        return grad_preact @ self.weights.T

    def zero_grad(self) -> None:
        """Reset accumulated gradients."""
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def parameter_count(self) -> int:
        """Number of trainable scalars in the layer."""
        return self.weights.size + self.bias.size
