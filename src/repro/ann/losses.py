"""Loss functions for training.

Each loss exposes ``value`` and ``gradient`` (w.r.t. the prediction).
The reproduction's best-cache-size predictor is a regression net, so MSE
is the default; Huber is provided for robustness experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss", "make_loss", "LOSS_NAMES"]


def _check_shapes(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ValueError(
            f"prediction shape {pred.shape} != target shape {target.shape}"
        )
    if pred.size == 0:
        raise ValueError("loss evaluated on empty arrays")


class Loss(ABC):
    """Scalar training objective."""

    name: str = "loss"

    @abstractmethod
    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abstractmethod
    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss w.r.t. ``pred``."""


class MSELoss(Loss):
    """Mean squared error."""

    name = "mse"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_shapes(pred, target)
        diff = pred - target
        return float(np.mean(diff * diff))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_shapes(pred, target)
        return 2.0 * (pred - target) / pred.size


class MAELoss(Loss):
    """Mean absolute error (subgradient at zero is zero)."""

    name = "mae"

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_shapes(pred, target)
        return float(np.mean(np.abs(pred - target)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_shapes(pred, target)
        return np.sign(pred - target) / pred.size


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear in the tails."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        _check_shapes(pred, target)
        diff = pred - target
        abs_diff = np.abs(diff)
        quad = 0.5 * diff * diff
        lin = self.delta * (abs_diff - 0.5 * self.delta)
        return float(np.mean(np.where(abs_diff <= self.delta, quad, lin)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        _check_shapes(pred, target)
        diff = pred - target
        clipped = np.clip(diff, -self.delta, self.delta)
        return clipped / pred.size


_REGISTRY = {cls.name: cls for cls in (MSELoss, MAELoss, HuberLoss)}

#: Names accepted by :func:`make_loss`.
LOSS_NAMES = tuple(sorted(_REGISTRY))


def make_loss(name: str) -> Loss:
    """Construct a loss by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown loss {name!r}; choose from {LOSS_NAMES}"
        ) from None
