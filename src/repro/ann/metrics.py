"""Evaluation metrics for the predictor."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["mse", "mae", "r2_score", "class_accuracy", "confusion_counts"]


def _pair(pred: np.ndarray, target: np.ndarray):
    pred = np.asarray(pred, dtype=float).ravel()
    target = np.asarray(target, dtype=float).ravel()
    if pred.shape != target.shape:
        raise ValueError("prediction/target length mismatch")
    if pred.size == 0:
        raise ValueError("metric evaluated on empty arrays")
    return pred, target


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    pred, target = _pair(pred, target)
    return float(np.mean((pred - target) ** 2))


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    pred, target = _pair(pred, target)
    return float(np.mean(np.abs(pred - target)))


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination; 0.0 for constant targets with error."""
    pred, target = _pair(pred, target)
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def class_accuracy(pred_classes: np.ndarray, target_classes: np.ndarray) -> float:
    """Fraction of exactly matching class predictions."""
    pred, target = _pair(pred_classes, target_classes)
    return float(np.mean(pred == target))


def confusion_counts(
    pred_classes: np.ndarray,
    target_classes: np.ndarray,
    classes: Sequence[float],
) -> np.ndarray:
    """Confusion matrix ``counts[true_index, pred_index]``."""
    pred, target = _pair(pred_classes, target_classes)
    classes_arr = np.asarray(sorted(classes), dtype=float)
    index = {value: i for i, value in enumerate(classes_arr)}
    counts = np.zeros((len(classes_arr), len(classes_arr)), dtype=int)
    for t, p in zip(target, pred):
        if t not in index or p not in index:
            raise ValueError(f"value outside class set: true={t}, pred={p}")
        counts[index[t], index[p]] += 1
    return counts
