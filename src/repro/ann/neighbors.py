"""k-nearest-neighbour regression.

The paper's future work includes "evaluating different machine learning
techniques"; its related work (Chen et al.) schedules by Euclidean
distance in a feature space — which is exactly 1-NN.  This module
provides a from-scratch k-NN regressor with the same fit/predict surface
as the bagged MLP so the predictor-comparison ablation can swap models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KNNRegressor"]


class KNNRegressor:
    """Distance-weighted k-nearest-neighbour regression.

    Parameters
    ----------
    k:
        Neighbour count.
    weights:
        ``"uniform"`` averages the k neighbours; ``"distance"`` weights
        each by inverse distance (an exact-match neighbour dominates).
    """

    def __init__(self, k: int = 5, weights: str = "distance") -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {weights!r}")
        self.k = k
        self.weights = weights
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        """Memorise the training set."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self._x = x
        self._y = y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for a query matrix, shape ``(n,)``."""
        if self._x is None:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self._x.shape[1]:
            raise ValueError(
                f"expected {self._x.shape[1]} features, got {x.shape[1]}"
            )
        k = min(self.k, self._x.shape[0])
        # Squared Euclidean distances, vectorised: (n_query, n_train).
        d2 = (
            (x * x).sum(axis=1)[:, None]
            - 2.0 * x @ self._x.T
            + (self._x * self._x).sum(axis=1)[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        neighbour_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(x.shape[0])[:, None]
        neighbour_d = np.sqrt(d2[rows, neighbour_idx])
        neighbour_y = self._y[neighbour_idx]
        if self.weights == "uniform":
            return neighbour_y.mean(axis=1)
        w = 1.0 / (neighbour_d + 1e-12)
        return (neighbour_y * w).sum(axis=1) / w.sum(axis=1)

    @property
    def n_samples(self) -> int:
        """Size of the memorised training set (0 before fit)."""
        return 0 if self._x is None else self._x.shape[0]
