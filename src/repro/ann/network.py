"""Multi-layer perceptron.

The paper's predictor (its Figure 3) is a small feed-forward ANN whose
size is written ``{n_1, n_2, ..., n_m}``; empirical analysis there found
``{10, 18, 5, 1}`` best for cache-size prediction — an input layer, two
hidden layers of 18 and 5 processing elements, and a single output.
:data:`PAPER_TOPOLOGY` captures the hidden/output part of that shape; the
input width follows the selected feature count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .activations import make_activation
from .layers import Dense
from .losses import Loss

__all__ = ["MLP", "PAPER_TOPOLOGY"]

#: Hidden-layer widths of the paper's best ANN size {10, 18, 5, 1}
#: (10 inputs, 18 and 5 hidden PEs, one output).
PAPER_TOPOLOGY: Tuple[int, ...] = (18, 5)


class MLP:
    """Feed-forward network: input → hidden layers → one linear output.

    Parameters
    ----------
    in_features:
        Width of the input feature vector.
    hidden:
        Hidden-layer widths, e.g. the paper's ``(18, 5)``.
    out_features:
        Output width (1 for the cache-size regressor).
    hidden_activation:
        Nonlinearity name for hidden layers (default ``tanh``).
    seed:
        Weight-initialisation seed; distinct seeds give the independently
        initialised ensemble members of the paper's bagging scheme.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int] = PAPER_TOPOLOGY,
        out_features: int = 1,
        *,
        hidden_activation: str = "tanh",
        seed: int = 0,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("network dimensions must be positive")
        for width in hidden:
            if width <= 0:
                raise ValueError(f"hidden width must be positive, got {width}")
        self.in_features = in_features
        self.hidden = tuple(hidden)
        self.out_features = out_features
        self.seed = seed
        rng = np.random.default_rng(seed)
        widths = [in_features, *hidden, out_features]
        self.layers: List[Dense] = []
        for i in range(len(widths) - 1):
            is_output = i == len(widths) - 2
            activation = make_activation(
                "identity" if is_output else hidden_activation
            )
            self.layers.append(
                Dense(widths[i], widths[i + 1], activation, rng=rng)
            )

    @property
    def topology(self) -> Tuple[int, ...]:
        """Layer widths in the paper's ``{n_1, ..., n_m}`` notation."""
        return (self.in_features, *self.hidden, self.out_features)

    @property
    def parameter_count(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.parameter_count for layer in self.layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batch prediction ``(n, in_features) → (n, out_features)``."""
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` for inference call sites."""
        return self.forward(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers; returns input gradient."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        """Reset every layer's gradients."""
        for layer in self.layers:
            layer.zero_grad()

    def train_batch(self, x: np.ndarray, y: np.ndarray, loss: Loss) -> float:
        """One forward/backward pass; returns the batch loss.

        Gradients are left in the layers for the optimiser to consume.
        """
        pred = self.forward(x)
        value = loss.value(pred, y)
        self.zero_grad()
        self.backward(loss.gradient(pred, y))
        return value

    def get_weights(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Copies of all ``(weights, bias)`` pairs, input-to-output order."""
        return [(layer.weights.copy(), layer.bias.copy()) for layer in self.layers]

    def set_weights(self, weights: List[Tuple[np.ndarray, np.ndarray]]) -> None:
        """Restore parameters saved by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected {len(self.layers)} layer parameter pairs, "
                f"got {len(weights)}"
            )
        for layer, (w, b) in zip(self.layers, weights):
            if w.shape != layer.weights.shape or b.shape != layer.bias.shape:
                raise ValueError("parameter shapes do not match the network")
            layer.weights = w.copy()
            layer.bias = b.copy()
