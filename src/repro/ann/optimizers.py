"""Gradient-descent optimisers.

Optimisers update :class:`~repro.ann.layers.Dense` layers in place from
their accumulated gradients.  SGD with momentum is the workhorse for the
paper-scale MLP; Adam converges faster on the small, badly scaled counter
features and is the training default.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

import numpy as np

from .layers import Dense

__all__ = ["Optimizer", "SGD", "Adam", "make_optimizer", "OPTIMIZER_NAMES"]


class Optimizer(ABC):
    """Parameter-update rule over a list of layers."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    @abstractmethod
    def step(self, layers: List[Dense]) -> None:
        """Apply one update from each layer's current gradients."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def step(self, layers: List[Dense]) -> None:
        for layer in layers:
            vel = self._velocity.get(id(layer))
            if vel is None:
                vel = (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            vw = self.momentum * vel[0] - self.learning_rate * layer.grad_weights
            vb = self.momentum * vel[1] - self.learning_rate * layer.grad_bias
            layer.weights += vw
            layer.bias += vb
            self._velocity[id(layer)] = (vw, vb)


class Adam(Optimizer):
    """Adam: adaptive moments (Kingma & Ba)."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._v: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._t = 0

    def step(self, layers: List[Dense]) -> None:
        self._t += 1
        t = self._t
        for layer in layers:
            key = id(layer)
            m = self._m.get(
                key, (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            )
            v = self._v.get(
                key, (np.zeros_like(layer.weights), np.zeros_like(layer.bias))
            )
            grads = (layer.grad_weights, layer.grad_bias)
            params = (layer.weights, layer.bias)
            new_m, new_v = [], []
            for (mi, vi, gi, pi) in zip(m, v, grads, params):
                mi = self.beta1 * mi + (1 - self.beta1) * gi
                vi = self.beta2 * vi + (1 - self.beta2) * gi * gi
                m_hat = mi / (1 - self.beta1**t)
                v_hat = vi / (1 - self.beta2**t)
                pi -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
                new_m.append(mi)
                new_v.append(vi)
            self._m[key] = tuple(new_m)
            self._v[key] = tuple(new_v)


_REGISTRY = {"sgd": SGD, "adam": Adam}

#: Names accepted by :func:`make_optimizer`.
OPTIMIZER_NAMES = tuple(sorted(_REGISTRY))


def make_optimizer(name: str, learning_rate: float = 0.01) -> Optimizer:
    """Construct an optimiser by name."""
    try:
        return _REGISTRY[name](learning_rate=learning_rate)
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {OPTIMIZER_NAMES}"
        ) from None
