"""Feature preprocessing.

Hardware counters span wildly different magnitudes (instruction counts in
the tens of thousands next to miss rates below one), so the networks
train on standardised features.  :class:`StandardScaler` is the usual
fit-on-train / apply-everywhere z-score transform;
:func:`snap_to_classes` converts the regressor's continuous output back
to a legal cache size.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["StandardScaler", "snap_to_classes", "log_transform"]


class StandardScaler:
    """Per-feature z-score normalisation with degenerate-feature guard."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Estimate mean/std per column; constant columns get scale 1."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the fitted transform."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler used before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the transform."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler used before fit()")
        return np.atleast_2d(np.asarray(x, dtype=float)) * self.scale_ + self.mean_


def log_transform(x: np.ndarray) -> np.ndarray:
    """``log1p`` compression for heavy-tailed count features."""
    x = np.asarray(x, dtype=float)
    if (x < 0).any():
        raise ValueError("log_transform requires non-negative features")
    return np.log1p(x)


def snap_to_classes(values: np.ndarray, classes: Sequence[float]) -> np.ndarray:
    """Map each continuous value to the nearest legal class value.

    Used to turn the regressor's continuous cache-size prediction into
    one of the design space's sizes {2, 4, 8} (in log2 space the caller's
    choice).  Ties resolve toward the smaller class.
    """
    if len(classes) == 0:
        raise ValueError("need at least one class")
    values = np.asarray(values, dtype=float)
    classes_arr = np.sort(np.asarray(classes, dtype=float))
    distances = np.abs(values[..., None] - classes_arr)
    return classes_arr[np.argmin(distances, axis=-1)]
