"""Training loop with mini-batching and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .losses import Loss, MSELoss
from .network import MLP
from .optimizers import Adam, Optimizer

__all__ = ["TrainingConfig", "TrainingHistory", "train"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of one training run."""

    epochs: int = 400
    batch_size: int = 16
    learning_rate: float = 0.01
    #: Stop after this many epochs without validation improvement;
    #: ``None`` disables early stopping.
    patience: Optional[int] = 40
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ValueError("patience must be positive or None")


@dataclass
class TrainingHistory:
    """Per-epoch losses and the early-stopping outcome."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        """Number of epochs actually executed."""
        return len(self.train_loss)


def train(
    net: MLP,
    x_train: np.ndarray,
    y_train: np.ndarray,
    *,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    config: TrainingConfig = TrainingConfig(),
    loss: Optional[Loss] = None,
    optimizer: Optional[Optimizer] = None,
) -> TrainingHistory:
    """Train ``net`` in place; returns the loss history.

    With a validation set, the best-validation weights are restored at
    the end (classic early stopping, matching the paper's use of a
    validation split).  Without one, the final weights stand.
    """
    x_train = np.atleast_2d(np.asarray(x_train, dtype=float))
    y_train = np.atleast_2d(np.asarray(y_train, dtype=float))
    if y_train.shape[0] != x_train.shape[0]:
        raise ValueError("x_train and y_train row counts differ")
    has_val = x_val is not None and y_val is not None and len(x_val) > 0
    if has_val:
        x_val = np.atleast_2d(np.asarray(x_val, dtype=float))
        y_val = np.atleast_2d(np.asarray(y_val, dtype=float))
        if y_val.shape[0] != x_val.shape[0]:
            raise ValueError("x_val and y_val row counts differ")

    loss_fn = loss if loss is not None else MSELoss()
    opt = optimizer if optimizer is not None else Adam(config.learning_rate)
    rng = np.random.default_rng(config.seed)
    history = TrainingHistory()

    best_val = np.inf
    best_weights = None
    epochs_since_best = 0
    n = x_train.shape[0]

    for epoch in range(config.epochs):
        order = rng.permutation(n) if config.shuffle else np.arange(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            epoch_loss += net.train_batch(x_train[idx], y_train[idx], loss_fn)
            opt.step(net.layers)
            batches += 1
        history.train_loss.append(epoch_loss / max(batches, 1))

        if has_val:
            val_value = loss_fn.value(net.forward(x_val), y_val)
            history.val_loss.append(val_value)
            if val_value < best_val - 1e-12:
                best_val = val_value
                best_weights = net.get_weights()
                history.best_epoch = epoch
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if (
                    config.patience is not None
                    and epochs_since_best >= config.patience
                ):
                    history.stopped_early = True
                    break

    if has_val and best_weights is not None:
        net.set_weights(best_weights)
    elif not has_val:
        history.best_epoch = history.epochs_run - 1
    return history
