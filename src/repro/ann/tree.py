"""CART regression tree (and a tiny random forest).

Second alternative model for the paper's "different machine learning
techniques" future work.  A from-scratch binary regression tree with
variance-reduction splits, plus a bagged forest reusing the same
bootstrap scheme as the MLP ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]


@dataclass
class _Node:
    """One tree node; leaves have ``feature is None``."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """Binary regression tree minimising within-leaf variance.

    Parameters
    ----------
    max_depth:
        Depth bound (a root-only tree has depth 0).
    min_samples_leaf:
        A split is rejected if either side would fall below this.
    """

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2) -> None:
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None
        self._n_features = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on the training data."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self._n_features = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        if np.allclose(y, y[0]):
            return node
        feature, threshold = self._best_split(x, y)
        if feature is None:
            return node
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Exhaustive variance-reduction split search."""
        n = len(y)
        best_score = np.inf
        best = (None, 0.0)
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            # Prefix sums give left/right SSE in O(n) per feature:
            # SSE = sum(y^2) - (sum(y))^2 / n.
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            total = csum[-1]
            total2 = csum2[-1]
            for i in range(self.min_samples_leaf - 1,
                           n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue  # cannot split between equal values
                n_left = i + 1
                n_right = n - n_left
                sse_left = csum2[i] - csum[i] ** 2 / n_left
                sse_right = (total2 - csum2[i]) - (total - csum[i]) ** 2 / n_right
                score = sse_left + sse_right
                if score < best_score:
                    best_score = score
                    best = (feature, float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict targets for a query matrix, shape ``(n,)``."""
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self._n_features:
            raise ValueError(
                f"expected {self._n_features} features, got {x.shape[1]}"
            )
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree (0 = root only)."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            return 0
        return walk(self._root)

    @property
    def leaf_count(self) -> int:
        """Number of leaves."""
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)


class RandomForestRegressor:
    """Bagged trees with per-tree bootstrap resamples."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees: List[DecisionTreeRegressor] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit every tree on its own bootstrap resample."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self.trees = []
        n = x.shape[0]
        for i in range(self.n_trees):
            rng = np.random.default_rng(self.seed + i)
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(x[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean of tree predictions."""
        if not self.trees:
            raise RuntimeError("predict() called before fit()")
        return np.mean([tree.predict(x) for tree in self.trees], axis=0)
