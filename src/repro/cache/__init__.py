"""Set-associative cache substrate.

This package provides everything the reproduction needs from a cache
simulator: the configuration design space of the paper's Table 1
(:mod:`repro.cache.config`), the per-access reference model and the fast
trace path (:mod:`repro.cache.cache`), the single-pass stack-distance
characterisation engine (:mod:`repro.cache.stackdist`), replacement policies
(:mod:`repro.cache.replacement`), a two-level private hierarchy
(:mod:`repro.cache.hierarchy`) and the reconfiguration tuner model
(:mod:`repro.cache.tuner`).
"""

from .cache import AccessResult, Cache, simulate_trace, simulate_trace_per_config
from .config import (
    BASE_CONFIG,
    CACHE_SIZES_KB,
    DESIGN_SPACE,
    LINE_SIZES_B,
    CacheConfig,
    associativities_for_size,
    configs_for_size,
    design_space,
)
from .hierarchy import DEFAULT_L2_CONFIG, CacheHierarchy, HierarchyResult
from .shared import SharedL2Result, SharedL2System, interference_penalty
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    POLICY_NAMES,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from .stackdist import StackDistanceProfile, profile_trace, simulate_many
from .stats import CacheStats
from .tuner import CacheTuner, ReconfigurationCost, TunerCostModel

__all__ = [
    "AccessResult",
    "BASE_CONFIG",
    "CACHE_SIZES_KB",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheStats",
    "CacheTuner",
    "DEFAULT_L2_CONFIG",
    "DESIGN_SPACE",
    "FIFOPolicy",
    "HierarchyResult",
    "LINE_SIZES_B",
    "LRUPolicy",
    "PLRUPolicy",
    "POLICY_NAMES",
    "RandomPolicy",
    "ReconfigurationCost",
    "ReplacementPolicy",
    "SharedL2Result",
    "SharedL2System",
    "StackDistanceProfile",
    "TunerCostModel",
    "associativities_for_size",
    "configs_for_size",
    "design_space",
    "interference_penalty",
    "make_policy",
    "profile_trace",
    "simulate_many",
    "simulate_trace",
    "simulate_trace_per_config",
]
