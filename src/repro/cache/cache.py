"""Set-associative cache model.

Two complementary implementations are provided:

:class:`Cache`
    A general, per-access model supporting every replacement policy in
    :mod:`repro.cache.replacement`, write-through and write-back policies,
    flushes (used by the cache tuner on reconfiguration) and full
    statistics.  This is the reference model.

:func:`simulate_trace`
    A fast path for the common case used by the characterisation explorer:
    LRU, write-allocate caches driven by a complete address trace.  It
    delegates to the stack-distance engine in
    :mod:`repro.cache.stackdist`, which measures a whole partition of
    the design space in one pass; :func:`repro.cache.stackdist.simulate_many`
    is the bulk entry point that characterises many configurations per
    trace traversal.  The fast path and the reference model produce
    identical statistics (tested property).

:func:`simulate_trace_per_config`
    The seed implementation: one per-access Python replay per
    configuration.  Retained as an independent cross-check and as the
    baseline the characterisation-speed benchmark measures against.

Addresses are byte addresses; the cache indexes by ``(address // line_b)
% num_sets`` like real hardware with power-of-two geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import CacheConfig
from .replacement import ReplacementPolicy, make_policy
from .stackdist import simulate_many
from .stats import CacheStats

__all__ = ["Cache", "AccessResult", "simulate_trace", "simulate_trace_per_config"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    #: Line address (address // line size) of the access.
    line_addr: int
    #: Set index the access mapped to.
    set_index: int
    #: Line address written back to memory, if a dirty line was evicted.
    writeback_line_addr: Optional[int] = None


class _Line:
    """One cache line's tag state."""

    __slots__ = ("line_addr", "dirty")

    def __init__(self, line_addr: int) -> None:
        self.line_addr = line_addr
        self.dirty = False


class Cache:
    """Reference set-associative cache model.

    Parameters
    ----------
    config:
        Geometry of the cache.
    policy:
        Replacement policy name (``lru``, ``fifo``, ``random``, ``plru``).
    write_back:
        If true, writes dirty the line and evictions of dirty lines count
        as writebacks; if false the cache is write-through (every write
        also goes to the next level, no dirty state).
    write_allocate:
        If true, write misses fill the line; if false write misses bypass
        the cache (no fill).
    seed:
        Seed for the random replacement policy.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy: str = "lru",
        *,
        write_back: bool = False,
        write_allocate: bool = True,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.policy_name = policy
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.stats = CacheStats()
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._line_b = config.line_b
        # way index -> line, per set
        self._sets: List[Dict[int, _Line]] = [{} for _ in range(self._num_sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(policy, config.assoc, seed=seed + i)
            for i in range(self._num_sets)
        ]
        self._seen_lines: set = set()

    def set_index(self, address: int) -> int:
        """Set index a byte address maps to."""
        return (address // self._line_b) % self._num_sets

    def line_addr(self, address: int) -> int:
        """Line address (block number) of a byte address."""
        return address // self._line_b

    def _find_way(self, set_index: int, line_addr: int) -> Optional[int]:
        for way, line in self._sets[set_index].items():
            if line.line_addr == line_addr:
                return way
        return None

    def access(self, address: int, *, is_write: bool = False) -> AccessResult:
        """Access one byte address; returns hit/miss and any writeback."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line_addr = self.line_addr(address)
        set_index = line_addr % self._num_sets
        ways = self._sets[set_index]
        policy = self._policies[set_index]

        way = self._find_way(set_index, line_addr)
        if way is not None:
            policy.touch(way)
            if is_write and self.write_back:
                ways[way].dirty = True
            self.stats.record_hit(is_write=is_write)
            return AccessResult(hit=True, line_addr=line_addr, set_index=set_index)

        compulsory = line_addr not in self._seen_lines
        self._seen_lines.add(line_addr)
        self.stats.record_miss(is_write=is_write, compulsory=compulsory)

        writeback: Optional[int] = None
        if not is_write or self.write_allocate:
            writeback = self._fill(set_index, line_addr, dirty=is_write and self.write_back)
        return AccessResult(
            hit=False,
            line_addr=line_addr,
            set_index=set_index,
            writeback_line_addr=writeback,
        )

    def _fill(self, set_index: int, line_addr: int, *, dirty: bool) -> Optional[int]:
        """Install a line, evicting if the set is full; returns writeback."""
        ways = self._sets[set_index]
        policy = self._policies[set_index]
        writeback: Optional[int] = None
        if len(ways) >= self._assoc:
            victim_way = policy.victim(list(ways.keys()))
            victim = ways.pop(victim_way)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                writeback = victim.line_addr
            target_way = victim_way
        else:
            occupied = set(ways.keys())
            target_way = next(w for w in range(self._assoc) if w not in occupied)
        line = _Line(line_addr)
        line.dirty = dirty
        ways[target_way] = line
        policy.touch(target_way)
        self.stats.fills += 1
        return writeback

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently resident."""
        line_addr = self.line_addr(address)
        return self._find_way(line_addr % self._num_sets, line_addr) is not None

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently in the cache."""
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> int:
        """Invalidate every line (reconfiguration); returns writeback count.

        Dirty lines are written back.  Statistics accumulate across the
        flush, matching a tuner that reconfigures between executions.
        """
        writebacks = 0
        flushed = 0
        for ways in self._sets:
            for line in ways.values():
                flushed += 1
                if line.dirty:
                    writebacks += 1
            ways.clear()
        for policy in self._policies:
            policy.reset()
        self.stats.flushed_lines += flushed
        self.stats.writebacks += writebacks
        return writebacks

    def run_trace(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> CacheStats:
        """Access every address in order; returns the accumulated stats.

        Accepts numpy arrays directly (traces stay int64 arrays end to
        end); iteration happens over plain Python scalars internally
        because that is what the per-access loop is fastest on.
        """
        if writes is not None and len(writes) != len(addresses):
            raise ValueError("writes mask length must match addresses length")
        address_list = (
            addresses.tolist() if isinstance(addresses, np.ndarray)
            else [int(a) for a in addresses]
        )
        if writes is None:
            for address in address_list:
                self.access(address, is_write=False)
        else:
            write_list = (
                writes.tolist() if isinstance(writes, np.ndarray)
                else [bool(w) for w in writes]
            )
            for address, is_write in zip(address_list, write_list):
                self.access(address, is_write=is_write)
        return self.stats


def simulate_trace(
    addresses: Sequence[int],
    config: CacheConfig,
    writes: Optional[Sequence[bool]] = None,
) -> CacheStats:
    """Fast LRU, write-allocate simulation of a complete trace.

    Produces statistics identical to
    ``Cache(config, policy="lru", write_allocate=True)`` but much
    faster: the trace is measured by the single-pass stack-distance
    engine (:mod:`repro.cache.stackdist`), with the address arithmetic
    vectorised in numpy.  When many configurations are needed for the
    same trace, call :func:`repro.cache.stackdist.simulate_many`
    directly — it shares one trace traversal across every configuration
    of a set partition.

    Parameters
    ----------
    addresses:
        Byte addresses, any integer sequence (numpy arrays accepted).
    config:
        Cache geometry.
    writes:
        Optional boolean mask marking write accesses (for the read/write
        breakdown in the returned stats).
    """
    return simulate_many(addresses, (config,), writes=writes)[config]


def simulate_trace_per_config(
    addresses: Sequence[int],
    config: CacheConfig,
    writes: Optional[Sequence[bool]] = None,
) -> CacheStats:
    """The seed fast path: one per-access Python replay per configuration.

    Superseded by the stack-distance engine (one pass per set partition
    instead of one per configuration) but kept as an independent
    implementation for property tests and as the old-engine baseline of
    ``benchmarks/test_bench_characterization_speed.py``.
    """
    if isinstance(addresses, np.ndarray):
        line_addrs = (addresses.astype(np.int64) // config.line_b).tolist()
    else:
        line_b = config.line_b
        line_addrs = [int(a) // line_b for a in addresses]

    if writes is None:
        write_list: Optional[List[bool]] = None
    elif isinstance(writes, np.ndarray):
        write_list = writes.astype(bool).tolist()
    else:
        write_list = [bool(w) for w in writes]
    if write_list is not None and len(write_list) != len(line_addrs):
        raise ValueError("writes mask length must match addresses length")

    num_sets = config.num_sets
    assoc = config.assoc
    # Per-set MRU-first list of resident line addresses; assoc <= 4 in the
    # design space so membership tests on these lists are effectively O(1).
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    seen: set = set()

    hits = 0
    misses = 0
    write_hits = 0
    write_misses = 0
    writes_total = 0
    compulsory = 0
    evictions = 0
    fills = 0

    for i, la in enumerate(line_addrs):
        mru = sets[la % num_sets]
        is_write = write_list[i] if write_list is not None else False
        if is_write:
            writes_total += 1
        if la in mru:
            hits += 1
            if is_write:
                write_hits += 1
            if mru[0] != la:
                mru.remove(la)
                mru.insert(0, la)
        else:
            misses += 1
            if is_write:
                write_misses += 1
            if la not in seen:
                compulsory += 1
                seen.add(la)
            mru.insert(0, la)
            fills += 1
            if len(mru) > assoc:
                mru.pop()
                evictions += 1

    stats = CacheStats(
        accesses=len(line_addrs),
        hits=hits,
        misses=misses,
        read_accesses=len(line_addrs) - writes_total,
        write_accesses=writes_total,
        read_misses=misses - write_misses,
        write_misses=write_misses,
        evictions=evictions,
        writebacks=0,
        fills=fills,
        compulsory_misses=compulsory,
    )
    stats.validate()
    return stats
