"""Cache configuration descriptions and the paper's design space (Table 1).

A :class:`CacheConfig` fully describes one L1 configuration: total size,
associativity and line size.  The paper's design space subsets the total
size per core (Core 1 = 2 KB, Core 2 = 4 KB, Cores 3/4 = 8 KB) and allows
associativity and line size to be tuned at run time on every core.

Table 1 of the paper enumerates 18 configurations::

    2KB_1W_{16,32,64}B
    4KB_{1,2}W_{16,32,64}B
    8KB_{1,2,4}W_{16,32,64}B

Note that the associativity range grows with the size: a 2 KB cache is
direct-mapped only, a 4 KB cache supports 1- and 2-way, and an 8 KB cache
supports 1-, 2- and 4-way.  This keeps the number of sets at least
``2 KB / 64 B / 4 = 8`` everywhere and matches the paper's count of 18
configurations ("a minimum of three configurations and a maximum of nine
configurations, out of 18").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "CacheConfig",
    "BASE_CONFIG",
    "CACHE_SIZES_KB",
    "LINE_SIZES_B",
    "associativities_for_size",
    "design_space",
    "configs_for_size",
    "DESIGN_SPACE",
]

#: Cache sizes available across the heterogeneous system, in kilobytes.
CACHE_SIZES_KB: Tuple[int, ...] = (2, 4, 8)

#: Line sizes tunable on every core, in bytes.
LINE_SIZES_B: Tuple[int, ...] = (16, 32, 64)

_CONFIG_NAME_RE = re.compile(r"^(\d+)KB_(\d+)W_(\d+)B$")


def associativities_for_size(size_kb: int) -> Tuple[int, ...]:
    """Return the tunable associativities for a given cache size.

    Follows Table 1 of the paper: 2 KB caches are direct-mapped, 4 KB
    caches support up to 2 ways and 8 KB caches up to 4 ways.

    >>> associativities_for_size(8)
    (1, 2, 4)
    """
    if size_kb == 2:
        return (1,)
    if size_kb == 4:
        return (1, 2)
    if size_kb == 8:
        return (1, 2, 4)
    raise ValueError(f"size_kb must be one of {CACHE_SIZES_KB}, got {size_kb}")


@dataclass(frozen=True, order=True)
class CacheConfig:
    """One point in the cache configuration design space.

    Attributes
    ----------
    size_kb:
        Total cache capacity in kilobytes.
    assoc:
        Associativity in number of ways (1 = direct mapped).
    line_b:
        Line (block) size in bytes.
    """

    size_kb: int
    assoc: int
    line_b: int

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {self.size_kb}")
        if self.assoc <= 0:
            raise ValueError(f"assoc must be positive, got {self.assoc}")
        if self.line_b <= 0:
            raise ValueError(f"line_b must be positive, got {self.line_b}")
        if self.line_b & (self.line_b - 1):
            raise ValueError(f"line_b must be a power of two, got {self.line_b}")
        if self.size_bytes % (self.assoc * self.line_b):
            raise ValueError(
                f"{self.size_kb}KB cache cannot be organised as "
                f"{self.assoc}-way with {self.line_b}B lines"
            )

    @property
    def size_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.size_kb * 1024

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_b

    @property
    def num_sets(self) -> int:
        """Number of sets (lines divided by ways)."""
        return self.num_lines // self.assoc

    @property
    def name(self) -> str:
        """Canonical name in the paper's ``<size>KB_<ways>W_<line>B`` form."""
        return f"{self.size_kb}KB_{self.assoc}W_{self.line_b}B"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @classmethod
    def from_name(cls, name: str) -> "CacheConfig":
        """Parse a canonical ``8KB_4W_64B``-style name.

        >>> CacheConfig.from_name("8KB_4W_64B")
        CacheConfig(size_kb=8, assoc=4, line_b=64)
        """
        match = _CONFIG_NAME_RE.match(name)
        if match is None:
            raise ValueError(f"not a valid cache configuration name: {name!r}")
        size_kb, assoc, line_b = (int(g) for g in match.groups())
        return cls(size_kb=size_kb, assoc=assoc, line_b=line_b)

    def in_design_space(self) -> bool:
        """Whether this configuration is one of the paper's 18 (Table 1)."""
        return (
            self.size_kb in CACHE_SIZES_KB
            and self.line_b in LINE_SIZES_B
            and self.assoc in associativities_for_size(self.size_kb)
        )


#: The base configuration used for profiling on Core 4 (Section III).
BASE_CONFIG = CacheConfig(size_kb=8, assoc=4, line_b=64)


def design_space(
    sizes_kb: Sequence[int] = CACHE_SIZES_KB,
    line_sizes_b: Sequence[int] = LINE_SIZES_B,
) -> Iterator[CacheConfig]:
    """Yield the full configuration design space (Table 1), smallest first.

    Ordered by (size, associativity, line size) ascending, the order the
    tuning heuristic prefers ("explored from the smallest to the largest
    value to minimise cache flushing").
    """
    for size_kb in sorted(sizes_kb):
        for assoc in associativities_for_size(size_kb):
            for line_b in sorted(line_sizes_b):
                yield CacheConfig(size_kb=size_kb, assoc=assoc, line_b=line_b)


def configs_for_size(size_kb: int) -> List[CacheConfig]:
    """All configurations a core with the given fixed cache size offers.

    Associativity and line size are the per-core tunable parameters; the
    size is fixed per core (Section III).
    """
    return [
        CacheConfig(size_kb=size_kb, assoc=assoc, line_b=line_b)
        for assoc in associativities_for_size(size_kb)
        for line_b in LINE_SIZES_B
    ]


#: The complete 18-configuration design space of Table 1, as a tuple.
DESIGN_SPACE: Tuple[CacheConfig, ...] = tuple(design_space())
