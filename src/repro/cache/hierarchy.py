"""Two-level private cache hierarchy.

The paper's core architecture (its Figure 1) gives every core a
configurable private L1 and a non-configurable private L2.  The paper's
energy model only involves the L1 and off-chip memory, so the scheduler
experiments run with the L1 alone; the hierarchy here supports the
"additional levels of private and shared caches" extension the paper
lists as future work, and is exercised by the L2 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .cache import Cache
from .config import CacheConfig
from .stats import CacheStats

__all__ = ["HierarchyResult", "CacheHierarchy", "DEFAULT_L2_CONFIG"]

#: Fixed private L2 used by the hierarchy ablation: 32 KB, 4-way, 64 B.
DEFAULT_L2_CONFIG = CacheConfig(size_kb=32, assoc=4, line_b=64)


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of one access through the hierarchy."""

    l1_hit: bool
    #: True when the access missed L1 but hit L2; None with no L2.
    l2_hit: Optional[bool]

    @property
    def memory_access(self) -> bool:
        """Whether the access reached off-chip memory."""
        if self.l1_hit:
            return False
        if self.l2_hit is None:
            return True
        return not self.l2_hit


class CacheHierarchy:
    """Private L1 (configurable) optionally backed by a private L2.

    The L1 is inclusive of nothing in particular (no inclusion enforced;
    both levels fill independently on their own misses), which matches
    the simple private hierarchies of small embedded cores.
    """

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: Optional[CacheConfig] = None,
        *,
        policy: str = "lru",
        write_back: bool = False,
        seed: int = 0,
    ) -> None:
        self.l1 = Cache(l1_config, policy=policy, write_back=write_back, seed=seed)
        self.l2: Optional[Cache] = None
        if l2_config is not None:
            if l2_config.size_bytes < l1_config.size_bytes:
                raise ValueError(
                    "L2 must be at least as large as L1: "
                    f"{l2_config.name} < {l1_config.name}"
                )
            self.l2 = Cache(
                l2_config, policy=policy, write_back=write_back, seed=seed + 1
            )

    def access(self, address: int, *, is_write: bool = False) -> HierarchyResult:
        """Access one address through L1 then (on miss) L2."""
        l1_result = self.l1.access(address, is_write=is_write)
        if l1_result.hit:
            return HierarchyResult(l1_hit=True, l2_hit=None if self.l2 is None else None)
        if self.l2 is None:
            return HierarchyResult(l1_hit=False, l2_hit=None)
        l2_result = self.l2.access(address, is_write=is_write)
        # An L1 writeback also accesses L2 (write of the victim line).
        if l1_result.writeback_line_addr is not None:
            self.l2.access(
                l1_result.writeback_line_addr * self.l1.config.line_b,
                is_write=True,
            )
        return HierarchyResult(l1_hit=False, l2_hit=l2_result.hit)

    def run_trace(
        self,
        addresses: Sequence[int],
        writes: Optional[Sequence[bool]] = None,
    ) -> "HierarchyStats":
        """Run a whole trace; returns per-level stats and memory accesses."""
        if writes is not None and len(writes) != len(addresses):
            raise ValueError("writes mask length must match addresses length")
        memory_accesses = 0
        for i, address in enumerate(addresses):
            is_write = bool(writes[i]) if writes is not None else False
            result = self.access(int(address), is_write=is_write)
            if result.memory_access:
                memory_accesses += 1
        return HierarchyStats(
            l1=self.l1.stats.copy(),
            l2=self.l2.stats.copy() if self.l2 is not None else None,
            memory_accesses=memory_accesses,
        )

    def flush(self) -> None:
        """Flush both levels (reconfiguration)."""
        self.l1.flush()
        if self.l2 is not None:
            self.l2.flush()


@dataclass
class HierarchyStats:
    """Per-level statistics for one trace run through the hierarchy."""

    l1: CacheStats
    l2: Optional[CacheStats]
    memory_accesses: int

    @property
    def global_miss_rate(self) -> float:
        """Memory accesses per L1 access (misses that escape all levels)."""
        if self.l1.accesses == 0:
            return 0.0
        return self.memory_accesses / self.l1.accesses
