"""Replacement policies for set-associative caches.

Each policy manages victim selection *within one set*.  The cache model
instantiates one policy object per set so policies may keep per-set state
(LRU ordering, FIFO insertion order, PLRU tree bits).

All policies implement the small :class:`ReplacementPolicy` interface:

``touch(way)``
    called on every hit (and after a fill) with the way that was accessed,
``victim(occupied)``
    called on a miss in a full set; returns the way index to evict,
``reset()``
    called when the set is flushed.

Policies are deterministic given their construction arguments; the random
policy takes an explicit seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Sequence

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class ReplacementPolicy(ABC):
    """Victim selection strategy for one cache set."""

    def __init__(self, num_ways: int) -> None:
        if num_ways <= 0:
            raise ValueError(f"num_ways must be positive, got {num_ways}")
        self.num_ways = num_ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Notify the policy that ``way`` was accessed (hit or fill)."""

    @abstractmethod
    def victim(self, occupied: Sequence[int]) -> int:
        """Return the way to evict from a full set.

        ``occupied`` lists all way indices currently holding valid lines;
        for a full set this is ``range(num_ways)``.
        """

    @abstractmethod
    def reset(self) -> None:
        """Forget all history (set flushed)."""

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range [0, {self.num_ways})")


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Maintains a recency list; the victim is the least recently touched
    occupied way.  This is the default policy — embedded L1 caches of the
    sizes in the paper's design space (1-4 ways) commonly implement true
    LRU.
    """

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        # Most-recent last.  Ways not in the list were never touched and
        # are treated as older than everything in the list.
        self._order: list = []

    def touch(self, way: int) -> None:
        self._check_way(way)
        if way in self._order:
            self._order.remove(way)
        self._order.append(way)

    def victim(self, occupied: Sequence[int]) -> int:
        occupied_set = set(occupied)
        # Oldest touched way that is occupied; untouched occupied ways
        # (possible after a reset) are the oldest of all.
        for way in occupied:
            if way not in self._order:
                return way
        for way in self._order:
            if way in occupied_set:
                return way
        raise ValueError("victim() called with no occupied ways")

    def reset(self) -> None:
        self._order.clear()


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out replacement: evict the oldest *filled* line."""

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._queue: list = []

    def touch(self, way: int) -> None:
        self._check_way(way)
        # FIFO only tracks insertion order: a hit does not reorder, but a
        # fill of a way not currently queued appends it.
        if way not in self._queue:
            self._queue.append(way)

    def victim(self, occupied: Sequence[int]) -> int:
        occupied_set = set(occupied)
        for way in occupied:
            if way not in self._queue:
                return way
        for way in self._queue:
            if way in occupied_set:
                self._queue.remove(way)
                return way
        raise ValueError("victim() called with no occupied ways")

    def reset(self) -> None:
        self._queue.clear()


class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement with an explicit seed for determinism."""

    def __init__(self, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_ways)
        self._rng = random.Random(seed)
        self._seed = seed

    def touch(self, way: int) -> None:
        self._check_way(way)

    def victim(self, occupied: Sequence[int]) -> int:
        if not occupied:
            raise ValueError("victim() called with no occupied ways")
        return self._rng.choice(list(occupied))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class PLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU for power-of-two associativities.

    Uses the classic binary-tree bit encoding: each internal node bit
    points *away* from the most recently used half.  For 1- and 2-way sets
    this degenerates to true LRU; for 4-way it is the standard
    hardware-friendly approximation.
    """

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        if num_ways & (num_ways - 1):
            raise ValueError(f"PLRU requires power-of-two ways, got {num_ways}")
        self._bits: Dict[int, int] = {}  # node index -> bit

    def touch(self, way: int) -> None:
        self._check_way(way)
        node = 1
        span = self.num_ways
        offset = 0
        while span > 1:
            half = span // 2
            goes_right = way >= offset + half
            # Point the bit away from the touched half.
            self._bits[node] = 0 if goes_right else 1
            node = node * 2 + (1 if goes_right else 0)
            if goes_right:
                offset += half
            span = half

    def victim(self, occupied: Sequence[int]) -> int:
        occupied_set = set(occupied)
        if not occupied_set:
            raise ValueError("victim() called with no occupied ways")
        # Prefer an unoccupied way only if the set is not full (the cache
        # model normally handles that case itself).
        if len(occupied_set) < self.num_ways:
            for way in range(self.num_ways):
                if way not in occupied_set:
                    return way
        node = 1
        span = self.num_ways
        offset = 0
        while span > 1:
            half = span // 2
            bit = self._bits.get(node, 0)
            if bit:  # points right
                node = node * 2 + 1
                offset += half
            else:
                node = node * 2
            span = half
        return offset

    def reset(self) -> None:
        self._bits.clear()


_FACTORIES: Dict[str, Callable[..., ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": PLRUPolicy,
}

#: Names accepted by :func:`make_policy`.
POLICY_NAMES = tuple(sorted(_FACTORIES))


def make_policy(name: str, num_ways: int, seed: int = 0) -> ReplacementPolicy:
    """Construct a replacement policy by name.

    ``seed`` is only used by the random policy; it is accepted (and
    ignored) for the others so callers can pass it unconditionally.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
    if name == "random":
        return factory(num_ways, seed=seed)
    return factory(num_ways)
