"""Shared second-level cache.

The paper's future work (§VIII) names "additional levels of private and
shared caches".  :mod:`repro.cache.hierarchy` covers the private L2;
this module models a *shared* L2 behind several cores' private L1s,
which introduces the phenomenon private hierarchies cannot show:
**inter-core interference** — one core's misses evict another core's
working set from the shared level.

The model replays per-core access streams interleaved in a
deterministic round-robin of fixed-size windows (approximating
concurrent execution at equal rates) and reports per-core L2 statistics
plus the interference penalty versus running alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import Cache
from .config import CacheConfig
from .hierarchy import DEFAULT_L2_CONFIG
from .stats import CacheStats

__all__ = ["SharedL2Result", "SharedL2System", "interference_penalty"]

#: Address-space stride separating cores' streams (keeps one core's data
#: from aliasing another's at identical trace addresses).
CORE_ADDRESS_STRIDE = 1 << 28


@dataclass(frozen=True)
class SharedL2Result:
    """Outcome of one shared-L2 replay."""

    #: Per-core L1 statistics.
    l1_stats: Tuple[CacheStats, ...]
    #: Per-core counts of L2 hits and misses (of that core's L1 misses).
    l2_hits: Tuple[int, ...]
    l2_misses: Tuple[int, ...]
    #: Per-core off-chip accesses (its L2 misses).
    memory_accesses: Tuple[int, ...]

    def l2_miss_rate(self, core: int) -> float:
        """L2 misses per L2 access for one core (0.0 with no accesses)."""
        accesses = self.l2_hits[core] + self.l2_misses[core]
        if accesses == 0:
            return 0.0
        return self.l2_misses[core] / accesses


class SharedL2System:
    """N private L1s in front of one shared L2.

    Parameters
    ----------
    l1_configs:
        One L1 configuration per core.
    l2_config:
        The shared L2 (defaults to the hierarchy module's 32 KB L2).
    window:
        Interleave granularity in accesses: each core executes this many
        references per round-robin turn.
    """

    def __init__(
        self,
        l1_configs: Sequence[CacheConfig],
        l2_config: CacheConfig = DEFAULT_L2_CONFIG,
        *,
        window: int = 64,
    ) -> None:
        if not l1_configs:
            raise ValueError("need at least one core")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        for config in l1_configs:
            if l2_config.size_bytes < config.size_bytes:
                raise ValueError(
                    f"shared L2 {l2_config.name} smaller than L1 "
                    f"{config.name}"
                )
        self.l1s = [Cache(config, policy="lru") for config in l1_configs]
        self.l2 = Cache(l2_config, policy="lru")
        self.window = window

    def run(
        self,
        traces: Sequence[Sequence[int]],
        writes: Optional[Sequence[Sequence[bool]]] = None,
    ) -> SharedL2Result:
        """Replay per-core traces interleaved through the shared L2."""
        if len(traces) != len(self.l1s):
            raise ValueError(
                f"expected {len(self.l1s)} traces, got {len(traces)}"
            )
        if writes is not None and len(writes) != len(traces):
            raise ValueError("writes must parallel traces")
        streams: List[List[int]] = []
        write_streams: List[Optional[List[bool]]] = []
        for core, trace in enumerate(traces):
            if isinstance(trace, np.ndarray):
                stream = trace.astype(np.int64).tolist()
            else:
                stream = [int(a) for a in trace]
            streams.append(stream)
            if writes is not None:
                mask = writes[core]
                mask = (
                    mask.astype(bool).tolist()
                    if isinstance(mask, np.ndarray)
                    else [bool(w) for w in mask]
                )
                if len(mask) != len(stream):
                    raise ValueError(
                        f"core {core}: writes mask length mismatch"
                    )
                write_streams.append(mask)
            else:
                write_streams.append(None)

        l2_hits = [0] * len(self.l1s)
        l2_misses = [0] * len(self.l1s)
        positions = [0] * len(self.l1s)
        remaining = sum(len(s) for s in streams)
        while remaining:
            for core, stream in enumerate(streams):
                start = positions[core]
                if start >= len(stream):
                    continue
                stop = min(start + self.window, len(stream))
                offset = CORE_ADDRESS_STRIDE * core
                mask = write_streams[core]
                for i in range(start, stop):
                    address = stream[i] + offset
                    is_write = bool(mask[i]) if mask is not None else False
                    l1_result = self.l1s[core].access(
                        address, is_write=is_write
                    )
                    if not l1_result.hit:
                        if self.l2.access(address, is_write=is_write).hit:
                            l2_hits[core] += 1
                        else:
                            l2_misses[core] += 1
                positions[core] = stop
                remaining -= stop - start

        return SharedL2Result(
            l1_stats=tuple(l1.stats.copy() for l1 in self.l1s),
            l2_hits=tuple(l2_hits),
            l2_misses=tuple(l2_misses),
            memory_accesses=tuple(l2_misses),
        )


def interference_penalty(
    l1_configs: Sequence[CacheConfig],
    traces: Sequence[Sequence[int]],
    l2_config: CacheConfig = DEFAULT_L2_CONFIG,
    *,
    window: int = 64,
) -> Dict[int, float]:
    """Extra off-chip accesses per core due to sharing the L2.

    Runs each core alone through a private copy of the L2, then all
    cores together through the shared L2; returns per-core
    ``shared_memory_accesses / alone_memory_accesses`` (1.0 = no
    interference; cores with zero solo misses report 1.0).
    """
    penalties: Dict[int, float] = {}
    alone: List[int] = []
    for core, config in enumerate(l1_configs):
        solo = SharedL2System([config], l2_config, window=window)
        result = solo.run([traces[core]])
        alone.append(result.memory_accesses[0])
    together = SharedL2System(l1_configs, l2_config, window=window).run(traces)
    for core in range(len(l1_configs)):
        if alone[core] == 0:
            penalties[core] = 1.0
        else:
            penalties[core] = together.memory_accesses[core] / alone[core]
    return penalties
