"""Single-pass stack-distance (reuse-distance) characterisation engine.

The design-space explorer needs LRU hit/miss counts for every
configuration in Table 1.  Replaying the trace once per configuration
(the seed approach) repeats almost identical work 18 times: two
configurations with the same line size and the same number of sets map
every address to the same set, and for LRU the set content of an A-way
cache is exactly the top A entries of the set's (unbounded) LRU stack.
An access therefore hits in an A-way cache iff its *stack distance* —
the depth of its line in the per-set most-recently-used stack — is less
than A.

One pass over the trace at a fixed ``(line_b, num_sets)`` partition
that records the histogram of stack distances (capped at the largest
associativity of interest) yields the exact hit/miss counts of *every*
associativity simultaneously.  The remaining counters fall out too:

* fills equal misses (write-allocate);
* compulsory misses are first-ever references to a line, identical for
  every associativity of the partition (and every partition of the same
  line size);
* evictions are ``misses - final_occupancy`` where the final occupancy
  of an A-way cache is ``sum over sets of min(distinct_lines(set), A)``
  — with LRU a set holds ``min(distinct, A)`` lines forever after.

For the Table-1 space this collapses 18 trace replays to, per line
size, two fully vectorised passes — direct-mapped hits are "the
previous access to this set touched the same line", and 2-way hits add
"the line starting the run two runs back in this set", both computable
from one stable argsort by set index — plus a single Python-level pass
maintaining the 4-deep truncated stacks of the remaining partition.
The engine is bit-for-bit equivalent to the reference
:class:`~repro.cache.cache.Cache` model (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import CacheConfig
from .stats import CacheStats

__all__ = [
    "StackDistanceProfile",
    "profile_trace",
    "simulate_many",
]

#: Sentinel "no line" value; real line addresses are non-negative.
_EMPTY = -1


@dataclass(frozen=True)
class StackDistanceProfile:
    """Stack-distance summary of one trace over one set partition.

    A *partition* is a ``(line_b, num_sets)`` pair: every configuration
    with that line size and set count shares it, whatever its
    associativity.  The profile holds everything needed to reconstruct
    exact LRU :class:`CacheStats` for any associativity up to
    ``max_assoc`` without touching the trace again.

    Attributes
    ----------
    line_b:
        Line size of the partition in bytes.
    num_sets:
        Number of sets of the partition.
    max_assoc:
        Largest associativity the profile can answer for (the stack
        truncation depth of the measuring pass).
    accesses / write_accesses:
        Trace length and number of write references.
    depth_hist:
        ``max_assoc + 1`` counts: accesses at stack distance
        ``0 .. max_assoc - 1``, with the final bucket counting accesses
        at distance >= ``max_assoc`` (a miss for every answerable
        associativity).
    write_depth_hist:
        The same histogram restricted to write accesses.
    compulsory_misses:
        First-ever references to a line address (cold misses; identical
        for every associativity).
    set_distinct:
        Per set, the number of distinct line addresses that mapped to
        it (the final length of the unbounded LRU stack).
    """

    line_b: int
    num_sets: int
    max_assoc: int
    accesses: int
    write_accesses: int
    depth_hist: Tuple[int, ...]
    write_depth_hist: Tuple[int, ...]
    compulsory_misses: int
    set_distinct: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.depth_hist) != self.max_assoc + 1:
            raise ValueError("depth_hist must have max_assoc + 1 buckets")
        if len(self.write_depth_hist) != self.max_assoc + 1:
            raise ValueError("write_depth_hist must have max_assoc + 1 buckets")
        if len(self.set_distinct) != self.num_sets:
            raise ValueError("set_distinct must have one entry per set")

    def hits_for_assoc(self, assoc: int) -> int:
        """Hit count of an ``assoc``-way LRU cache on this partition."""
        self._check_assoc(assoc)
        return sum(self.depth_hist[:assoc])

    def miss_curve(self) -> Tuple[int, ...]:
        """Miss counts for associativity 1 .. ``max_assoc`` (non-increasing)."""
        return tuple(
            self.accesses - self.hits_for_assoc(a)
            for a in range(1, self.max_assoc + 1)
        )

    def stats_for_assoc(self, assoc: int) -> CacheStats:
        """Exact LRU, write-allocate :class:`CacheStats` for one associativity."""
        self._check_assoc(assoc)
        hits = sum(self.depth_hist[:assoc])
        write_hits = sum(self.write_depth_hist[:assoc])
        misses = self.accesses - hits
        write_misses = self.write_accesses - write_hits
        occupancy = sum(min(d, assoc) for d in self.set_distinct)
        stats = CacheStats(
            accesses=self.accesses,
            hits=hits,
            misses=misses,
            read_accesses=self.accesses - self.write_accesses,
            write_accesses=self.write_accesses,
            read_misses=misses - write_misses,
            write_misses=write_misses,
            evictions=misses - occupancy,
            writebacks=0,
            fills=misses,
            compulsory_misses=self.compulsory_misses,
        )
        stats.validate()
        return stats

    def _check_assoc(self, assoc: int) -> None:
        if not 1 <= assoc <= self.max_assoc:
            raise ValueError(
                f"profile answers associativities 1..{self.max_assoc}, "
                f"got {assoc}"
            )


def _as_line_addrs(addresses: Sequence[int], line_b: int) -> np.ndarray:
    """Vectorised byte address -> line address conversion (int64 end-to-end)."""
    addr = np.asarray(addresses, dtype=np.int64)
    if addr.ndim != 1:
        raise ValueError("addresses must be one-dimensional")
    return addr // line_b


def _as_write_mask(
    writes: Optional[Sequence[bool]], n: int
) -> Optional[np.ndarray]:
    if writes is None:
        return None
    mask = np.asarray(writes, dtype=bool)
    if mask.shape != (n,):
        raise ValueError("writes mask length must match addresses length")
    return mask


def _direct_mapped_profile(
    la: np.ndarray,
    write_mask: Optional[np.ndarray],
    *,
    line_b: int,
    num_sets: int,
) -> StackDistanceProfile:
    """Fully vectorised profile of a direct-mapped partition.

    A direct-mapped access hits iff the previous access to its set
    touched the same line.  A stable sort by set index makes "previous
    access to the same set" adjacent, so the whole partition reduces to
    one argsort and a shifted comparison; no per-access Python loop.
    """
    n = int(la.size)
    writes_total = int(write_mask.sum()) if write_mask is not None else 0
    if n == 0:
        return StackDistanceProfile(
            line_b=line_b, num_sets=num_sets, max_assoc=1,
            accesses=0, write_accesses=0,
            depth_hist=(0, 0), write_depth_hist=(0, 0),
            compulsory_misses=0, set_distinct=(0,) * num_sets,
        )
    order = np.argsort(la % num_sets, kind="stable")
    sorted_lines = la[order]
    # Equal consecutive line addresses imply the same set, and distinct
    # sets cannot share a line address, so no explicit set-boundary
    # check is needed.
    same_as_prev = sorted_lines[1:] == sorted_lines[:-1]
    hits = int(same_as_prev.sum())
    if write_mask is not None:
        write_hits = int((same_as_prev & write_mask[order][1:]).sum())
    else:
        write_hits = 0
    unique_lines = np.unique(la)
    distinct = np.bincount(unique_lines % num_sets, minlength=num_sets)
    return StackDistanceProfile(
        line_b=line_b,
        num_sets=num_sets,
        max_assoc=1,
        accesses=n,
        write_accesses=writes_total,
        depth_hist=(hits, n - hits),
        write_depth_hist=(write_hits, writes_total - write_hits),
        compulsory_misses=int(unique_lines.size),
        set_distinct=tuple(int(d) for d in distinct),
    )


def _looped_profile(
    la: np.ndarray,
    write_mask: Optional[np.ndarray],
    *,
    line_b: int,
    num_sets: int,
    max_assoc: int,
) -> StackDistanceProfile:
    """Generic single-partition pass for any truncation depth.

    Maintains one MRU-first list per set, truncated at ``max_assoc``
    (the top of the unbounded LRU stack evolves identically), and
    histograms the depth of every access.
    """
    n = int(la.size)
    writes_total = int(write_mask.sum()) if write_mask is not None else 0
    la_list = la.tolist()  # iterating a list is much faster than an ndarray
    set_list = (la % num_sets).tolist()
    write_iter = write_mask.tolist() if write_mask is not None else repeat(False)

    stacks: List[List[int]] = [[] for _ in range(num_sets)]
    hist = [0] * (max_assoc + 1)
    write_hist = [0] * (max_assoc + 1)
    distinct = [0] * num_sets
    seen: set = set()

    for line, set_index, is_write in zip(la_list, set_list, write_iter):
        stack = stacks[set_index]
        try:
            depth = stack.index(line)
        except ValueError:
            depth = max_assoc
            if line not in seen:
                seen.add(line)
                distinct[set_index] += 1
            stack.insert(0, line)
            if len(stack) > max_assoc:
                stack.pop()
        else:
            if depth:
                del stack[depth]
                stack.insert(0, line)
        hist[depth] += 1
        if is_write:
            write_hist[depth] += 1

    return StackDistanceProfile(
        line_b=line_b,
        num_sets=num_sets,
        max_assoc=max_assoc,
        accesses=n,
        write_accesses=writes_total,
        depth_hist=tuple(hist),
        write_depth_hist=tuple(write_hist),
        compulsory_misses=len(seen),
        set_distinct=tuple(distinct),
    )


def _two_way_profile(
    la: np.ndarray,
    write_mask: Optional[np.ndarray],
    *,
    line_b: int,
    num_sets: int,
) -> StackDistanceProfile:
    """Fully vectorised profile of a 2-way partition.

    In the stable sort-by-set view, each set's accesses form *runs* of
    repeated line addresses.  The 2-deep stack before an access is
    ``[current run's line, previous run's line]``, so the access hits
    at depth 0 iff it continues the current run, and a run-starting
    access hits at depth 1 iff its line equals the run-start line two
    runs back in the same set (the previous run's line differs from it
    by construction).  Both conditions are fixed-lag comparisons on the
    sorted arrays; no per-access Python loop.
    """
    n = int(la.size)
    writes_total = int(write_mask.sum()) if write_mask is not None else 0
    if n == 0:
        return StackDistanceProfile(
            line_b=line_b, num_sets=num_sets, max_assoc=2,
            accesses=0, write_accesses=0,
            depth_hist=(0, 0, 0), write_depth_hist=(0, 0, 0),
            compulsory_misses=0, set_distinct=(0,) * num_sets,
        )
    order = np.argsort(la % num_sets, kind="stable")
    sorted_lines = la[order]
    # Depth-0 hit: previous same-set access touched the same line (line
    # equality implies set equality, so no boundary check is needed).
    depth0 = np.zeros(n, dtype=bool)
    depth0[1:] = sorted_lines[1:] == sorted_lines[:-1]
    hits0 = int(depth0.sum())
    # Depth-1 hit: the access starts a new run and matches the line two
    # runs back within the same set.
    run_start_idx = np.flatnonzero(~depth0)
    run_lines = sorted_lines[run_start_idx]
    run_sets = (run_lines % num_sets)
    depth1_at_start = np.zeros(run_start_idx.size, dtype=bool)
    if run_start_idx.size > 2:
        # Same set two runs back implies the run between is also in the
        # same set (runs are sorted by set), so the stack's second entry
        # is exactly that run's line.
        depth1_at_start[2:] = (run_lines[2:] == run_lines[:-2]) & (
            run_sets[2:] == run_sets[:-2]
        )
    hits1 = int(depth1_at_start.sum())
    if write_mask is not None:
        sorted_writes = write_mask[order]
        write_hits0 = int((depth0 & sorted_writes).sum())
        write_hits1 = int((depth1_at_start & sorted_writes[run_start_idx]).sum())
    else:
        write_hits0 = write_hits1 = 0
    unique_lines = np.unique(la)
    distinct = np.bincount(unique_lines % num_sets, minlength=num_sets)
    return StackDistanceProfile(
        line_b=line_b,
        num_sets=num_sets,
        max_assoc=2,
        accesses=n,
        write_accesses=writes_total,
        depth_hist=(hits0, hits1, n - hits0 - hits1),
        write_depth_hist=(
            write_hits0,
            write_hits1,
            writes_total - write_hits0 - write_hits1,
        ),
        compulsory_misses=int(unique_lines.size),
        set_distinct=tuple(int(d) for d in distinct),
    )


def _four_way_profile(
    la: np.ndarray,
    write_mask: Optional[np.ndarray],
    *,
    line_b: int,
    num_sets: int,
) -> StackDistanceProfile:
    """Single-pass 4-deep stack profile; the engine's only hot Python loop.

    Per line size of the Table-1 space, the direct-mapped and 2-way
    partitions are handled vectorised, leaving exactly one partition
    that needs a per-access traversal.  The truncated stacks are kept
    in four flat parallel lists (one per stack position) so every state
    transition is a handful of list indexing operations.
    """
    n = int(la.size)
    writes_total = int(write_mask.sum()) if write_mask is not None else 0
    la_list = la.tolist()
    set_list = (la % num_sets).tolist()
    write_iter = write_mask.tolist() if write_mask is not None else repeat(False)

    # Stack positions 0 (MRU) .. 3 (LRU) per set.
    pos0 = [_EMPTY] * num_sets
    pos1 = [_EMPTY] * num_sets
    pos2 = [_EMPTY] * num_sets
    pos3 = [_EMPTY] * num_sets

    h0 = h1 = h2 = h3 = 0
    wh0 = wh1 = wh2 = wh3 = 0
    distinct = [0] * num_sets
    seen: set = set()

    for line, set_index, is_write in zip(la_list, set_list, write_iter):
        d0 = pos0[set_index]
        if d0 == line:
            h0 += 1
            if is_write:
                wh0 += 1
        else:
            d1 = pos1[set_index]
            if d1 == line:
                h1 += 1
                if is_write:
                    wh1 += 1
                pos1[set_index] = d0
                pos0[set_index] = line
            else:
                d2 = pos2[set_index]
                if d2 == line:
                    h2 += 1
                    if is_write:
                        wh2 += 1
                    pos2[set_index] = d1
                    pos1[set_index] = d0
                    pos0[set_index] = line
                else:
                    if pos3[set_index] == line:
                        h3 += 1
                        if is_write:
                            wh3 += 1
                    elif line not in seen:
                        seen.add(line)
                        distinct[set_index] += 1
                    pos3[set_index] = d2
                    pos2[set_index] = d1
                    pos1[set_index] = d0
                    pos0[set_index] = line

    hits = h0 + h1 + h2 + h3
    write_hits = wh0 + wh1 + wh2 + wh3
    return StackDistanceProfile(
        line_b=line_b,
        num_sets=num_sets,
        max_assoc=4,
        accesses=n,
        write_accesses=writes_total,
        depth_hist=(h0, h1, h2, h3, n - hits),
        write_depth_hist=(wh0, wh1, wh2, wh3, writes_total - write_hits),
        compulsory_misses=len(seen),
        set_distinct=tuple(distinct),
    )


def profile_trace(
    addresses: Sequence[int],
    *,
    line_b: int,
    num_sets: int,
    max_assoc: int,
    writes: Optional[Sequence[bool]] = None,
) -> StackDistanceProfile:
    """Measure one partition of a trace in a single pass.

    Returns a :class:`StackDistanceProfile` from which exact LRU
    statistics for every associativity up to ``max_assoc`` can be read
    via :meth:`StackDistanceProfile.stats_for_assoc`.
    """
    if line_b <= 0 or num_sets <= 0 or max_assoc <= 0:
        raise ValueError("line_b, num_sets and max_assoc must be positive")
    la = _as_line_addrs(addresses, line_b)
    mask = _as_write_mask(writes, int(la.size))
    return _partition_profile(
        la, mask, line_b=line_b, num_sets=num_sets, max_assoc=max_assoc
    )


def _partition_profile(
    la: np.ndarray,
    mask: Optional[np.ndarray],
    *,
    line_b: int,
    num_sets: int,
    max_assoc: int,
) -> StackDistanceProfile:
    """Pick the fastest measuring pass able to answer ``max_assoc``."""
    if max_assoc == 1:
        return _direct_mapped_profile(la, mask, line_b=line_b, num_sets=num_sets)
    if max_assoc == 2:
        return _two_way_profile(la, mask, line_b=line_b, num_sets=num_sets)
    if max_assoc <= 4:
        # A 4-deep profile answers 3-way queries too.
        return _four_way_profile(la, mask, line_b=line_b, num_sets=num_sets)
    return _looped_profile(
        la, mask, line_b=line_b, num_sets=num_sets, max_assoc=max_assoc
    )


def _profiles_for_line_size(
    la: np.ndarray,
    mask: Optional[np.ndarray],
    line_b: int,
    partitions: Dict[int, int],
) -> Dict[int, StackDistanceProfile]:
    """Profile every ``num_sets -> max_assoc`` partition of one line size."""
    return {
        num_sets: _partition_profile(
            la, mask, line_b=line_b, num_sets=num_sets, max_assoc=max_assoc
        )
        for num_sets, max_assoc in partitions.items()
    }


def simulate_many(
    addresses: Sequence[int],
    configs: Sequence[CacheConfig],
    writes: Optional[Sequence[bool]] = None,
) -> Dict[CacheConfig, CacheStats]:
    """Exact LRU, write-allocate statistics for many configurations at once.

    Groups ``configs`` by ``(line_b, num_sets)`` partition, measures
    each partition in a single pass over the trace (fused and
    vectorised where the partition structure allows), and reads every
    configuration's :class:`CacheStats` off its partition's stack
    -distance profile.  Produces results identical to running
    :func:`repro.cache.cache.simulate_trace` per configuration, which
    in turn matches the reference :class:`~repro.cache.cache.Cache`.

    The returned mapping preserves the order of first appearance in
    ``configs``; duplicates collapse onto one entry.
    """
    unique_configs: List[CacheConfig] = []
    for config in configs:
        if config not in unique_configs:
            unique_configs.append(config)

    addr = np.asarray(addresses, dtype=np.int64)
    if addr.ndim != 1:
        raise ValueError("addresses must be one-dimensional")
    mask = _as_write_mask(writes, int(addr.size))

    by_line: Dict[int, Dict[int, int]] = {}
    for config in unique_configs:
        partitions = by_line.setdefault(config.line_b, {})
        num_sets = config.num_sets
        partitions[num_sets] = max(partitions.get(num_sets, 0), config.assoc)

    profiles: Dict[Tuple[int, int], StackDistanceProfile] = {}
    for line_b, partitions in by_line.items():
        la = addr // line_b
        for num_sets, profile in _profiles_for_line_size(
            la, mask, line_b, partitions
        ).items():
            profiles[(line_b, num_sets)] = profile

    return {
        config: profiles[(config.line_b, config.num_sets)].stats_for_assoc(
            config.assoc
        )
        for config in unique_configs
    }
