"""Cache access statistics.

:class:`CacheStats` is the mutable counter block every cache model updates
and the immutable summary downstream consumers (energy model,
characterisation store, ANN features) read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters for one cache over one workload execution.

    All counts are event counts, not rates; derived rates are exposed as
    properties so they always stay consistent with the raw counters.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    fills: int = 0
    #: Number of lines invalidated by flushes (reconfiguration).
    flushed_lines: int = 0
    #: Compulsory (cold) misses: first-ever reference to a line address.
    compulsory_misses: int = 0

    def record_hit(self, *, is_write: bool) -> None:
        """Record one hit."""
        self.accesses += 1
        self.hits += 1
        if is_write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1

    def record_miss(self, *, is_write: bool, compulsory: bool = False) -> None:
        """Record one miss (the subsequent fill is counted separately)."""
        self.accesses += 1
        self.misses += 1
        if is_write:
            self.write_accesses += 1
            self.write_misses += 1
        else:
            self.read_accesses += 1
            self.read_misses += 1
        if compulsory:
            self.compulsory_misses += 1

    @property
    def miss_rate(self) -> float:
        """Misses per access; 0.0 when there were no accesses."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits per access; 0.0 when there were no accesses."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` with both counter sets summed."""
        merged = CacheStats()
        for name in vars(self):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def copy(self) -> "CacheStats":
        """Return an independent copy of the counters."""
        fresh = CacheStats()
        for name in vars(self):
            setattr(fresh, name, getattr(self, name))
        return fresh

    def validate(self) -> None:
        """Raise :class:`ValueError` if the counters are inconsistent."""
        if self.hits + self.misses != self.accesses:
            raise ValueError(
                f"hits ({self.hits}) + misses ({self.misses}) != "
                f"accesses ({self.accesses})"
            )
        if self.read_accesses + self.write_accesses != self.accesses:
            raise ValueError("read + write accesses do not sum to accesses")
        if self.read_misses + self.write_misses != self.misses:
            raise ValueError("read + write misses do not sum to misses")
        if self.compulsory_misses > self.misses:
            raise ValueError("compulsory misses exceed total misses")
        for name, value in vars(self).items():
            if value < 0:
                raise ValueError(f"negative counter {name}={value}")
