"""Cache tuner hardware model.

Each core in the paper's architecture (its Figure 1) contains a *cache
tuner*: a small hardware block that changes the L1's associativity and
line size between application executions.  Reconfiguration is not free —
the cache must be flushed (dirty lines written back, all lines refetched
on demand afterwards) and the tuner itself consumes energy and cycles.

The tuner model here charges a fixed per-line flush cost plus a constant
control overhead, which is the granularity the paper's energy accounting
needs ("explored from the smallest to the largest value to minimise cache
flushing").
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import CacheConfig

__all__ = ["TunerCostModel", "ReconfigurationCost", "CacheTuner"]


@dataclass(frozen=True)
class ReconfigurationCost:
    """Cycles and energy charged for one reconfiguration."""

    cycles: int
    energy_nj: float

    ZERO: "ReconfigurationCost" = None  # filled in after class creation


ReconfigurationCost.ZERO = ReconfigurationCost(cycles=0, energy_nj=0.0)


@dataclass(frozen=True)
class TunerCostModel:
    """Cost parameters for the tuner.

    Attributes
    ----------
    flush_cycles_per_line:
        Cycles to invalidate (and potentially write back) one line.
    control_cycles:
        Fixed cycles for the tuner state machine per reconfiguration.
    flush_energy_per_line_nj:
        Energy per flushed line in nanojoules.
    control_energy_nj:
        Fixed tuner energy per reconfiguration in nanojoules.
    """

    flush_cycles_per_line: int = 1
    control_cycles: int = 100
    flush_energy_per_line_nj: float = 0.02
    control_energy_nj: float = 5.0

    def cost(self, old: CacheConfig, new: CacheConfig) -> ReconfigurationCost:
        """Cost of switching ``old`` → ``new``.

        A no-op reconfiguration is free.  Otherwise every line of the old
        configuration is flushed.
        """
        if old == new:
            return ReconfigurationCost.ZERO
        lines = old.num_lines
        return ReconfigurationCost(
            cycles=self.control_cycles + self.flush_cycles_per_line * lines,
            energy_nj=self.control_energy_nj
            + self.flush_energy_per_line_nj * lines,
        )


class CacheTuner:
    """Tracks a core's current L1 configuration and reconfiguration costs.

    The size is fixed per core (Section III); only associativity and line
    size may change.
    """

    def __init__(
        self,
        initial: CacheConfig,
        cost_model: TunerCostModel = TunerCostModel(),
    ) -> None:
        self._current = initial
        self._size_kb = initial.size_kb
        self._cost_model = cost_model
        self.reconfigurations = 0
        self.total_cycles = 0
        self.total_energy_nj = 0.0

    @property
    def current(self) -> CacheConfig:
        """The currently installed configuration."""
        return self._current

    def reconfigure(self, new: CacheConfig) -> ReconfigurationCost:
        """Switch to ``new``; returns the cost charged.

        Raises :class:`ValueError` if ``new`` changes the cache size,
        which is not tunable at run time.
        """
        if new.size_kb != self._size_kb:
            raise ValueError(
                f"cache size is fixed per core: cannot switch "
                f"{self._current.name} -> {new.name}"
            )
        cost = self._cost_model.cost(self._current, new)
        if cost.cycles or cost.energy_nj:
            self.reconfigurations += 1
            self.total_cycles += cost.cycles
            self.total_energy_nj += cost.energy_nj
        self._current = new
        return cost
