"""Process-parallel replication campaigns.

The paper's evaluation claims are statements about *distributions* —
energy and latency of each scheduling policy over many arrival streams —
so every ablation replays a (policy × seed × load) grid of independent
simulations.  This module runs that grid as a campaign: each replication
is one deterministic :class:`~repro.core.simulation.SchedulerSimulation`
run, the grid fans out over a process pool sharing the read-only
characterisation store, and the results aggregate to per-cell
mean / std / 95 % confidence intervals.

Determinism contract: a replication's arrival stream derives only from
its :class:`ReplicationSpec` (the replication seed feeds
:func:`~repro.workloads.arrivals.uniform_arrivals` directly), and
``pool.map``/``pool.imap`` preserve task order, so campaign results are
identical for
any worker count — including the in-process serial path — and for any
scheduling of tasks onto workers.  The ``fork`` start method is
preferred when available (workers inherit the store without pickling);
the initializer ships the shared state once per worker either way, so
per-task payloads stay tiny.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.characterization.store import CharacterizationStore
from repro.core.policies import (
    ALL_POLICY_NAMES,
    DEADLINE_POLICY_NAMES,
    POLICY_NAMES,
    make_policy,
)
from repro.core.predictor import BestCorePredictor, OraclePredictor
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.energy.tables import EnergyTable
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.power.budget import PowerConfig, normalize_power
from repro.power.dvfs import DvfsTable
from repro.workloads.arrivals import uniform_arrivals
from repro.workloads.eembc import eembc_suite

logger = logging.getLogger(__name__)

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "DagLoad",
    "MetricAggregate",
    "ReplicationResult",
    "ReplicationSpec",
    "StreamLoad",
    "power_grid",
    "run_campaign",
]

#: Metrics aggregated per campaign cell, in report order.
CAMPAIGN_METRICS = (
    "total_energy_nj",
    "idle_energy_nj",
    "dynamic_energy_nj",
    "makespan_cycles",
    "mean_waiting_cycles",
    "jobs_completed",
    "non_best_decisions",
)


@dataclass(frozen=True)
class StreamLoad:
    """Open-system load axis: replications stream instead of replaying.

    When passed to :func:`run_campaign`, every replication consumes a
    generator-backed arrival process through the streaming engine
    (:mod:`repro.sim.stream`) instead of materialising a batch: the
    grid's ``(count, gap)`` loads become ``(max_jobs,
    mean_interarrival_cycles)`` of the stream, and the replication seed
    seeds the process.  Hashable/picklable pure data, like
    :class:`~repro.faults.plan.FaultPlan`.
    """

    #: Arrival process kind (see
    #: :func:`~repro.workloads.arrivals.make_process`).
    process: str = "poisson"
    #: Metrics-only warm-up: jobs arriving before this cycle are
    #: excluded from the waiting/turnaround quantiles.
    warmup_cycles: int = 0
    #: Ready-queue bound (``None`` = unbounded, no admission control).
    queue_capacity: Optional[int] = None
    #: Admission policy under a full queue: ``drop`` / ``shed`` /
    #: ``block``.
    admission: str = "block"
    #: Extra keyword arguments for the process constructor, as a sorted
    #: tuple of ``(name, value)`` pairs so the spec stays hashable.
    process_args: Tuple[Tuple[str, float], ...] = ()


@dataclass(frozen=True)
class DagLoad:
    """Task-graph load axis: replications run generated DAG workloads.

    When passed to :func:`run_campaign`, every replication generates a
    seed-keyed task-graph set
    (:func:`~repro.workloads.dag.generate_task_graphs`) and runs it
    through :meth:`~repro.core.simulation.SchedulerSimulation.run_dags`
    with precedence gating: the grid's ``(count, gap)`` loads become
    ``(graph count, mean graph interarrival)``, and the replication
    seed keys the generator.  Deadline/slack outcomes ride back through
    :attr:`CampaignCell.observed` under ``dag.*`` keys.  DAG campaigns
    are reference-engine territory, so the metrics/validation/fault
    hooks all compose with this axis; the open-system ``stream`` axis
    does not.  Hashable/picklable pure data, like :class:`StreamLoad`.
    """

    #: Tasks per graph, drawn uniformly from this range.
    tasks_min: int = 3
    tasks_max: int = 8
    #: Probability of a forward precedence edge between any task pair.
    edge_density: float = 0.35
    #: Deadline looseness multiplier (smaller = tighter = more misses).
    deadline_slack: float = 2.5
    #: DAG-level criticality is drawn from ``1..criticality_levels``.
    criticality_levels: int = 3


def power_grid(
    caps: Sequence[Optional[float]] = (None,),
    *,
    slacks: Sequence[float] = (0.0,),
    dvfs: Optional[DvfsTable] = None,
    cluster_caps: Tuple[Tuple[int, float], ...] = (),
) -> Tuple[Optional[PowerConfig], ...]:
    """The ``caps × slacks`` power axis for :func:`run_campaign`.

    Builds one :class:`~repro.power.budget.PowerConfig` per (cap, slack)
    pair, sharing the optional DVFS table and per-cluster caps.  A cap of
    ``None`` (or ``inf``) means uncapped; configurations that end up
    disabled entirely normalise to ``None`` (the unconstrained cell) and
    collapse to a single ``None`` entry, so a sweep like
    ``power_grid([None, 4e5, 2e5], slacks=[0, 20])`` yields exactly one
    baseline cell plus the four capped ones.
    """
    if not caps:
        raise ValueError("need at least one power cap (None = uncapped)")
    if not slacks:
        raise ValueError("need at least one slack percentage (0 = none)")
    grid = []
    seen_clean = False
    for cap in caps:
        cap_nj = None if cap is None or cap == float("inf") else float(cap)
        for slack in slacks:
            config = normalize_power(
                PowerConfig(
                    cap_nj=cap_nj,
                    cluster_caps_nj=cluster_caps,
                    slack_pct=float(slack),
                    dvfs=dvfs,
                )
            )
            if config is None:
                if seen_clean:
                    continue
                seen_clean = True
            grid.append(config)
    return tuple(grid)


@dataclass(frozen=True)
class ReplicationSpec:
    """One point of the campaign grid: policy × load × fault plan × seed."""

    policy: str
    seed: int
    #: Jobs in the arrival stream.
    count: int
    #: Mean gap between arrivals (smaller = heavier load).
    mean_interarrival_cycles: int
    #: Fault plan injected into the replication (``None`` = clean run).
    #: :class:`~repro.faults.plan.FaultPlan` is hashable/picklable pure
    #: data, so the spec stays frozen and pool-shippable.
    fault_plan: Optional[FaultPlan] = None
    #: Simulation engine (``auto`` / ``fast`` / ``reference``), forwarded
    #: to :class:`~repro.core.simulation.SchedulerSimulation`.
    engine: str = "auto"
    #: Open-system load (``None`` = closed-batch replay, the default).
    stream: Optional[StreamLoad] = None
    #: Task-graph load (``None`` = independent-job arrivals).
    dag: Optional[DagLoad] = None
    #: Power budget / DVFS configuration (``None`` = unconstrained).
    #: :class:`~repro.power.budget.PowerConfig` is hashable/picklable
    #: pure data, like :class:`~repro.faults.plan.FaultPlan`.
    power: Optional[PowerConfig] = None


@dataclass(frozen=True)
class ReplicationResult:
    """Metrics of one simulated replication."""

    spec: ReplicationSpec
    jobs_completed: int
    makespan_cycles: int
    total_energy_nj: float
    idle_energy_nj: float
    dynamic_energy_nj: float
    mean_waiting_cycles: float
    non_best_decisions: int
    #: Wall time of this replication (instrumentation only; never part
    #: of the aggregates, so it cannot break worker-count independence).
    seconds: float
    #: Flat per-replication metric snapshot
    #: (:meth:`~repro.obs.metrics.MetricsRegistry.scalars`); empty unless
    #: the campaign ran with ``collect_metrics=True``.
    observed: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Metric value by aggregate name."""
        if name not in CAMPAIGN_METRICS:
            raise KeyError(f"unknown campaign metric {name!r}")
        return float(getattr(self, name))


@dataclass(frozen=True)
class MetricAggregate:
    """Mean / sample std / 95 % CI half-width over a cell's replications."""

    mean: float
    std: float
    ci95: float
    n: int


@dataclass(frozen=True)
class CampaignCell:
    """Aggregates of every replication sharing (policy, load, plan)."""

    policy: str
    count: int
    mean_interarrival_cycles: int
    metrics: Dict[str, MetricAggregate]
    n: int
    #: Name of the injected fault plan (``None`` = clean cell).
    faults: Optional[str] = None
    #: Engine mode the cell's replications ran under.  Part of the cell
    #: label whenever it is not the default ``auto``, so results from
    #: explicitly pinned engines are never silently aggregated with
    #: others.
    engine: str = "auto"
    #: Aggregates of the per-replication registry scalars (empty unless
    #: the campaign ran with ``collect_metrics=True``).  Keys follow the
    #: flat ``sim.*`` naming of
    #: :meth:`~repro.obs.metrics.MetricsRegistry.scalars`; open-system
    #: campaigns report their windowed metrics here under ``stream.*``.
    observed: Dict[str, MetricAggregate] = field(default_factory=dict)
    #: Arrival-process kind of an open-system campaign (``None`` =
    #: closed-batch replay).  Part of the cell label, like ``engine``.
    stream: Optional[str] = None
    #: Whether the cell's replications ran task-graph workloads
    #: (:class:`DagLoad`).  Part of the cell label (``policy^dag``), so
    #: DAG results are never silently aggregated with plain-job ones.
    dag: bool = False
    #: Label of the cell's power configuration
    #: (:attr:`~repro.power.budget.PowerConfig.label`; ``None`` =
    #: unconstrained).  Part of the cell label (``policy%cap=...``) and
    #: of the cell identity, so differently capped results are never
    #: silently aggregated.
    power: Optional[str] = None

    def metric(self, name: str) -> MetricAggregate:
        """Aggregate by metric name."""
        return self.metrics[name]


#: Two-tailed 95 % Student-t critical values by degrees of freedom.
#: Campaign cells aggregate a handful of replications, where the
#: normal z=1.96 understates the interval badly (at n=2, df=1, the true
#: critical value is 12.706 — a ~6.5× narrower-than-real CI).  The
#: table covers df 1..30 exactly plus the conventional 40/60/120
#: waypoints; untabulated df fall back to the largest tabulated df not
#: exceeding them, which rounds the interval *wider* (conservative).
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_critical(df: int) -> float:
    """Two-tailed 95 % t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    exact = _T_CRITICAL_95.get(df)
    if exact is not None:
        return exact
    # Conservative fallback: the largest tabulated df below the actual
    # one has a slightly *larger* critical value, so the reported
    # interval can only err wide, never narrow.
    floor_df = max(d for d in _T_CRITICAL_95 if d <= df)
    return _T_CRITICAL_95[floor_df]


def _aggregate(values: Sequence[float]) -> MetricAggregate:
    n = len(values)
    if n == 0:
        raise ValueError("cannot aggregate an empty cell")
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
        ci95 = _t_critical(n - 1) * std / math.sqrt(n)
    else:
        std = 0.0
        ci95 = 0.0
    return MetricAggregate(mean=mean, std=std, ci95=ci95, n=n)


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign produced.

    ``replications`` are in grid order (policy-major, then load, then
    seed); ``cells`` aggregate each (policy, load) over its seeds.
    """

    replications: Tuple[ReplicationResult, ...]
    cells: Tuple[CampaignCell, ...]
    wall_seconds: float
    workers: int

    def cell(
        self,
        policy: str,
        *,
        count: Optional[int] = None,
        mean_interarrival_cycles: Optional[int] = None,
        faults: Optional[str] = None,
        power: Optional[str] = None,
    ) -> CampaignCell:
        """The unique cell matching the selectors.

        Load, fault and power selectors may be omitted when the campaign
        swept only one load / fault plan / power configuration;
        ambiguous or empty selections raise ``KeyError``.  ``faults``
        matches the plan name and ``power`` the
        :attr:`~repro.power.budget.PowerConfig.label`; pass the string
        ``"none"`` to select the clean / unconstrained cell of a mixed
        campaign.
        """

        def faults_match(cell: CampaignCell) -> bool:
            if faults is None:
                return True
            if faults == "none":
                return cell.faults is None
            return cell.faults == faults

        def power_match(cell: CampaignCell) -> bool:
            if power is None:
                return True
            if power == "none":
                return cell.power is None
            return cell.power == power

        matches = [
            cell
            for cell in self.cells
            if cell.policy == policy
            and (count is None or cell.count == count)
            and (
                mean_interarrival_cycles is None
                or cell.mean_interarrival_cycles == mean_interarrival_cycles
            )
            and faults_match(cell)
            and power_match(cell)
        ]
        if not matches:
            raise KeyError(
                f"no campaign cell matches policy={policy!r}, count={count}, "
                f"mean_interarrival_cycles={mean_interarrival_cycles}"
            )
        if len(matches) > 1:
            raise KeyError(
                f"{len(matches)} campaign cells match policy={policy!r}; "
                "pass count= / mean_interarrival_cycles= / faults= / "
                "power= to disambiguate"
            )
        return matches[0]

    def summary(self) -> str:
        """Text table of per-cell mean ± CI for the headline metrics."""
        def label_for(cell: CampaignCell) -> str:
            label = cell.policy
            if cell.faults is not None:
                label = f"{label}+{cell.faults}"
            if cell.engine != "auto":
                label = f"{label}@{cell.engine}"
            if cell.stream is not None:
                label = f"{label}~{cell.stream}"
            if cell.dag:
                label = f"{label}^dag"
            if cell.power is not None:
                label = f"{label}%{cell.power}"
            return label

        width = max([15] + [len(label_for(cell)) for cell in self.cells])
        header = (
            f"{'policy':<{width}} {'jobs':>6} {'gap':>8} {'n':>3} "
            f"{'energy (mJ)':>16} {'makespan (Mcyc)':>18} {'wait (kcyc)':>14}"
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            energy = cell.metrics["total_energy_nj"]
            makespan = cell.metrics["makespan_cycles"]
            wait = cell.metrics["mean_waiting_cycles"]
            label = label_for(cell)
            lines.append(
                f"{label:<{width}} {cell.count:>6} "
                f"{cell.mean_interarrival_cycles:>8} {cell.n:>3} "
                f"{energy.mean / 1e6:>9.3f} ±{energy.ci95 / 1e6:<5.3f} "
                f"{makespan.mean / 1e6:>11.2f} ±{makespan.ci95 / 1e6:<5.2f} "
                f"{wait.mean / 1e3:>8.1f} ±{wait.ci95 / 1e3:<4.1f}"
            )
        lines.append(
            f"replications={len(self.replications)} workers={self.workers} "
            f"wall={self.wall_seconds:.2f}s"
        )
        return "\n".join(lines)


# Shared read-only state, installed once per worker by the pool
# initializer (or once in-process on the serial path).
_WORKER_STATE: dict = {}


def _init_worker(
    store: CharacterizationStore,
    predictor: BestCorePredictor,
    energy_table: EnergyTable,
    discipline: str,
    collect_metrics: bool = False,
    validate: bool = False,
) -> None:
    _WORKER_STATE["store"] = store
    _WORKER_STATE["predictor"] = predictor
    _WORKER_STATE["energy_table"] = energy_table
    _WORKER_STATE["discipline"] = discipline
    _WORKER_STATE["collect_metrics"] = collect_metrics
    _WORKER_STATE["validate"] = validate


def _pool_observed(simulation: SchedulerSimulation) -> Dict[str, float]:
    """Flat ``power.*`` gauges of a powered run's token pool."""
    pool = simulation.power_pool
    if pool is None:
        return {}
    return {
        "power.granted_nj": pool.granted_nj,
        "power.refunded_nj": pool.refunded_nj,
        "power.consumed_nj": pool.consumed_nj,
        "power.grants": float(pool.grants),
        "power.refunds": float(pool.refunds),
        "power.throttled": float(pool.throttled),
        "power.degraded": float(pool.degraded),
        "power.overdrafts": float(pool.overdrafts),
    }


def _run_replication(spec: ReplicationSpec) -> ReplicationResult:
    """Simulate one grid point (executed inside a worker process)."""
    start = time.perf_counter()
    policy = make_policy(spec.policy)
    system = base_system() if spec.policy == "base" else paper_system()
    registry = (
        MetricsRegistry() if _WORKER_STATE.get("collect_metrics") else None
    )
    simulation = SchedulerSimulation(
        system,
        policy,
        _WORKER_STATE["store"],
        predictor=(
            _WORKER_STATE["predictor"] if policy.uses_predictor else None
        ),
        energy_table=_WORKER_STATE["energy_table"],
        discipline=_WORKER_STATE["discipline"],
        metrics=registry,
        validate=_WORKER_STATE.get("validate", False),
        faults=spec.fault_plan,
        engine=spec.engine,
        power=spec.power,
    )
    if spec.stream is not None:
        return _stream_replication(spec, simulation, start)
    if spec.dag is not None:
        return _dag_replication(spec, simulation, registry, start)
    arrivals = uniform_arrivals(
        eembc_suite(),
        count=spec.count,
        seed=spec.seed,
        mean_interarrival_cycles=spec.mean_interarrival_cycles,
    )
    result = simulation.run(arrivals)
    observed = dict(registry.scalars()) if registry is not None else {}
    observed.update(_pool_observed(simulation))
    return ReplicationResult(
        spec=spec,
        jobs_completed=result.jobs_completed,
        makespan_cycles=result.makespan_cycles,
        total_energy_nj=result.total_energy_nj,
        idle_energy_nj=result.idle_energy_nj,
        dynamic_energy_nj=result.dynamic_energy_nj,
        mean_waiting_cycles=result.mean_waiting_cycles,
        non_best_decisions=result.non_best_decisions,
        seconds=time.perf_counter() - start,
        observed=observed,
    )


def _dag_replication(
    spec: ReplicationSpec,
    simulation: SchedulerSimulation,
    registry: Optional[MetricsRegistry],
    start: float,
) -> ReplicationResult:
    """Task-graph variant of one grid point (precedence-gated run)."""
    from repro.workloads.dag import generate_task_graphs

    load = spec.dag
    graphs = generate_task_graphs(
        count=spec.count,
        seed=spec.seed,
        benchmarks=[s.name for s in eembc_suite()],
        tasks_min=load.tasks_min,
        tasks_max=load.tasks_max,
        edge_density=load.edge_density,
        deadline_slack=load.deadline_slack,
        criticality_levels=load.criticality_levels,
        mean_interarrival_cycles=spec.mean_interarrival_cycles,
    )
    result = simulation.run_dags(graphs)
    # Deadline/slack outcomes ride back through ``observed`` alongside
    # any registry scalars, so cells aggregate them like every other
    # per-replication metric.
    observed = dict(registry.scalars()) if registry is not None else {}
    observed.update(
        {
            "dag.graphs": float(len(graphs)),
            "dag.tasks": float(sum(g.task_count for g in graphs)),
            "dag.edges": float(sum(g.edge_count for g in graphs)),
            "dag.deadline_jobs": float(result.deadline_jobs),
            "dag.deadline_misses": float(result.deadline_misses),
            "dag.deadline_miss_rate": result.deadline_miss_rate,
        }
    )
    observed.update(_pool_observed(simulation))
    return ReplicationResult(
        spec=spec,
        jobs_completed=result.jobs_completed,
        makespan_cycles=result.makespan_cycles,
        total_energy_nj=result.total_energy_nj,
        idle_energy_nj=result.idle_energy_nj,
        dynamic_energy_nj=result.dynamic_energy_nj,
        mean_waiting_cycles=result.mean_waiting_cycles,
        non_best_decisions=result.non_best_decisions,
        seconds=time.perf_counter() - start,
        observed=observed,
    )


def _stream_replication(
    spec: ReplicationSpec, simulation: SchedulerSimulation, start: float
) -> ReplicationResult:
    """Open-system variant of one grid point."""
    from repro.sim.stream import StreamConfig
    from repro.workloads.arrivals import make_process

    load = spec.stream
    process = make_process(
        load.process,
        eembc_suite(),
        mean_interarrival_cycles=spec.mean_interarrival_cycles,
        seed=spec.seed,
        **dict(load.process_args),
    )
    result = simulation.stream(
        process,
        StreamConfig(
            max_jobs=spec.count,
            warmup_cycles=load.warmup_cycles,
            queue_capacity=load.queue_capacity,
            admission=load.admission,
        ),
    )
    # The windowed stream metrics ride back through ``observed`` (flat
    # floats, exactly like registry scalars) so cells aggregate the
    # quantile snapshots without retaining per-job state anywhere.
    observed = {
        "stream.jobs_generated": float(result.jobs_generated),
        "stream.jobs_dropped": float(result.jobs_dropped),
        "stream.jobs_shed": float(result.jobs_shed),
        "stream.shed_rate": result.shed_rate,
        "stream.blocked_cycles": float(result.blocked_cycles),
        "stream.observed_jobs": float(result.observed_jobs),
        "stream.throughput_jobs_per_mcycle": (
            result.throughput_jobs_per_mcycle
        ),
        "stream.energy_rate_nj_per_cycle": result.energy_rate_nj_per_cycle,
    }
    for prefix, snapshot in (
        ("stream.waiting", result.waiting),
        ("stream.turnaround", result.turnaround),
    ):
        for key, value in snapshot.items():
            observed[f"{prefix}.{key}"] = value
    if result.power is not None:
        for key, value in result.power.items():
            observed[f"power.{key}"] = float(value)
    return ReplicationResult(
        spec=spec,
        jobs_completed=result.jobs_completed,
        makespan_cycles=result.makespan_cycles,
        total_energy_nj=result.total_energy_nj,
        idle_energy_nj=result.idle_energy_nj,
        dynamic_energy_nj=result.dynamic_energy_nj,
        mean_waiting_cycles=result.waiting.get("mean", 0.0),
        non_best_decisions=result.non_best_decisions,
        seconds=time.perf_counter() - start,
        observed=observed,
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def run_campaign(
    store: CharacterizationStore,
    predictor: Optional[BestCorePredictor] = None,
    *,
    policies: Sequence[str] = POLICY_NAMES,
    seeds: Sequence[int] = (0,),
    loads: Sequence[Tuple[int, int]] = ((1000, 56_000),),
    discipline: str = "fifo",
    energy_table: Optional[EnergyTable] = None,
    workers: Optional[int] = 1,
    collect_metrics: bool = False,
    validate: bool = False,
    fault_plans: Sequence[Optional[FaultPlan]] = (None,),
    engine: str = "auto",
    stream: Optional[StreamLoad] = None,
    dag: Optional[DagLoad] = None,
    power_configs: Sequence[Optional[PowerConfig]] = (None,),
    progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignResult:
    """Run a (policy × load × fault plan × seed) grid, optionally parallel.

    Parameters
    ----------
    store:
        Characterisation of every benchmark that can arrive — shared
        read-only by all replications.
    predictor:
        Best-core predictor for predictor-driven policies; ``None``
        uses an :class:`~repro.core.predictor.OraclePredictor` over the
        store.
    policies:
        Policy names to sweep (see
        :data:`~repro.core.policies.POLICY_NAMES`).
    seeds:
        Replication seeds; each seed generates an independent arrival
        stream per load, and cells aggregate over seeds.
    loads:
        ``(count, mean_interarrival_cycles)`` pairs — sweep either the
        stream length or the arrival rate (or both).
    discipline:
        Ready-queue service order, forwarded to the simulation.
    energy_table:
        Energy constants; defaults to the paper's table.
    workers:
        Worker processes; ``None`` means one per CPU.  Clamped to the
        replication count; ``<= 1`` runs serially in-process.  Results
        are identical for every worker count.
    collect_metrics:
        Attach a fresh :class:`~repro.obs.metrics.MetricsRegistry` to
        every replication; each worker ships the flat scalar snapshot
        back with its result, and cells expose per-key aggregates via
        :attr:`CampaignCell.observed`.  Off by default (small but
        nonzero simulation overhead).
    validate:
        Attach the energy-conservation ledger and runtime invariant
        checks (:mod:`repro.validate`) to every replication; a
        violation raises :class:`~repro.validate.ledger.ValidationError`
        out of the failing worker.  Results are unchanged when all
        checks pass.
    fault_plans:
        Fault plans to sweep as a grid axis (see :mod:`repro.faults`);
        each entry is a :class:`~repro.faults.plan.FaultPlan` or
        ``None`` for a clean run.  The default single-``None`` axis
        leaves campaign behaviour bit-identical to before the axis
        existed.  Plan names must be unique within the sweep (they key
        the cells).
    engine:
        Simulation engine for every replication (``auto`` / ``fast`` /
        ``reference``, see
        :class:`~repro.core.simulation.SchedulerSimulation`).  The
        default ``auto`` picks the fast engine for clean runs and the
        reference engine whenever metrics/validation/faults are on;
        requesting ``fast`` together with any of those hooks raises
        ``ValueError`` before any replication starts.  Non-default
        engines appear in the cell labels (``policy@engine``) so
        differently pinned results are never silently aggregated.
    stream:
        Open-system load axis (:class:`StreamLoad`).  When set, every
        replication consumes a generator-backed arrival process through
        the streaming engine instead of replaying a materialised batch:
        ``loads`` become ``(max_jobs, mean_interarrival_cycles)`` of
        the stream, and the windowed waiting/turnaround quantiles,
        throughput and shed rates come back through
        :attr:`CampaignCell.observed` under ``stream.*`` keys.  Like
        ``engine='fast'``, streaming rejects the metrics/validation/
        fault hooks up front.
    dag:
        Task-graph load axis (:class:`DagLoad`).  When set, every
        replication generates a seed-keyed DAG set and runs it with
        precedence gating
        (:meth:`~repro.core.simulation.SchedulerSimulation.run_dags`):
        ``loads`` become ``(graph count, mean graph interarrival)``,
        and deadline/slack outcomes come back through
        :attr:`CampaignCell.observed` under ``dag.*`` keys.  DAG
        campaigns run on the reference engine, so ``collect_metrics``,
        ``validate`` and ``fault_plans`` all compose with this axis;
        ``stream`` and ``engine='fast'`` do not.  The deadline-aware
        ``edf``/``heft`` policies
        (:data:`~repro.core.policies.DEADLINE_POLICY_NAMES`) are
        accepted alongside the paper's four.
    power_configs:
        Power budget / DVFS configurations to sweep as a grid axis (see
        :mod:`repro.power` and the :func:`power_grid` helper); each
        entry is a :class:`~repro.power.budget.PowerConfig` or ``None``
        for an unconstrained run.  The default single-``None`` axis
        leaves campaign behaviour bit-identical to before the axis
        existed.  Labels must be unique within the sweep (they key the
        cells); entries whose configuration enables nothing normalise
        to ``None``.  The axis composes with every engine and with the
        ``dag``/``stream``/``fault_plans`` axes; powered replications
        ship their token-pool gauges back through
        :attr:`CampaignCell.observed` under ``power.*`` keys, and
        combined with ``dag`` the per-cell (energy, deadline-miss)
        pairs feed :func:`repro.analysis.render_frontier`.
    progress:
        ``progress(done, total)`` callback invoked after every finished
        replication (and once with ``(0, total)`` before the first), in
        completion order on the driving process.  The parallel path
        switches from ``pool.map`` to the equally order-preserving
        ``pool.imap`` so results stream back as they finish; the
        replications and aggregates are identical either way.
    """
    if not policies:
        raise ValueError("need at least one policy")
    for name in policies:
        if name not in ALL_POLICY_NAMES:
            raise ValueError(
                f"unknown policy {name!r}; choose from {ALL_POLICY_NAMES}"
            )
    ordering = [p for p in policies if p in DEADLINE_POLICY_NAMES]
    if ordering and engine == "fast":
        raise ValueError(
            f"engine='fast' does not implement the policy-ordered ready "
            f"queue of {ordering}; deadline-aware policies run on the "
            "reference engine only (use engine='auto' or "
            "engine='reference')"
        )
    if ordering and stream is not None:
        raise ValueError(
            f"an open-system stream campaign cannot sweep the "
            f"deadline-aware policies {ordering}: streaming is "
            "fast-engine only and policy-ordered queues are "
            "reference-engine only"
        )
    if not seeds:
        raise ValueError("need at least one replication seed")
    if not loads:
        raise ValueError("need at least one load")
    for count, gap in loads:
        if count <= 0:
            raise ValueError("load count must be positive")
        if gap <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
    if not fault_plans:
        raise ValueError("need at least one fault-plan entry (None = clean)")
    plan_names = [p.name for p in fault_plans if p is not None]
    if len(plan_names) != len(set(plan_names)):
        raise ValueError("fault plan names must be unique within a campaign")
    if not power_configs:
        raise ValueError(
            "need at least one power entry (None = unconstrained)"
        )
    power_configs = tuple(normalize_power(p) for p in power_configs)
    if sum(1 for p in power_configs if p is None) > 1:
        raise ValueError(
            "only one unconstrained power entry (None, or a disabled "
            "PowerConfig) is allowed per campaign"
        )
    power_labels = [p.label for p in power_configs if p is not None]
    if len(power_labels) != len(set(power_labels)):
        raise ValueError(
            "power configuration labels must be unique within a campaign"
        )
    if engine not in SchedulerSimulation.ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from "
            f"{SchedulerSimulation.ENGINES}"
        )
    if engine == "fast" and (
        collect_metrics or validate or any(p is not None for p in fault_plans)
    ):
        # Fail the whole campaign up front instead of deep inside a
        # worker process on the first replication.
        raise ValueError(
            "engine='fast' is incompatible with collect_metrics, validate "
            "and fault plans; drop those options or use engine='reference'"
        )
    if stream is not None:
        if (
            collect_metrics
            or validate
            or any(p is not None for p in fault_plans)
            or engine == "reference"
        ):
            raise ValueError(
                "an open-system stream campaign is incompatible with "
                "collect_metrics, validate, fault plans and "
                "engine='reference': streaming runs hook-free on the "
                "fast engine.  Drop those options and read the windowed "
                "stream.* metrics from CampaignCell.observed instead."
            )
        from repro.sim.stream import ADMISSION_POLICIES

        if stream.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {stream.admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
    if dag is not None:
        if stream is not None:
            raise ValueError(
                "the dag and stream axes are mutually exclusive: "
                "task-graph runs are closed-batch on the reference "
                "engine, streaming is open-system on the fast engine"
            )
        if engine == "fast":
            raise ValueError(
                "engine='fast' does not implement precedence gating; "
                "DAG campaigns run on the reference engine (use "
                "engine='auto' or engine='reference')"
            )
        if not 0 < dag.tasks_min <= dag.tasks_max:
            raise ValueError("need 0 < tasks_min <= tasks_max")
        if not 0.0 <= dag.edge_density <= 1.0:
            raise ValueError("edge_density must be within [0, 1]")
        if dag.deadline_slack <= 0:
            raise ValueError("deadline_slack must be positive")
        if dag.criticality_levels < 1:
            raise ValueError("criticality_levels must be >= 1")

    if predictor is None:
        predictor = OraclePredictor(store)
    if energy_table is None:
        energy_table = EnergyTable()

    specs = [
        ReplicationSpec(
            policy=policy,
            seed=seed,
            count=count,
            mean_interarrival_cycles=gap,
            fault_plan=plan,
            engine=engine,
            stream=stream,
            dag=dag,
            power=pcfg,
        )
        for policy in policies
        for count, gap in loads
        for plan in fault_plans
        for pcfg in power_configs
        for seed in seeds
    ]

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(specs)))

    logger.info(
        "campaign: %d replications (%d policies x %d loads x %d plans "
        "x %d seeds), %d worker(s), metrics %s",
        len(specs), len(policies), len(loads), len(fault_plans), len(seeds),
        workers, "on" if collect_metrics else "off",
    )
    start = time.perf_counter()
    if progress is not None:
        progress(0, len(specs))
    if workers == 1 or len(specs) <= 1:
        _init_worker(store, predictor, energy_table, discipline,
                     collect_metrics, validate)
        replications = []
        for spec in specs:
            replications.append(_run_replication(spec))
            if progress is not None:
                progress(len(replications), len(specs))
    else:
        ctx = _pool_context()
        with ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(store, predictor, energy_table, discipline,
                      collect_metrics, validate),
        ) as pool:
            if progress is None:
                replications = pool.map(_run_replication, specs)
            else:
                replications = []
                for result in pool.imap(_run_replication, specs):
                    replications.append(result)
                    progress(len(replications), len(specs))
    wall_seconds = time.perf_counter() - start
    logger.info("campaign: finished in %.2fs", wall_seconds)

    powered = any(p is not None for p in power_configs)
    cells = []
    for policy in policies:
        for count, gap in loads:
            for plan in fault_plans:
                for pcfg in power_configs:
                    members = [
                        r
                        for r in replications
                        if r.spec.policy == policy
                        and r.spec.count == count
                        and r.spec.mean_interarrival_cycles == gap
                        # Value equality, not identity: the worker pool
                        # pickles specs, so the replication's plan and
                        # power config are round-tripped copies.  Both
                        # are frozen pure-data dataclasses, and sweep
                        # entries are validated unique, so equality is
                        # exact membership.
                        and r.spec.fault_plan == plan
                        and r.spec.power == pcfg
                    ]
                    metrics = {
                        name: _aggregate([m.metric(name) for m in members])
                        for name in CAMPAIGN_METRICS
                    }
                    # Registry scalars aggregate over the union of keys
                    # (missing keys default to 0.0, matching a
                    # never-incremented counter), so cells stay
                    # well-formed even across heterogeneous runs.
                    observed: Dict[str, MetricAggregate] = {}
                    if members and (
                        collect_metrics
                        or stream is not None
                        or dag is not None
                        or powered
                    ):
                        keys = sorted(
                            {key for m in members for key in m.observed}
                        )
                        observed = {
                            key: _aggregate(
                                [m.observed.get(key, 0.0) for m in members]
                            )
                            for key in keys
                        }
                    cells.append(
                        CampaignCell(
                            policy=policy,
                            count=count,
                            mean_interarrival_cycles=gap,
                            metrics=metrics,
                            n=len(members),
                            observed=observed,
                            faults=None if plan is None else plan.name,
                            engine=engine,
                            stream=(
                                None if stream is None else stream.process
                            ),
                            dag=dag is not None,
                            power=None if pcfg is None else pcfg.label,
                        )
                    )

    return CampaignResult(
        replications=tuple(replications),
        cells=tuple(cells),
        wall_seconds=wall_seconds,
        workers=workers,
    )
