"""Characterisation substrate: per-(benchmark, configuration) cache and
energy measurements (the SimpleScalar role), a persistent store, and the
ANN dataset builder.

Measurement is performed by the single-pass stack-distance engine
(:mod:`repro.cache.stackdist`); :mod:`repro.characterization.parallel`
fans suites out over a process pool with timing instrumentation, and the
store carries content-addressing metadata (:class:`StoreMeta`) so
on-disk caches are keyed by seed, design space and generator version.
"""

from .dataset import Dataset, DatasetSplit, build_dataset, expand_suite
from .explorer import (
    CHARACTERIZATION_ENGINES,
    GENERATOR_VERSION,
    BenchmarkCharacterization,
    ConfigResult,
    characterize_benchmark,
    characterize_suite,
)
from .instrumentation import SweepTiming, TaskTiming
from .parallel import SuiteSweepResult, characterize_suite_parallel
from .store import CharacterizationStore, StoreMeta, design_space_fingerprint
from .sweep import SweepPoint, sweep_instructions, sweep_working_set

__all__ = [
    "BenchmarkCharacterization",
    "CHARACTERIZATION_ENGINES",
    "CharacterizationStore",
    "ConfigResult",
    "Dataset",
    "DatasetSplit",
    "GENERATOR_VERSION",
    "StoreMeta",
    "SuiteSweepResult",
    "SweepPoint",
    "SweepTiming",
    "TaskTiming",
    "build_dataset",
    "characterize_benchmark",
    "characterize_suite",
    "characterize_suite_parallel",
    "design_space_fingerprint",
    "expand_suite",
    "sweep_instructions",
    "sweep_working_set",
]
