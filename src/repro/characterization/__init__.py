"""Characterisation substrate: per-(benchmark, configuration) cache and
energy measurements (the SimpleScalar role), a persistent store, and the
ANN dataset builder.
"""

from .dataset import Dataset, DatasetSplit, build_dataset, expand_suite
from .explorer import (
    BenchmarkCharacterization,
    ConfigResult,
    characterize_benchmark,
    characterize_suite,
)
from .store import CharacterizationStore
from .sweep import SweepPoint, sweep_instructions, sweep_working_set

__all__ = [
    "BenchmarkCharacterization",
    "CharacterizationStore",
    "SweepPoint",
    "ConfigResult",
    "Dataset",
    "DatasetSplit",
    "build_dataset",
    "characterize_benchmark",
    "characterize_suite",
    "expand_suite",
    "sweep_instructions",
    "sweep_working_set",
]
