"""ANN training-dataset construction.

The paper trains on "270 total inputs — 18 different cache-relevant
execution statistics for each of the 15 benchmarks", split 70/15/15.
Fifteen samples cannot meaningfully train a network, so (documented
substitution, DESIGN.md §5) the builder grows the suite with seeded
parameter-jittered *variants* of each benchmark family.  The paper's own
justification applies: "applications from similar application domains
have similar execution statistics" — the variants are the other members
of each benchmark's domain.

Each sample is (feature vector from the base-configuration profiling
counters) → (label: best cache size, the cache size of the benchmark's
true lowest-energy configuration).  Splitting is *family-aware*: all
variants of a family land in the same split so the test-set score
measures generalisation to unseen programs, not leakage between near
-identical variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import DESIGN_SPACE, CacheConfig
from repro.energy.model import EnergyModel
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.counters import ANN_SELECTED_FEATURES

from .explorer import characterize_benchmark
from .store import CharacterizationStore

__all__ = ["Dataset", "DatasetSplit", "build_dataset", "expand_suite"]


@dataclass(frozen=True)
class Dataset:
    """Feature matrix, labels and provenance for ANN training.

    Attributes
    ----------
    features:
        ``(n_samples, n_features)`` float matrix of raw counter values.
    labels_kb:
        Best cache size in KB for each sample.
    names:
        Benchmark (variant) name per sample.
    families:
        Family name per sample (for family-aware splitting).
    feature_names:
        Counter names, column order of ``features``.
    """

    features: np.ndarray
    labels_kb: np.ndarray
    names: Tuple[str, ...]
    families: Tuple[str, ...]
    feature_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        n = self.features.shape[0]
        if not (len(self.labels_kb) == len(self.names) == len(self.families) == n):
            raise ValueError("dataset arrays have inconsistent lengths")
        if self.features.shape[1] != len(self.feature_names):
            raise ValueError("feature matrix width != number of feature names")

    def __len__(self) -> int:
        return self.features.shape[0]

    def take(self, indices: Sequence[int]) -> "Dataset":
        """Row subset preserving all provenance."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(
            features=self.features[idx],
            labels_kb=self.labels_kb[idx],
            names=tuple(self.names[i] for i in idx),
            families=tuple(self.families[i] for i in idx),
            feature_names=self.feature_names,
        )

    def split(
        self,
        train: float = 0.70,
        val: float = 0.15,
        seed: int = 0,
        by_family: bool = True,
    ) -> "DatasetSplit":
        """70/15/15 split (paper §IV.D), family-aware by default."""
        if train <= 0 or val < 0 or train + val >= 1.0:
            raise ValueError("fractions must satisfy 0 < train, train+val < 1")
        rng = np.random.default_rng(seed)
        if by_family:
            families = sorted(set(self.families))
            rng.shuffle(families)
            n_train = max(1, int(round(len(families) * train)))
            n_val = max(1, int(round(len(families) * val)))
            train_fams = set(families[:n_train])
            val_fams = set(families[n_train : n_train + n_val])
            groups = {"train": [], "val": [], "test": []}
            for i, family in enumerate(self.families):
                if family in train_fams:
                    groups["train"].append(i)
                elif family in val_fams:
                    groups["val"].append(i)
                else:
                    groups["test"].append(i)
        else:
            order = rng.permutation(len(self))
            n_train = int(round(len(self) * train))
            n_val = int(round(len(self) * val))
            groups = {
                "train": order[:n_train].tolist(),
                "val": order[n_train : n_train + n_val].tolist(),
                "test": order[n_train + n_val :].tolist(),
            }
        return DatasetSplit(
            train=self.take(groups["train"]),
            val=self.take(groups["val"]),
            test=self.take(groups["test"]),
        )


@dataclass(frozen=True)
class DatasetSplit:
    """Train/validation/test partition of a :class:`Dataset`."""

    train: Dataset
    val: Dataset
    test: Dataset


def expand_suite(
    specs: Sequence[BenchmarkSpec],
    variants_per_family: int = 12,
    *,
    jitter: float = 0.25,
) -> List[BenchmarkSpec]:
    """Grow a suite with jittered variants (variant 0 = the original)."""
    if variants_per_family < 1:
        raise ValueError("variants_per_family must be at least 1")
    expanded: List[BenchmarkSpec] = []
    for spec in specs:
        for index in range(variants_per_family):
            expanded.append(spec.variant(index, jitter=jitter))
    return expanded


def build_dataset(
    specs: Sequence[BenchmarkSpec],
    *,
    variants_per_family: int = 12,
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    feature_names: Sequence[str] = ANN_SELECTED_FEATURES,
    jitter: float = 0.25,
    seed: int = 0,
    store: Optional[CharacterizationStore] = None,
) -> Tuple[Dataset, CharacterizationStore]:
    """Characterise a (possibly expanded) suite into an ANN dataset.

    Returns the dataset and the characterisation store backing it (so
    callers can reuse or persist the expensive measurements).  If
    ``store`` is given, benchmarks already present are not re-simulated.
    """
    expanded = expand_suite(specs, variants_per_family, jitter=jitter)
    out_store = store if store is not None else CharacterizationStore()

    families: List[str] = []
    names: List[str] = []
    rows: List[np.ndarray] = []
    labels: List[int] = []
    for spec in expanded:
        if spec.name not in out_store:
            out_store.add(
                characterize_benchmark(spec, configs, energy_model, seed=seed)
            )
        char = out_store.get(spec.name)
        rows.append(char.counters.as_vector(feature_names))
        labels.append(char.best_size_kb())
        names.append(spec.name)
        families.append(spec.family)

    dataset = Dataset(
        features=np.vstack(rows),
        labels_kb=np.array(labels, dtype=float),
        names=tuple(names),
        families=tuple(families),
        feature_names=tuple(feature_names),
    )
    return dataset, out_store
