"""Design-space characterisation (the SimpleScalar role).

The paper "used SimpleScalar to record the benchmarks' cache accesses and
miss rates for every cache configuration" offline, and drove the MATLAB
scheduler simulation from those numbers.  This module plays the same
role: each benchmark's trace is run through the cache simulator once per
configuration, the Figure 4 energy model is evaluated, and everything is
collected into a :class:`BenchmarkCharacterization`.

The scheduler simulation is then a pure table-driven discrete-event
simulation, exactly like the paper's: physical executions (profiling,
tuning, normal runs) *charge* the energies and cycles recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.cache.cache import Cache, simulate_trace
from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, CacheConfig
from repro.cache.stats import CacheStats
from repro.energy.model import EnergyModel, ExecutionEstimate
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.counters import HardwareCounters, collect_counters

__all__ = [
    "ConfigResult",
    "BenchmarkCharacterization",
    "characterize_benchmark",
    "characterize_suite",
]


@dataclass(frozen=True)
class ConfigResult:
    """Cache statistics and energy of one (benchmark, configuration)."""

    config: CacheConfig
    stats: CacheStats
    estimate: ExecutionEstimate

    @property
    def total_energy_nj(self) -> float:
        """Total (static + dynamic) energy of the execution."""
        return self.estimate.total_energy_nj

    @property
    def total_cycles(self) -> int:
        """Execution cycles under this configuration."""
        return self.estimate.total_cycles


@dataclass(frozen=True)
class BenchmarkCharacterization:
    """Everything measured about one benchmark across the design space."""

    benchmark: str
    counters: HardwareCounters
    results: Mapping[CacheConfig, ConfigResult]

    def result(self, config: CacheConfig) -> ConfigResult:
        """The measurement for one configuration."""
        try:
            return self.results[config]
        except KeyError:
            raise KeyError(
                f"{self.benchmark} was not characterised for {config.name}"
            ) from None

    def configs(self) -> Tuple[CacheConfig, ...]:
        """All characterised configurations, canonical order."""
        return tuple(sorted(self.results))

    def best_config(
        self, configs: Optional[Iterable[CacheConfig]] = None
    ) -> CacheConfig:
        """Lowest-total-energy configuration (optionally within a subset)."""
        candidates = tuple(configs) if configs is not None else self.configs()
        if not candidates:
            raise ValueError("no candidate configurations")
        return min(candidates, key=lambda c: (self.result(c).total_energy_nj, c))

    def best_config_for_size(self, size_kb: int) -> CacheConfig:
        """Lowest-energy configuration among one cache size."""
        candidates = [c for c in self.configs() if c.size_kb == size_kb]
        if not candidates:
            raise ValueError(f"no characterised configuration of {size_kb} KB")
        return self.best_config(candidates)

    def best_size_kb(self) -> int:
        """Cache size of the overall best configuration.

        This is the ANN's training label: "predict the best core (i.e.,
        best cache size)".
        """
        return self.best_config().size_kb

    def energy_degradation(self, config: CacheConfig) -> float:
        """Relative extra energy of ``config`` over the best config."""
        best = self.result(self.best_config()).total_energy_nj
        if best == 0:
            return 0.0
        return self.result(config).total_energy_nj / best - 1.0


def characterize_benchmark(
    spec: BenchmarkSpec,
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    *,
    seed: int = 0,
    write_back: bool = False,
) -> BenchmarkCharacterization:
    """Run one benchmark through every configuration.

    The trace is generated once per benchmark (same dynamic execution on
    every configuration, as on real hardware) and replayed through a cold
    cache per configuration.

    ``write_back=True`` characterises write-back caches with the
    reference per-access model (several times slower than the default
    write-through fast path); pair it with an energy model constructed
    with ``include_writeback_energy=True``.
    """
    if not configs:
        raise ValueError("need at least one configuration")
    model = energy_model if energy_model is not None else EnergyModel()
    trace = spec.generate_trace(seed=seed)

    def run_config(config: CacheConfig):
        if write_back:
            cache = Cache(config, policy="lru", write_back=True)
            return cache.run_trace(trace.addresses.tolist(),
                                   trace.writes.tolist())
        return simulate_trace(trace.addresses, config, writes=trace.writes)

    results: Dict[CacheConfig, ConfigResult] = {}
    for config in configs:
        stats = run_config(config)
        estimate = model.estimate(config, spec.instructions, stats)
        results[config] = ConfigResult(config=config, stats=stats, estimate=estimate)

    if BASE_CONFIG in results:
        base_stats = results[BASE_CONFIG].stats
        base_cycles = results[BASE_CONFIG].total_cycles
    else:
        base_stats = run_config(BASE_CONFIG)
        base_cycles = model.estimate(BASE_CONFIG, spec.instructions, base_stats).total_cycles
    counters = collect_counters(spec, trace, base_stats, base_cycles)

    return BenchmarkCharacterization(
        benchmark=spec.name, counters=counters, results=results
    )


def characterize_suite(
    specs: Sequence[BenchmarkSpec],
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    *,
    seed: int = 0,
) -> Dict[str, BenchmarkCharacterization]:
    """Characterise a whole suite; returns name → characterisation."""
    out: Dict[str, BenchmarkCharacterization] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate benchmark name: {spec.name}")
        out[spec.name] = characterize_benchmark(
            spec, configs, energy_model, seed=seed
        )
    return out
