"""Design-space characterisation (the SimpleScalar role).

The paper "used SimpleScalar to record the benchmarks' cache accesses and
miss rates for every cache configuration" offline, and drove the MATLAB
scheduler simulation from those numbers.  This module plays the same
role: each benchmark's trace is measured by the single-pass
stack-distance engine (:mod:`repro.cache.stackdist`), which yields the
exact LRU statistics of every design-space configuration from one
traversal per set partition; the Figure 4 energy model is evaluated,
and everything is collected into a :class:`BenchmarkCharacterization`.

The scheduler simulation is then a pure table-driven discrete-event
simulation, exactly like the paper's: physical executions (profiling,
tuning, normal runs) *charge* the energies and cycles recorded here.

``engine="legacy"`` selects the seed per-configuration replay
(:func:`repro.cache.cache.simulate_trace_per_config`); it produces
identical results and exists as the baseline for the
characterisation-speed benchmark and as a cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.cache.cache import Cache, simulate_trace, simulate_trace_per_config
from repro.cache.config import BASE_CONFIG, DESIGN_SPACE, CacheConfig
from repro.cache.stackdist import simulate_many
from repro.cache.stats import CacheStats
from repro.energy.model import EnergyModel, ExecutionEstimate
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.counters import HardwareCounters, collect_counters

__all__ = [
    "ConfigResult",
    "BenchmarkCharacterization",
    "CHARACTERIZATION_ENGINES",
    "GENERATOR_VERSION",
    "characterize_benchmark",
    "characterize_suite",
]

#: Version of the characterisation pipeline (trace generation + cache
#: measurement semantics).  Bump whenever either changes in a way that
#: invalidates previously persisted characterisations; on-disk caches
#: are keyed by it (see :mod:`repro.experiment`).
GENERATOR_VERSION = "2"

#: Selectable cache-measurement engines.
CHARACTERIZATION_ENGINES = ("stackdist", "legacy")


@dataclass(frozen=True)
class ConfigResult:
    """Cache statistics and energy of one (benchmark, configuration)."""

    config: CacheConfig
    stats: CacheStats
    estimate: ExecutionEstimate

    @property
    def total_energy_nj(self) -> float:
        """Total (static + dynamic) energy of the execution."""
        return self.estimate.total_energy_nj

    @property
    def total_cycles(self) -> int:
        """Execution cycles under this configuration."""
        return self.estimate.total_cycles


@dataclass(frozen=True)
class BenchmarkCharacterization:
    """Everything measured about one benchmark across the design space."""

    benchmark: str
    counters: HardwareCounters
    results: Mapping[CacheConfig, ConfigResult]

    def result(self, config: CacheConfig) -> ConfigResult:
        """The measurement for one configuration."""
        try:
            return self.results[config]
        except KeyError:
            raise KeyError(
                f"{self.benchmark} was not characterised for {config.name}"
            ) from None

    def configs(self) -> Tuple[CacheConfig, ...]:
        """All characterised configurations, canonical order."""
        return tuple(sorted(self.results))

    def best_config(
        self, configs: Optional[Iterable[CacheConfig]] = None
    ) -> CacheConfig:
        """Lowest-total-energy configuration (optionally within a subset)."""
        candidates = tuple(configs) if configs is not None else self.configs()
        if not candidates:
            raise ValueError("no candidate configurations")
        return min(candidates, key=lambda c: (self.result(c).total_energy_nj, c))

    def best_config_for_size(self, size_kb: int) -> CacheConfig:
        """Lowest-energy configuration among one cache size."""
        candidates = [c for c in self.configs() if c.size_kb == size_kb]
        if not candidates:
            raise ValueError(f"no characterised configuration of {size_kb} KB")
        return self.best_config(candidates)

    def best_size_kb(self) -> int:
        """Cache size of the overall best configuration.

        This is the ANN's training label: "predict the best core (i.e.,
        best cache size)".
        """
        return self.best_config().size_kb

    def energy_degradation(self, config: CacheConfig) -> float:
        """Relative extra energy of ``config`` over the best config."""
        best = self.result(self.best_config()).total_energy_nj
        if best == 0:
            return 0.0
        return self.result(config).total_energy_nj / best - 1.0


def characterize_benchmark(
    spec: BenchmarkSpec,
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    *,
    seed: int = 0,
    write_back: bool = False,
    engine: str = "stackdist",
) -> BenchmarkCharacterization:
    """Run one benchmark through every configuration.

    The trace is generated once per benchmark (same dynamic execution on
    every configuration, as on real hardware) and measured cold per
    configuration.  With the default ``stackdist`` engine all
    configurations sharing a set partition are served by one pass over
    the trace; ``engine="legacy"`` replays the trace once per
    configuration like the seed implementation (identical results).

    ``write_back=True`` characterises write-back caches with the
    reference per-access model (several times slower than the default
    write-through fast path); pair it with an energy model constructed
    with ``include_writeback_energy=True``.
    """
    if not configs:
        raise ValueError("need at least one configuration")
    if engine not in CHARACTERIZATION_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {CHARACTERIZATION_ENGINES}"
        )
    model = energy_model if energy_model is not None else EnergyModel()
    trace = spec.generate_trace(seed=seed)

    # Traces stay int64 numpy arrays end-to-end; every path below
    # accepts them directly.
    if write_back:
        stats_by_config = {}
        for config in configs:
            cache = Cache(config, policy="lru", write_back=True)
            stats_by_config[config] = cache.run_trace(
                trace.addresses, trace.writes
            )
    elif engine == "legacy":
        stats_by_config = {
            config: simulate_trace_per_config(
                trace.addresses, config, writes=trace.writes
            )
            for config in configs
        }
    else:
        stats_by_config = simulate_many(
            trace.addresses, configs, writes=trace.writes
        )

    results: Dict[CacheConfig, ConfigResult] = {}
    for config in configs:
        stats = stats_by_config[config]
        estimate = model.estimate(config, spec.instructions, stats)
        results[config] = ConfigResult(config=config, stats=stats, estimate=estimate)

    if BASE_CONFIG in results:
        base_stats = results[BASE_CONFIG].stats
        base_cycles = results[BASE_CONFIG].total_cycles
    else:
        if write_back:
            base_cache = Cache(BASE_CONFIG, policy="lru", write_back=True)
            base_stats = base_cache.run_trace(trace.addresses, trace.writes)
        else:
            base_stats = simulate_trace(
                trace.addresses, BASE_CONFIG, writes=trace.writes
            )
        base_cycles = model.estimate(BASE_CONFIG, spec.instructions, base_stats).total_cycles
    counters = collect_counters(spec, trace, base_stats, base_cycles)

    return BenchmarkCharacterization(
        benchmark=spec.name, counters=counters, results=results
    )


def characterize_suite(
    specs: Sequence[BenchmarkSpec],
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    *,
    seed: int = 0,
    engine: str = "stackdist",
    workers: Optional[int] = 1,
) -> Dict[str, BenchmarkCharacterization]:
    """Characterise a whole suite; returns name → characterisation.

    ``workers`` fans the per-benchmark characterisations out over a
    process pool (``None`` = one worker per CPU); results are identical
    to the serial sweep because every task derives its randomness from
    the same ``(benchmark name, seed)`` pair.  See
    :mod:`repro.characterization.parallel` for the sweep machinery and
    its timing instrumentation.
    """
    if workers is None or workers != 1:
        from .parallel import characterize_suite_parallel

        result = characterize_suite_parallel(
            specs, configs, energy_model,
            seed=seed, engine=engine, workers=workers,
        )
        return dict(result.characterizations)
    out: Dict[str, BenchmarkCharacterization] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate benchmark name: {spec.name}")
        out[spec.name] = characterize_benchmark(
            spec, configs, energy_model, seed=seed, engine=engine
        )
    return out
