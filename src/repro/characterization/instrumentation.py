"""Timing instrumentation for characterisation sweeps.

The characterisation engine is the expensive offline stage of the
reproduction (the paper's SimpleScalar runs), so the sweep machinery
records how long each benchmark took and derives the throughput numbers
the performance documentation and the speed benchmark report:
*traces per second* (benchmarks characterised / wall time),
*accesses per second* (trace elements measured / wall time) and
*replays per second* (benchmark × configuration pairs / wall time).

:meth:`SweepTiming.record_into` folds a finished sweep into a
:class:`~repro.obs.metrics.MetricsRegistry`, so sweep throughput lives
in the same snapshot as simulation and campaign metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import for typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["TaskTiming", "SweepTiming"]


@dataclass(frozen=True)
class TaskTiming:
    """Wall time of one benchmark's characterisation."""

    #: Benchmark name.
    name: str
    #: Wall-clock seconds the characterisation took (in its worker).
    seconds: float
    #: Number of trace accesses measured.
    accesses: int
    #: Number of configurations characterised.
    configs: int


@dataclass(frozen=True)
class SweepTiming:
    """Aggregate timing of a suite sweep."""

    #: Per-benchmark timings, in suite order.
    tasks: Tuple[TaskTiming, ...]
    #: Wall-clock seconds of the whole sweep (fan-out + join included).
    wall_seconds: float
    #: Number of worker processes used (1 = serial).
    workers: int

    @property
    def total_accesses(self) -> int:
        """Trace accesses measured across the suite."""
        return sum(t.accesses for t in self.tasks)

    @property
    def total_task_seconds(self) -> float:
        """Sum of per-task seconds (CPU-ish time; > wall when parallel)."""
        return sum(t.seconds for t in self.tasks)

    @property
    def traces_per_second(self) -> float:
        """Benchmarks characterised per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.tasks) / self.wall_seconds

    @property
    def accesses_per_second(self) -> float:
        """Trace accesses measured per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_accesses / self.wall_seconds

    @property
    def replays_per_second(self) -> float:
        """(benchmark, configuration) pairs characterised per wall second.

        The natural unit for comparing against the per-configuration
        replay baseline, which pays one trace traversal per pair.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return sum(t.configs for t in self.tasks) / self.wall_seconds

    def summary(self) -> str:
        """One-line human-readable throughput summary."""
        return (
            f"{len(self.tasks)} benchmarks in {self.wall_seconds:.3f}s "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}): "
            f"{self.traces_per_second:.1f} traces/s, "
            f"{self.accesses_per_second:,.0f} accesses/s, "
            f"{self.replays_per_second:.1f} config-replays/s"
        )

    def record_into(self, registry: "MetricsRegistry") -> None:
        """Report this sweep into a metrics registry.

        Counters accumulate across sweeps (``sweep.benchmarks``,
        ``sweep.accesses``, ``sweep.config_replays``); per-task wall
        times feed the ``sweep.task_seconds`` histogram; the gauges
        carry the latest sweep's wall time, worker count and derived
        throughputs.
        """
        registry.counter("sweep.benchmarks").inc(len(self.tasks))
        registry.counter("sweep.accesses").inc(self.total_accesses)
        registry.counter("sweep.config_replays").inc(
            sum(t.configs for t in self.tasks)
        )
        for task in self.tasks:
            registry.histogram("sweep.task_seconds").observe(task.seconds)
        registry.gauge("sweep.wall_seconds").set(self.wall_seconds)
        registry.gauge("sweep.workers").set(self.workers)
        registry.gauge("sweep.traces_per_second").set(self.traces_per_second)
        registry.gauge("sweep.accesses_per_second").set(
            self.accesses_per_second
        )
        registry.gauge("sweep.replays_per_second").set(
            self.replays_per_second
        )
