"""Process-parallel suite characterisation.

Characterising a suite is embarrassingly parallel across benchmarks:
every task generates its own trace from the deterministic
``(benchmark name, seed)`` pair (:func:`repro.utils.rng.stable_seed`),
so the fan-out is bit-for-bit equivalent to the serial sweep regardless
of scheduling order or worker count.  Workers receive the full task
payload (spec, configurations, energy model, seed, engine) and return a
finished :class:`~repro.characterization.explorer.BenchmarkCharacterization`
plus its :class:`~repro.characterization.instrumentation.TaskTiming`.

The ``fork`` start method is preferred when the platform offers it
(cheap, inherits the imported modules); otherwise the default start
method is used — everything in the payload is picklable either way.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cache.config import DESIGN_SPACE, CacheConfig
from repro.energy.model import EnergyModel
from repro.workloads.benchmark import BenchmarkSpec

from .explorer import BenchmarkCharacterization, characterize_benchmark
from .instrumentation import SweepTiming, TaskTiming

logger = logging.getLogger(__name__)

__all__ = ["SuiteSweepResult", "characterize_suite_parallel"]


@dataclass(frozen=True)
class SuiteSweepResult:
    """A characterised suite plus the sweep's timing instrumentation."""

    #: name -> characterisation, in suite order.
    characterizations: Dict[str, BenchmarkCharacterization]
    #: Wall-time and throughput measurements of the sweep.
    timing: SweepTiming


def _run_task(
    payload: Tuple[BenchmarkSpec, Tuple[CacheConfig, ...], Optional[EnergyModel], int, str],
) -> Tuple[str, BenchmarkCharacterization, TaskTiming]:
    """Characterise one benchmark (executed inside a worker process)."""
    spec, configs, energy_model, seed, engine = payload
    start = time.perf_counter()
    characterization = characterize_benchmark(
        spec, configs, energy_model, seed=seed, engine=engine
    )
    seconds = time.perf_counter() - start
    timing = TaskTiming(
        name=spec.name,
        seconds=seconds,
        accesses=characterization.counters.mem_accesses,
        configs=len(characterization.results),
    )
    return spec.name, characterization, timing


def _pool_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def characterize_suite_parallel(
    specs: Sequence[BenchmarkSpec],
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    *,
    seed: int = 0,
    engine: str = "stackdist",
    workers: Optional[int] = None,
) -> SuiteSweepResult:
    """Characterise a suite over a process pool, with timing.

    Parameters
    ----------
    specs:
        Benchmarks to characterise; names must be unique.
    configs, energy_model, seed, engine:
        Forwarded to :func:`characterize_benchmark` unchanged.
    workers:
        Worker processes; ``None`` means one per CPU.  Clamped to the
        number of benchmarks; ``<= 1`` runs serially in-process (no pool
        overhead) but still records timing.

    Results are identical to the serial
    :func:`~repro.characterization.explorer.characterize_suite` because
    each task's randomness derives only from ``(name, seed)``.
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate benchmark name: {dupes[0]}")

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(specs) or 1))

    payloads = [
        (spec, tuple(configs), energy_model, seed, engine) for spec in specs
    ]

    logger.info(
        "sweep: characterising %d benchmarks over %d worker(s) "
        "(engine=%s, seed=%d)",
        len(specs), workers, engine, seed,
    )
    start = time.perf_counter()
    if workers == 1 or len(specs) <= 1:
        outcomes = [_run_task(payload) for payload in payloads]
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            outcomes = pool.map(_run_task, payloads)
    wall_seconds = time.perf_counter() - start

    characterizations: Dict[str, BenchmarkCharacterization] = {}
    tasks = []
    for name, characterization, timing in outcomes:
        characterizations[name] = characterization
        tasks.append(timing)
    timing = SweepTiming(
        tasks=tuple(tasks), wall_seconds=wall_seconds, workers=workers
    )
    logger.info("sweep: %s", timing.summary())
    return SuiteSweepResult(characterizations=characterizations, timing=timing)
