"""Persistent characterisation store.

Characterising a large suite (especially the ANN dataset's benchmark
variants) is the expensive part of the reproduction, so the results can
be saved to and loaded from JSON.  The store is the single source the
scheduler simulation and the ANN dataset builder read from.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.energy.model import EnergyBreakdown, ExecutionEstimate
from repro.workloads.counters import HardwareCounters

from .explorer import BenchmarkCharacterization, ConfigResult

__all__ = ["CharacterizationStore"]


def _stats_to_dict(stats: CacheStats) -> dict:
    return dict(vars(stats))


def _stats_from_dict(data: Mapping) -> CacheStats:
    return CacheStats(**data)


def _estimate_to_dict(estimate: ExecutionEstimate) -> dict:
    return {
        "config": estimate.config.name,
        "instructions": estimate.instructions,
        "total_cycles": estimate.total_cycles,
        "miss_cycles": estimate.miss_cycles,
        "static_nj": estimate.energy.static_nj,
        "dynamic_nj": estimate.energy.dynamic_nj,
    }


def _estimate_from_dict(data: Mapping) -> ExecutionEstimate:
    return ExecutionEstimate(
        config=CacheConfig.from_name(data["config"]),
        instructions=data["instructions"],
        total_cycles=data["total_cycles"],
        miss_cycles=data["miss_cycles"],
        energy=EnergyBreakdown(
            static_nj=data["static_nj"], dynamic_nj=data["dynamic_nj"]
        ),
    )


class CharacterizationStore:
    """Mapping of benchmark name → :class:`BenchmarkCharacterization`."""

    def __init__(
        self,
        characterizations: Optional[
            Mapping[str, BenchmarkCharacterization]
        ] = None,
    ) -> None:
        self._data: Dict[str, BenchmarkCharacterization] = dict(
            characterizations or {}
        )

    # -- mapping interface ------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def names(self) -> Sequence[str]:
        """All benchmark names in insertion order."""
        return list(self._data)

    def add(self, characterization: BenchmarkCharacterization) -> None:
        """Insert one characterisation (replacing any previous one)."""
        self._data[characterization.benchmark] = characterization

    def get(self, name: str) -> BenchmarkCharacterization:
        """Characterisation for one benchmark."""
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(f"benchmark {name!r} not in store") from None

    # -- convenience lookups used by the scheduler -------------------------

    def estimate(self, name: str, config: CacheConfig) -> ExecutionEstimate:
        """Cycles/energy of ``name`` under ``config``."""
        return self.get(name).result(config).estimate

    def best_config(self, name: str) -> CacheConfig:
        """True lowest-energy configuration of a benchmark."""
        return self.get(name).best_config()

    def best_size_kb(self, name: str) -> int:
        """Cache size of the benchmark's true best configuration."""
        return self.get(name).best_size_kb()

    def counters(self, name: str) -> HardwareCounters:
        """Base-configuration profiling counters of a benchmark."""
        return self.get(name).counters

    # -- persistence -------------------------------------------------------

    def to_json(self, path: Union[str, Path]) -> None:
        """Serialise the whole store to a JSON file."""
        blob = {}
        for name, char in self._data.items():
            blob[name] = {
                "counters": asdict(char.counters),
                "results": {
                    config.name: {
                        "stats": _stats_to_dict(result.stats),
                        "estimate": _estimate_to_dict(result.estimate),
                    }
                    for config, result in char.results.items()
                },
            }
        Path(path).write_text(json.dumps(blob))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CharacterizationStore":
        """Load a store previously saved with :meth:`to_json`."""
        blob = json.loads(Path(path).read_text())
        store = cls()
        for name, entry in blob.items():
            results = {}
            for config_name, payload in entry["results"].items():
                config = CacheConfig.from_name(config_name)
                results[config] = ConfigResult(
                    config=config,
                    stats=_stats_from_dict(payload["stats"]),
                    estimate=_estimate_from_dict(payload["estimate"]),
                )
            store.add(
                BenchmarkCharacterization(
                    benchmark=name,
                    counters=HardwareCounters(**entry["counters"]),
                    results=results,
                )
            )
        return store

    def subset(self, names: Iterable[str]) -> "CharacterizationStore":
        """A new store restricted to the given benchmark names."""
        return CharacterizationStore(
            {name: self.get(name) for name in names}
        )
