"""Persistent characterisation store.

Characterising a large suite (especially the ANN dataset's benchmark
variants) is the expensive part of the reproduction, so the results can
be saved to and loaded from JSON.  The store is the single source the
scheduler simulation and the ANN dataset builder read from.

On-disk stores are *content-addressed*: a :class:`StoreMeta` records the
seed, a fingerprint of the characterised design space, the generator
version and an optional variant tag, and its :meth:`StoreMeta.cache_key`
is embedded in the cache filename by :mod:`repro.experiment`.  A store
characterised under one seed can therefore never be served for another,
and bumping :data:`~repro.characterization.explorer.GENERATOR_VERSION`
invalidates every stale cache at once.  Stores saved by older versions
of this module (flat JSON, no metadata) still load, with ``meta`` left
``None`` so callers treat them as unverifiable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.cache.config import CacheConfig
from repro.cache.stats import CacheStats
from repro.energy.model import EnergyBreakdown, ExecutionEstimate
from repro.workloads.counters import HardwareCounters

from .explorer import GENERATOR_VERSION, BenchmarkCharacterization, ConfigResult

__all__ = ["CharacterizationStore", "StoreMeta", "design_space_fingerprint"]

#: Version of the on-disk JSON layout (not of the measurements; that is
#: :data:`~repro.characterization.explorer.GENERATOR_VERSION`).
STORE_FORMAT = 2


def design_space_fingerprint(configs: Iterable[CacheConfig]) -> str:
    """Stable short hash of a set of configurations.

    Order-insensitive: the fingerprint identifies *which* configurations
    a store covers, not the order they were characterised in.
    """
    names = ",".join(sorted(config.name for config in configs))
    return hashlib.blake2s(names.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class StoreMeta:
    """Identity of a characterisation: what produced its numbers.

    Two stores with equal metadata are interchangeable — the
    characterisation pipeline is deterministic in (seed, design space,
    generator version, variant).
    """

    #: Seed the traces were generated from.
    seed: int
    #: :func:`design_space_fingerprint` of the characterised configs.
    configs_fingerprint: str
    #: Pipeline version the store was produced by.
    generator_version: str = GENERATOR_VERSION
    #: Free-form tag distinguishing store flavours sharing a seed and
    #: design space (e.g. the dataset store's variants-per-family).
    variant: str = ""

    def cache_key(self) -> str:
        """Short content hash used in on-disk cache filenames."""
        blob = "|".join(
            (
                str(self.seed),
                self.configs_fingerprint,
                self.generator_version,
                self.variant,
            )
        )
        return hashlib.blake2s(blob.encode("utf-8"), digest_size=8).hexdigest()


def _stats_to_dict(stats: CacheStats) -> dict:
    return dict(vars(stats))


def _stats_from_dict(data: Mapping) -> CacheStats:
    return CacheStats(**data)


def _estimate_to_dict(estimate: ExecutionEstimate) -> dict:
    return {
        "config": estimate.config.name,
        "instructions": estimate.instructions,
        "total_cycles": estimate.total_cycles,
        "miss_cycles": estimate.miss_cycles,
        "static_nj": estimate.energy.static_nj,
        "dynamic_nj": estimate.energy.dynamic_nj,
    }


def _estimate_from_dict(data: Mapping) -> ExecutionEstimate:
    return ExecutionEstimate(
        config=CacheConfig.from_name(data["config"]),
        instructions=data["instructions"],
        total_cycles=data["total_cycles"],
        miss_cycles=data["miss_cycles"],
        energy=EnergyBreakdown(
            static_nj=data["static_nj"], dynamic_nj=data["dynamic_nj"]
        ),
    )


class CharacterizationStore:
    """Mapping of benchmark name → :class:`BenchmarkCharacterization`.

    ``meta`` identifies what produced the measurements (see
    :class:`StoreMeta`); it is ``None`` for ad-hoc stores and for stores
    loaded from legacy JSON files that predate the metadata.
    """

    def __init__(
        self,
        characterizations: Optional[
            Mapping[str, BenchmarkCharacterization]
        ] = None,
        *,
        meta: Optional[StoreMeta] = None,
    ) -> None:
        self._data: Dict[str, BenchmarkCharacterization] = dict(
            characterizations or {}
        )
        self.meta = meta

    # -- mapping interface ------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def names(self) -> Sequence[str]:
        """All benchmark names in insertion order."""
        return list(self._data)

    def add(self, characterization: BenchmarkCharacterization) -> None:
        """Insert one characterisation (replacing any previous one)."""
        self._data[characterization.benchmark] = characterization

    def get(self, name: str) -> BenchmarkCharacterization:
        """Characterisation for one benchmark."""
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(f"benchmark {name!r} not in store") from None

    # -- convenience lookups used by the scheduler -------------------------

    def estimate(self, name: str, config: CacheConfig) -> ExecutionEstimate:
        """Cycles/energy of ``name`` under ``config``."""
        return self.get(name).result(config).estimate

    def best_config(self, name: str) -> CacheConfig:
        """True lowest-energy configuration of a benchmark."""
        return self.get(name).best_config()

    def best_size_kb(self, name: str) -> int:
        """Cache size of the benchmark's true best configuration."""
        return self.get(name).best_size_kb()

    def counters(self, name: str) -> HardwareCounters:
        """Base-configuration profiling counters of a benchmark."""
        return self.get(name).counters

    # -- persistence -------------------------------------------------------

    def to_json(self, path: Union[str, Path]) -> None:
        """Serialise the whole store (and its metadata) to a JSON file."""
        benchmarks = {}
        for name, char in self._data.items():
            benchmarks[name] = {
                "counters": asdict(char.counters),
                "results": {
                    config.name: {
                        "stats": _stats_to_dict(result.stats),
                        "estimate": _estimate_to_dict(result.estimate),
                    }
                    for config, result in char.results.items()
                },
            }
        blob = {
            "format": STORE_FORMAT,
            "meta": asdict(self.meta) if self.meta is not None else None,
            "benchmarks": benchmarks,
        }
        Path(path).write_text(json.dumps(blob))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CharacterizationStore":
        """Load a store previously saved with :meth:`to_json`.

        Legacy flat files (pre-metadata) load with ``meta = None``.
        """
        blob = json.loads(Path(path).read_text())
        if isinstance(blob, dict) and blob.get("format") == STORE_FORMAT:
            meta_blob = blob.get("meta")
            meta = StoreMeta(**meta_blob) if meta_blob is not None else None
            benchmarks = blob["benchmarks"]
        else:  # legacy flat {name: entry} layout
            meta = None
            benchmarks = blob
        store = cls(meta=meta)
        for name, entry in benchmarks.items():
            results = {}
            for config_name, payload in entry["results"].items():
                config = CacheConfig.from_name(config_name)
                results[config] = ConfigResult(
                    config=config,
                    stats=_stats_from_dict(payload["stats"]),
                    estimate=_estimate_from_dict(payload["estimate"]),
                )
            store.add(
                BenchmarkCharacterization(
                    benchmark=name,
                    counters=HardwareCounters(**entry["counters"]),
                    results=results,
                )
            )
        return store

    def subset(self, names: Iterable[str]) -> "CharacterizationStore":
        """A new store restricted to the given benchmark names."""
        return CharacterizationStore(
            {name: self.get(name) for name in names}, meta=self.meta
        )
