"""Benchmark parameter sweeps.

Utilities for studying how a benchmark's best configuration moves as
its parameters change — the analysis used to design the EEMBC-analogue
suite (and the kind of exploration §II's design-space papers automate):

* :func:`sweep_working_set` scales a benchmark's memory regions and
  re-characterises at each scale, exposing the working-set size at
  which the best cache size transitions;
* :func:`sweep_instructions` scales the dynamic instruction count,
  showing which conclusions are length-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.cache.config import DESIGN_SPACE, CacheConfig
from repro.energy.model import EnergyModel
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.tracegen import (
    HotspotAccess,
    LoopedArray,
    PointerChase,
    RandomAccess,
    SequentialStream,
    StridedAccess,
)

from .explorer import characterize_benchmark

__all__ = ["SweepPoint", "sweep_working_set", "sweep_instructions"]


@dataclass(frozen=True)
class SweepPoint:
    """One characterised point of a parameter sweep."""

    scale: float
    footprint_bytes: int
    best_config: CacheConfig
    best_energy_nj: float
    #: Total energy at the best configuration of each cache size.
    energy_by_size_nj: dict

    @property
    def best_size_kb(self) -> int:
        """Cache size of the best configuration at this point."""
        return self.best_config.size_kb


def _scale_regions(spec: BenchmarkSpec, factor: float) -> BenchmarkSpec:
    """Scale every trace component's region by ``factor``."""
    scaled_components = []
    for component, weight in spec.trace_mix.components:
        region = max(64, int(round(component.region_bytes * factor)))
        if isinstance(component, LoopedArray):
            stride = min(component.stride, region)
            scaled = replace(component, region_bytes=region, stride=stride)
        elif isinstance(component, PointerChase):
            node = min(component.node_bytes, region)
            scaled = replace(component, region_bytes=region, node_bytes=node)
        elif isinstance(
            component,
            (SequentialStream, StridedAccess, RandomAccess, HotspotAccess),
        ):
            scaled = replace(component, region_bytes=region)
        else:  # pragma: no cover - custom components pass through
            scaled = component
        scaled_components.append((scaled, weight))
    return replace(
        spec,
        name=f"{spec.name}@ws{factor:g}",
        trace_mix=replace(
            spec.trace_mix, components=tuple(scaled_components)
        ),
    )


def _characterize_point(
    spec: BenchmarkSpec,
    scale: float,
    configs: Sequence[CacheConfig],
    energy_model: Optional[EnergyModel],
    seed: int,
) -> SweepPoint:
    char = characterize_benchmark(
        spec, configs=configs, energy_model=energy_model, seed=seed
    )
    best = char.best_config()
    sizes = sorted({c.size_kb for c in char.configs()})
    by_size = {
        size: char.result(char.best_config_for_size(size)).total_energy_nj
        for size in sizes
    }
    return SweepPoint(
        scale=scale,
        footprint_bytes=spec.trace_mix.footprint_bytes,
        best_config=best,
        best_energy_nj=char.result(best).total_energy_nj,
        energy_by_size_nj=by_size,
    )


def sweep_working_set(
    spec: BenchmarkSpec,
    scales: Sequence[float],
    *,
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    seed: int = 0,
) -> List[SweepPoint]:
    """Characterise the benchmark with all regions scaled per entry.

    Returns one :class:`SweepPoint` per scale, ascending order of input.
    """
    if not scales:
        raise ValueError("need at least one scale")
    if any(scale <= 0 for scale in scales):
        raise ValueError("scales must be positive")
    points = []
    for scale in scales:
        scaled = _scale_regions(spec, scale)
        points.append(
            _characterize_point(scaled, scale, configs, energy_model, seed)
        )
    return points


def sweep_instructions(
    spec: BenchmarkSpec,
    scales: Sequence[float],
    *,
    configs: Sequence[CacheConfig] = DESIGN_SPACE,
    energy_model: Optional[EnergyModel] = None,
    seed: int = 0,
) -> List[SweepPoint]:
    """Characterise the benchmark with the instruction count scaled.

    The trace pattern is unchanged; only the execution length (and with
    it the trace length) scales.
    """
    if not scales:
        raise ValueError("need at least one scale")
    if any(scale <= 0 for scale in scales):
        raise ValueError("scales must be positive")
    points = []
    for scale in scales:
        scaled = replace(
            spec,
            name=f"{spec.name}@n{scale:g}",
            instructions=max(1000, int(round(spec.instructions * scale))),
        )
        points.append(
            _characterize_point(scaled, scale, configs, energy_model, seed)
        )
    return points
