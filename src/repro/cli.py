"""Command-line interface.

``python -m repro <command>`` drives the reproduction without writing
any code:

* ``compare`` — the four-system evaluation (Figures 6 and 7), with
  optional CSV/JSON export;
* ``characterize`` — the per-benchmark design-space table (Table 1);
* ``train`` — train and evaluate the bagged-ANN predictor;
* ``suite`` — list the synthetic EEMBC-analogue benchmarks;
* ``locality`` — miss-ratio curve / working set / reuse distances;
* ``sweep`` — characterise the whole suite with timing (optionally in
  parallel, optionally persisting the store);
* ``campaign`` — replication campaign over a (policy × seed × load)
  grid, optionally process-parallel, with mean ± 95 % CI aggregates;
  ``--stream`` switches the grid to open-system streaming loads;
* ``stream`` — open-system streaming run (:mod:`repro.sim.stream`):
  unbounded generator-backed arrivals in bounded memory, with
  admission control and deterministic ``--checkpoint``/``--resume``;
* ``trace`` — analyse a JSONL simulation trace (summary, decision
  breakdown, per-core timeline);
* ``validate`` — replay a JSONL trace against the energy-conservation
  ledger (:mod:`repro.validate`) and report whether it balances;
* ``faults`` — generate or describe deterministic fault-injection
  plans (:mod:`repro.faults`); ``--faults plan.json`` injects one into
  ``compare``/``campaign`` runs;
* ``dag`` — generate or describe deterministic task-graph workloads
  (:mod:`repro.workloads.dag`); ``campaign --dag`` switches the grid
  to DAG replications with deadline-aware ``edf``/``heft`` policies;
* ``telemetry`` — analyse a sampled-telemetry JSONL time series
  (written by ``--telemetry-out``) as a table, Prometheus-style
  exposition or JSON;
* ``bench`` — one perf-trajectory table over the ``BENCH_*.json``
  artifacts the tier-2 benchmark suite writes;
* ``reproduce`` — regenerate the full evaluation into ``results/``.

``-v``/``-vv`` (or ``--log-level``) enable the library's diagnostic
logging — cache rebuilds, model-store misses, campaign fan-out — on
stderr.  ``--trace`` and ``--metrics-out`` attach the observability
layer (:mod:`repro.obs`) to ``compare``/``campaign``/``sweep`` runs;
``--validate`` attaches the in-run invariant checks and ledger to
``compare``/``campaign`` runs.  ``--telemetry-out``/``--sampled-trace``/
``--progress`` attach the low-overhead sampled telemetry
(:mod:`repro.obs.telemetry`) to fast-engine ``compare``/``stream`` runs,
and ``campaign --progress`` shows a live replication count.
``--power-cap``/``--power-slack``/``--dvfs`` attach the power-budget /
DVFS axis (:mod:`repro.power`) to ``compare``/``campaign``/``stream``
runs — ``campaign`` sweeps the caps × slacks grid as cells, and
``campaign --dag ... --frontier`` prints the energy / deadline-miss
trade-off frontier.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    format_table,
    render_figure6,
    render_figure7,
    render_result_summary,
)
from repro.analysis.export import results_to_csv, results_to_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic Scheduling on Heterogeneous "
            "Multicores' (DATE 2019)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable diagnostic logging (-v: INFO, -vv: DEBUG)",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        choices=("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"),
        help="explicit log level (overrides -v)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="run the four-system comparison (Figures 6 & 7)"
    )
    compare.add_argument("--jobs", type=int, default=1000,
                         help="number of arrivals (paper: 5000)")
    compare.add_argument("--seed", type=int, default=1)
    compare.add_argument("--interarrival", type=int, default=56_000,
                         help="mean inter-arrival gap in cycles")
    compare.add_argument("--predictor", choices=("ann", "oracle"),
                         default="ann")
    compare.add_argument("--discipline", choices=("fifo", "priority", "edf"),
                         default="fifo")
    compare.add_argument("--csv", metavar="PATH",
                         help="write per-system summary CSV")
    compare.add_argument("--json", metavar="PATH",
                         help="write full results JSON")
    compare.add_argument("--summaries", action="store_true",
                         help="print per-system summaries too")
    compare.add_argument("--trace", metavar="PATH",
                         help="write per-policy JSONL event traces "
                              "(policy name is inserted before the "
                              "suffix: out.jsonl -> out.base.jsonl ...)")
    compare.add_argument("--metrics-out", metavar="PATH",
                         help="write per-policy metrics-registry "
                              "snapshots as JSON")
    compare.add_argument("--validate", action="store_true",
                         help="run with the energy-conservation ledger "
                              "and invariant checks attached")
    compare.add_argument("--faults", metavar="PATH",
                         help="inject the fault plan in this JSON file "
                              "into every policy's run (see the faults "
                              "subcommand)")
    compare.add_argument("--engine",
                         choices=("auto", "fast", "reference"),
                         default="auto",
                         help="simulation engine: 'fast' is the "
                              "struct-of-arrays loop (bit-identical, "
                              "~10x faster, incompatible with --trace/"
                              "--metrics-out/--validate/--faults); "
                              "'auto' picks it whenever those hooks "
                              "are off (default: auto)")
    _add_power_args(compare, sweep=False)
    _add_telemetry_args(compare, per_policy=True)

    characterize = sub.add_parser(
        "characterize", help="design-space table for one benchmark"
    )
    characterize.add_argument("benchmark", help="benchmark name")

    train = sub.add_parser(
        "train", help="train and evaluate the bagged-ANN predictor"
    )
    train.add_argument("--variants", type=int, default=12,
                       help="jittered variants per benchmark family")
    train.add_argument("--members", type=int, default=10,
                       help="bagging ensemble size (paper: 30)")
    train.add_argument("--epochs", type=int, default=200)
    train.add_argument("--seed", type=int, default=0)

    sub.add_parser("suite", help="list the synthetic benchmark suite")

    locality = sub.add_parser(
        "locality", help="locality analysis for one benchmark"
    )
    locality.add_argument("benchmark", help="benchmark name")
    locality.add_argument("--line", type=int, default=32,
                          help="line size in bytes for the analysis")
    locality.add_argument("--window", type=int, default=2000,
                          help="working-set window in accesses")

    sweep = sub.add_parser(
        "sweep",
        help="characterise the whole suite, with throughput instrumentation",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: one per CPU)")
    sweep.add_argument("--engine", choices=("stackdist", "legacy"),
                       default="stackdist",
                       help="cache-measurement engine (legacy = per-config "
                            "replay baseline)")
    sweep.add_argument("--out", metavar="PATH",
                       help="write the characterisation store JSON here")
    sweep.add_argument("--metrics-out", metavar="PATH",
                       help="write the sweep's metrics-registry snapshot "
                            "as JSON")

    campaign = sub.add_parser(
        "campaign",
        help="replication campaign over a (policy x seed x load) grid",
    )
    campaign.add_argument("--policies", nargs="+",
                          default=["base", "proposed"],
                          choices=("base", "optimal", "energy_centric",
                                   "proposed", "edf", "heft"),
                          help="policies to sweep ('edf'/'heft' order "
                               "the ready queue and need the reference "
                               "engine)")
    campaign.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2],
                          help="replication seeds (one arrival stream each)")
    campaign.add_argument("--jobs", nargs="+", type=int, default=[1000],
                          help="arrival-stream lengths to sweep")
    campaign.add_argument("--interarrival", nargs="+", type=int,
                          default=[56_000],
                          help="mean inter-arrival gaps (cycles) to sweep")
    campaign.add_argument("--predictor", choices=("ann", "oracle"),
                          default="oracle")
    campaign.add_argument("--discipline",
                          choices=("fifo", "priority", "edf"),
                          default="fifo")
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: one per CPU)")
    campaign.add_argument("--json", metavar="PATH",
                          help="write per-replication results JSON")
    campaign.add_argument("--metrics-out", metavar="PATH",
                          help="collect per-replication metrics across "
                               "the worker pool and write per-cell "
                               "aggregates as JSON")
    campaign.add_argument("--validate", action="store_true",
                          help="attach the energy-conservation ledger "
                               "and invariant checks to every "
                               "replication")
    campaign.add_argument("--faults", nargs="+", metavar="PATH",
                          help="fault-plan JSON files to add as a grid "
                               "axis (a clean no-fault cell is always "
                               "included)")
    campaign.add_argument("--engine",
                          choices=("auto", "fast", "reference"),
                          default="auto",
                          help="simulation engine for every replication "
                               "('fast' is incompatible with "
                               "--metrics-out/--validate/--faults; "
                               "default: auto)")
    campaign.add_argument("--stream",
                          choices=("poisson", "mmpp", "diurnal"),
                          default=None,
                          help="open-system load axis: stream each "
                               "replication's arrivals through the "
                               "streaming engine (--jobs bounds the "
                               "stream; incompatible with "
                               "--metrics-out/--validate/--faults)")
    campaign.add_argument("--queue-capacity", type=int, default=None,
                          help="ready-queue bound for --stream runs "
                               "(default: unbounded)")
    campaign.add_argument("--admission",
                          choices=("drop", "shed", "block"),
                          default="block",
                          help="admission policy under a full queue "
                               "for --stream runs (default: block)")
    campaign.add_argument("--warmup", type=int, default=0,
                          help="metrics warm-up in cycles for --stream "
                               "runs")
    campaign.add_argument("--dag", action="store_true",
                          help="task-graph load axis: every replication "
                               "generates --jobs task graphs "
                               "(precedence edges + per-task deadlines) "
                               "and runs them on the reference engine "
                               "(incompatible with --stream and "
                               "--engine fast)")
    campaign.add_argument("--dag-tasks-min", type=int, default=3,
                          help="minimum tasks per generated graph "
                               "(--dag only; default: 3)")
    campaign.add_argument("--dag-tasks-max", type=int, default=8,
                          help="maximum tasks per generated graph "
                               "(--dag only; default: 8)")
    campaign.add_argument("--dag-edge-density", type=float, default=0.35,
                          help="probability of a forward precedence "
                               "edge (--dag only; default: 0.35)")
    campaign.add_argument("--dag-deadline-slack", type=float, default=2.5,
                          help="deadline slack multiplier over the "
                               "critical path (--dag only; default: "
                               "2.5)")
    campaign.add_argument("--dag-criticality-levels", type=int, default=3,
                          help="number of DAG criticality levels "
                               "(--dag only; default: 3)")
    _add_power_args(campaign, sweep=True)
    campaign.add_argument("--frontier", action="store_true",
                          help="print the energy / deadline-miss "
                               "trade-off frontier after the summary "
                               "(needs --dag for deadline-carrying "
                               "jobs; pairs with a --power-cap sweep)")
    campaign.add_argument("--progress", action="store_true",
                          help="live replication-count progress line on "
                               "stderr (works with any engine/hooks)")

    stream = sub.add_parser(
        "stream",
        help="open-system streaming run: unbounded arrivals in bounded "
             "memory, with checkpoint/resume",
    )
    stream.add_argument("--policy",
                        choices=("base", "optimal", "energy_centric",
                                 "proposed"),
                        default="proposed")
    stream.add_argument("--process",
                        choices=("poisson", "mmpp", "diurnal"),
                        default="poisson",
                        help="arrival process (default: poisson)")
    stream.add_argument("--max-jobs", type=int, default=None,
                        help="stop generating after this many arrivals")
    stream.add_argument("--duration", type=int, default=None,
                        help="stop generating at this cycle horizon "
                             "(jobs already admitted still complete)")
    stream.add_argument("--interarrival", type=float, default=56_000.0,
                        help="mean inter-arrival gap in cycles")
    stream.add_argument("--seed", type=int, default=1)
    stream.add_argument("--warmup", type=int, default=0,
                        help="exclude jobs arriving before this cycle "
                             "from the latency quantiles")
    stream.add_argument("--queue-capacity", type=int, default=None,
                        help="ready-queue bound (default: unbounded)")
    stream.add_argument("--admission",
                        choices=("drop", "shed", "block"),
                        default="block",
                        help="admission policy under a full queue")
    stream.add_argument("--discipline",
                        choices=("fifo", "priority", "edf"),
                        default="fifo")
    stream.add_argument("--predictor", choices=("ann", "oracle"),
                        default="oracle")
    stream.add_argument("--checkpoint", metavar="PATH",
                        help="write an atomic snapshot here "
                             "periodically and at the end")
    stream.add_argument("--checkpoint-every", type=int, default=None,
                        help="completions between snapshots "
                             "(default: 100000)")
    stream.add_argument("--resume", action="store_true",
                        help="resume from the --checkpoint file "
                             "(bit-identical to an uninterrupted run)")
    stream.add_argument("--burst-factor", type=float, default=4.0,
                        help="mmpp: burst-phase arrival-rate multiplier")
    stream.add_argument("--amplitude", type=float, default=0.5,
                        help="diurnal: modulation depth in [0, 1)")
    stream.add_argument("--period", type=int, default=20_000_000,
                        help="diurnal: period in cycles")
    stream.add_argument("--json", metavar="PATH",
                        help="write the stream result as JSON")
    _add_power_args(stream, sweep=False)
    _add_telemetry_args(stream, per_policy=False)

    trace = sub.add_parser(
        "trace",
        help="analyse a JSONL simulation trace",
    )
    trace.add_argument("path", help="JSONL trace file (see --trace)")
    trace.add_argument("--validate", action="store_true",
                       help="schema-check every line before analysing")
    trace.add_argument("--json", metavar="PATH",
                       help="write summary + decision breakdown JSON")

    validate = sub.add_parser(
        "validate",
        help="replay a JSONL trace against the energy-conservation "
             "ledger",
    )
    validate.add_argument("path", help="JSONL trace file (see --trace)")
    validate.add_argument("--json", metavar="PATH",
                          help="write the replay report as JSON")

    faults = sub.add_parser(
        "faults",
        help="generate or describe a deterministic fault-injection plan",
    )
    faults.add_argument("action", choices=("generate", "describe"),
                        help="generate a plan from a seed, or describe "
                             "an existing plan JSON")
    faults.add_argument("path", nargs="?",
                        help="plan JSON to describe (describe only)")
    faults.add_argument("--out", metavar="PATH",
                        help="write the generated plan JSON here "
                             "(generate only)")
    faults.add_argument("--seed", type=int, default=0,
                        help="generation seed (the plan is a pure "
                             "function of it)")
    faults.add_argument("--density", type=float, default=0.25,
                        help="fault density in [0, 1] scaling window "
                             "counts and rates")
    faults.add_argument("--horizon", type=int, default=3_000_000,
                        help="cycle horizon the fault windows span")
    faults.add_argument("--cores", type=int, default=4,
                        help="number of cores the plan targets")
    faults.add_argument("--classes", nargs="+", metavar="CLASS",
                        help="restrict the plan to these fault classes "
                             "(default: all)")
    faults.add_argument("--name", help="plan name (default: derived "
                                       "from the seed)")

    dag = sub.add_parser(
        "dag",
        help="generate or describe a deterministic task-graph workload",
    )
    dag.add_argument("action", choices=("generate", "describe"),
                     help="generate graphs from a seed, or describe an "
                          "existing graph-set JSON")
    dag.add_argument("path", nargs="?",
                     help="graph-set JSON to describe (describe only)")
    dag.add_argument("--out", metavar="PATH",
                     help="write the generated graph-set JSON here "
                          "(generate only)")
    dag.add_argument("--seed", type=int, default=0,
                     help="generation seed (the graph set is a pure "
                          "function of it)")
    dag.add_argument("--count", type=int, default=8,
                     help="number of task graphs to generate")
    dag.add_argument("--tasks-min", type=int, default=3,
                     help="minimum tasks per graph")
    dag.add_argument("--tasks-max", type=int, default=8,
                     help="maximum tasks per graph")
    dag.add_argument("--edge-density", type=float, default=0.35,
                     help="probability of each forward precedence edge")
    dag.add_argument("--deadline-slack", type=float, default=2.5,
                     help="deadline slack multiplier over the critical "
                          "path")
    dag.add_argument("--criticality-levels", type=int, default=3,
                     help="number of DAG criticality levels")
    dag.add_argument("--interarrival", type=int, default=250_000,
                     help="mean graph inter-arrival gap in cycles")
    dag.add_argument("--name", default="generated",
                     help="graph name prefix (default: generated)")

    telemetry = sub.add_parser(
        "telemetry",
        help="analyse a sampled-telemetry JSONL time series "
             "(see --telemetry-out)",
    )
    telemetry.add_argument("action", choices=("report",),
                           help="report: render the time series as a "
                                "table")
    telemetry.add_argument("path",
                           help="telemetry JSONL file written by "
                                "--telemetry-out")
    telemetry.add_argument("--prom", metavar="PATH",
                           help="write the last sample as a "
                                "Prometheus-style text exposition")
    telemetry.add_argument("--json", metavar="PATH",
                           help="write the parsed header + samples as "
                                "JSON")

    bench = sub.add_parser(
        "bench",
        help="report over the BENCH_*.json benchmark artifacts",
    )
    bench.add_argument("action", choices=("report",),
                       help="report: one perf-trajectory table of "
                            "measured values vs thresholds")
    bench.add_argument("--dir", default=".",
                       help="directory holding BENCH_*.json artifacts "
                            "(default: current directory)")
    bench.add_argument("--json", metavar="PATH",
                       help="write the per-check rows as JSON")

    reproduce = sub.add_parser(
        "reproduce",
        help="regenerate the full evaluation into a results directory",
    )
    reproduce.add_argument("--out", default="results",
                           help="output directory (default: results)")
    reproduce.add_argument("--jobs", type=int, default=5000)
    reproduce.add_argument("--seed", type=int, default=1)
    return parser


def _add_telemetry_args(
    parser: argparse.ArgumentParser, *, per_policy: bool
) -> None:
    """The sampled-telemetry flag group shared by compare and stream."""
    note = (" (the policy name is inserted before the suffix, like "
            "--trace)" if per_policy else "")
    parser.add_argument("--telemetry-out", metavar="PATH",
                        help="append chunk-boundary JSONL telemetry "
                             "samples here" + note)
    parser.add_argument("--telemetry-every", type=int, default=1000,
                        help="completions between samples "
                             "(default: 1000; the streaming engine "
                             "samples at every arrival-buffer refill)")
    parser.add_argument("--sampled-trace", metavar="PATH",
                        help="write every Nth dispatch/completion as a "
                             "typed trace event (sampled=true) here"
                             + note)
    parser.add_argument("--sampled-trace-every", type=int, default=1000,
                        help="dispatch/completion sampling stride for "
                             "--sampled-trace (default: 1000)")
    parser.add_argument("--progress", action="store_true",
                        help="live progress line on stderr (jobs/s, "
                             "%% done, p99 wait, queue depth)")


def _add_power_args(
    parser: argparse.ArgumentParser, *, sweep: bool
) -> None:
    """The power-budget / DVFS flag group (single or sweep form)."""
    if sweep:
        parser.add_argument("--power-cap", nargs="+", metavar="NJ",
                            default=None,
                            help="global power-token caps (nJ) to sweep "
                                 "as a grid axis ('inf' = uncapped; an "
                                 "unconstrained baseline cell is always "
                                 "included)")
        parser.add_argument("--power-slack", nargs="+", type=float,
                            default=[0.0], metavar="PCT",
                            help="deadline slack percentages for "
                                 "degraded-dispatch admission, crossed "
                                 "with --power-cap (default: 0)")
    else:
        parser.add_argument("--power-cap", type=float, default=None,
                            metavar="NJ",
                            help="global power-token budget in nJ "
                                 "(unset = unconstrained, bit-identical "
                                 "to a run without the power axis)")
        parser.add_argument("--power-slack", type=float, default=0.0,
                            metavar="PCT",
                            help="deadline slack percentage for "
                                 "degraded-dispatch admission under "
                                 "--power-cap (default: 0)")
    parser.add_argument("--dvfs", nargs="?", const="default", default=None,
                        metavar="SPEC",
                        help="per-core DVFS operating points: bare "
                             "--dvfs uses the built-in nominal/eco/slow "
                             "ladder, or pass 'name:freq:volt,...' "
                             "(nominal 1:1 first, then descending)")


def _parse_dvfs(value: Optional[str]):
    """``--dvfs`` value → :class:`~repro.power.dvfs.DvfsTable` or None."""
    if value is None:
        return None
    from repro.power.dvfs import DEFAULT_DVFS_TABLE, DvfsTable

    if value == "default":
        return DEFAULT_DVFS_TABLE
    return DvfsTable.from_spec(value)


def _parse_power(args):
    """Single-run power flags → normalised config (or ``None``)."""
    from repro.power.budget import PowerConfig, normalize_power

    cap = args.power_cap
    if cap is not None and cap == float("inf"):
        cap = None
    return normalize_power(
        PowerConfig(
            cap_nj=cap,
            slack_pct=args.power_slack,
            dvfs=_parse_dvfs(args.dvfs),
        )
    )


def _parse_power_grid(args):
    """Campaign power flags → the ``power_configs`` axis tuple."""
    from repro.campaign import power_grid

    caps = [None]
    for raw in args.power_cap or ():
        cap = None if raw.lower() in ("inf", "none") else float(raw)
        if cap not in caps:
            caps.append(cap)
    return power_grid(
        caps, slacks=tuple(args.power_slack), dvfs=_parse_dvfs(args.dvfs)
    )


def _per_policy_path(template: str, policy: str) -> Path:
    """``out.jsonl`` + ``base`` → ``out.base.jsonl`` (suffix preserved)."""
    path = Path(template)
    return path.with_name(f"{path.stem}.{policy}{path.suffix}")


def _wants_telemetry(args) -> bool:
    """Whether any sampled-telemetry flag was passed."""
    return bool(args.telemetry_out or args.sampled_trace or args.progress)


def _make_telemetry(args, *, label: str = "", policy: str = None):
    """A :class:`~repro.obs.Telemetry` from the CLI flag group.

    Returns ``None`` when no telemetry flag was passed.  ``policy``
    routes the outputs through :func:`_per_policy_path` for commands
    that run several policies in one invocation.
    """
    if not _wants_telemetry(args):
        return None
    from repro.obs import Telemetry

    def _route(template):
        if template is None:
            return None
        if policy is None:
            return template
        return _per_policy_path(template, policy)

    return Telemetry(
        out=_route(args.telemetry_out),
        trace_out=_route(args.sampled_trace),
        sample_every=args.telemetry_every,
        trace_every=args.sampled_trace_every if args.sampled_trace else 0,
        progress=sys.stderr if args.progress else None,
        label=label,
    )


def _cmd_compare(args) -> int:
    from repro.core.simulation import SchedulerSimulation
    from repro.core.policies import POLICY_NAMES, make_policy
    from repro.core.system import base_system, paper_system
    from repro.experiment import default_predictor, default_store
    from repro.obs import JsonlRecorder, MetricsRegistry
    from repro.workloads import eembc_suite, uniform_arrivals

    if args.engine == "fast" and (
        args.trace or args.metrics_out or args.validate or args.faults
    ):
        print(
            "error: --engine fast is incompatible with --trace, "
            "--metrics-out, --validate and --faults; drop those "
            "options or use --engine reference",
            file=sys.stderr,
        )
        return 2
    if _wants_telemetry(args):
        if args.trace or args.metrics_out or args.validate or args.faults:
            print(
                "error: --telemetry-out/--sampled-trace/--progress are "
                "the sampled observability of the fast engine and are "
                "incompatible with the full-fidelity hooks (--trace, "
                "--metrics-out, --validate, --faults); drop one side",
                file=sys.stderr,
            )
            return 2
        if args.engine == "reference":
            print(
                "error: --engine reference has the full-fidelity hooks "
                "instead of sampled telemetry; drop --engine reference "
                "or the telemetry flags",
                file=sys.stderr,
            )
            return 2
    fault_plan = None
    if args.faults:
        from repro.faults import load_plan

        try:
            fault_plan = load_plan(args.faults)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"injecting fault plan '{fault_plan.name}' "
              f"({', '.join(fault_plan.classes()) or 'empty'})")
    try:
        power = _parse_power(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if power is not None:
        print(f"power budget: {power.label}")
    store = default_store()
    predictor = default_predictor(
        store, kind=args.predictor, seed=args.seed
    )
    arrivals = uniform_arrivals(
        eembc_suite(), count=args.jobs, seed=args.seed,
        mean_interarrival_cycles=args.interarrival,
    )
    results = {}
    snapshots = {}
    pools = {}
    for name in POLICY_NAMES:
        policy = make_policy(name)
        system = base_system() if name == "base" else paper_system()
        recorder = None
        registry = MetricsRegistry() if args.metrics_out else None
        if args.trace:
            recorder = JsonlRecorder(_per_policy_path(args.trace, name))
        telemetry = _make_telemetry(args, label=name, policy=name)
        sim = SchedulerSimulation(
            system, policy, store,
            predictor=predictor if policy.uses_predictor else None,
            discipline=args.discipline,
            recorder=recorder,
            metrics=registry,
            validate=args.validate,
            faults=fault_plan,
            engine=args.engine,
            telemetry=telemetry,
            power=power,
        )
        try:
            results[name] = sim.run(arrivals)
        finally:
            if recorder is not None:
                recorder.close()
            if telemetry is not None:
                telemetry.close()
        if registry is not None:
            snapshots[name] = registry.snapshot()
        pools[name] = sim.power_pool

    print(render_figure6(results))
    print()
    print(render_figure7(results))
    if power is not None:
        print()
        print(f"power accounting ({power.label}):")
        for name, pool in pools.items():
            print(f"  {name}: grants={pool.grants} "
                  f"refunds={pool.refunds} throttled={pool.throttled} "
                  f"degraded={pool.degraded} "
                  f"overdrafts={pool.overdrafts} "
                  f"consumed={pool.consumed_nj / 1e6:.3f} mJ")
    if args.summaries:
        for result in results.values():
            print()
            print(render_result_summary(result))
    if args.csv:
        results_to_csv(results, args.csv)
        print(f"\nwrote summary CSV to {args.csv}")
    if args.json:
        results_to_json(results, args.json)
        print(f"wrote results JSON to {args.json}")
    if args.trace:
        names = ", ".join(
            str(_per_policy_path(args.trace, name)) for name in results
        )
        print(f"wrote event traces: {names}")
    if args.telemetry_out:
        names = ", ".join(
            str(_per_policy_path(args.telemetry_out, name))
            for name in results
        )
        print(f"wrote telemetry time series: {names}")
    if args.sampled_trace:
        names = ", ".join(
            str(_per_policy_path(args.sampled_trace, name))
            for name in results
        )
        print(f"wrote sampled traces: {names}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump(snapshots, handle, indent=2, sort_keys=True)
        print(f"wrote metrics snapshots to {args.metrics_out}")
    return 0


def _cmd_characterize(args) -> int:
    from repro.characterization import characterize_benchmark
    from repro.workloads import eembc_benchmark

    try:
        spec = eembc_benchmark(args.benchmark)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    char = characterize_benchmark(spec)
    best = char.best_config()
    print(f"{spec.name}: {spec.description}")
    rows = []
    for config in char.configs():
        result = char.result(config)
        rows.append((
            config.name + (" *" if config == best else ""),
            f"{result.stats.miss_rate * 100:.2f}%",
            result.total_cycles,
            f"{result.total_energy_nj / 1e3:.1f}",
        ))
    print(format_table(
        ("config (* = best)", "miss rate", "cycles", "total uJ"), rows
    ))
    return 0


def _cmd_train(args) -> int:
    import numpy as np

    from repro.ann.metrics import class_accuracy
    from repro.ann.training import TrainingConfig
    from repro.core.predictor import AnnPredictor
    from repro.experiment import default_dataset
    from repro.workloads import eembc_suite

    dataset, store = default_dataset(args.variants, seed=args.seed)
    split = dataset.split(seed=args.seed, by_family=False)
    predictor = AnnPredictor(n_members=args.members, seed=args.seed)
    predictor.fit(
        split.train, val_dataset=split.val,
        config=TrainingConfig(epochs=args.epochs, seed=args.seed),
    )
    test_pred = predictor.predict_sizes_kb(split.test.features)
    accuracy = class_accuracy(test_pred, split.test.labels_kb)
    degradations = []
    for spec in eembc_suite():
        char = store.get(spec.name)
        predicted = predictor.predict_size_kb(spec.name, char.counters)
        degradations.append(
            char.energy_degradation(char.best_config_for_size(predicted))
        )
    print(f"dataset: {len(dataset)} samples "
          f"({args.variants} variants/family)")
    print(f"test accuracy: {accuracy:.3f}")
    print(f"mean energy degradation: {np.mean(degradations) * 100:.2f}% "
          f"(paper: < 2%)")
    return 0


def _cmd_locality(args) -> int:
    from repro.cache import CACHE_SIZES_KB
    from repro.workloads import (
        eembc_benchmark,
        miss_ratio_curve,
        reuse_distance_histogram,
        working_set_curve,
    )

    try:
        spec = eembc_benchmark(args.benchmark)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    trace = spec.generate_trace(seed=0)
    curve = miss_ratio_curve(trace.addresses, line_b=args.line)
    ws = working_set_curve(trace.addresses, window=args.window,
                           line_b=args.line)
    histogram = reuse_distance_histogram(trace.addresses, line_b=args.line)
    total = sum(histogram.values())

    print(f"{spec.name}: {len(trace)} references, "
          f"{trace.unique_lines_64b} distinct 64B lines")
    rows = []
    for size_kb in CACHE_SIZES_KB:
        capacity = size_kb * 1024 // args.line
        captured = sum(
            count for distance, count in histogram.items()
            if 0 <= distance < capacity
        )
        rows.append((
            f"{size_kb} KB",
            f"{curve[size_kb] * 100:.2f}%",
            f"{captured / total * 100:.1f}%",
        ))
    print(format_table(
        ("cache size", "measured miss ratio",
         "reuse mass within capacity"),
        rows,
    ))
    peak = max(d for _, d in ws)
    print(f"peak working set: ~{peak * args.line / 1024:.1f} KB "
          f"per {args.window}-access window")
    return 0


def _cmd_sweep(args) -> int:
    from repro.cache.config import DESIGN_SPACE
    from repro.characterization import (
        CharacterizationStore,
        StoreMeta,
        characterize_suite_parallel,
        design_space_fingerprint,
    )
    from repro.workloads import eembc_suite

    result = characterize_suite_parallel(
        eembc_suite(), seed=args.seed,
        engine=args.engine, workers=args.workers,
    )
    rows = []
    for task in result.timing.tasks:
        char = result.characterizations[task.name]
        best = char.best_config()
        rows.append((
            task.name,
            f"{task.accesses:,}",
            task.configs,
            best.name,
            f"{task.seconds * 1e3:.1f}",
        ))
    print(format_table(
        ("benchmark", "accesses", "configs", "best config", "ms"), rows
    ))
    print()
    print(result.timing.summary())
    if args.out:
        store = CharacterizationStore(
            result.characterizations,
            meta=StoreMeta(
                seed=args.seed,
                configs_fingerprint=design_space_fingerprint(DESIGN_SPACE),
            ),
        )
        store.to_json(args.out)
        print(f"wrote characterisation store to {args.out}")
    if args.metrics_out:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        result.timing.record_into(registry)
        with open(args.metrics_out, "w") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
        print(f"wrote sweep metrics to {args.metrics_out}")
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiment import (
        default_predictor,
        default_store,
        run_campaign,
    )

    if args.engine == "fast" and (
        args.metrics_out or args.validate or args.faults
    ):
        print(
            "error: --engine fast is incompatible with --metrics-out, "
            "--validate and --faults; drop those options or use "
            "--engine reference",
            file=sys.stderr,
        )
        return 2
    ordering = sorted(set(args.policies) & {"edf", "heft"})
    if ordering and args.engine == "fast":
        print(
            f"error: policies {ordering} order the ready queue, which "
            "the fast engine does not implement; use --engine auto or "
            "--engine reference",
            file=sys.stderr,
        )
        return 2
    if ordering and args.stream:
        print(
            f"error: policies {ordering} are incompatible with "
            "--stream (the streaming engine runs discipline-ordered "
            "queues only; use --discipline edf instead)",
            file=sys.stderr,
        )
        return 2
    dag_load = None
    if args.dag:
        if args.stream:
            print(
                "error: --dag and --stream are mutually exclusive load "
                "axes",
                file=sys.stderr,
            )
            return 2
        if args.engine == "fast":
            print(
                "error: --dag needs the reference engine for "
                "precedence gating; use --engine auto or "
                "--engine reference",
                file=sys.stderr,
            )
            return 2
        from repro.campaign import DagLoad

        dag_load = DagLoad(
            tasks_min=args.dag_tasks_min,
            tasks_max=args.dag_tasks_max,
            edge_density=args.dag_edge_density,
            deadline_slack=args.dag_deadline_slack,
            criticality_levels=args.dag_criticality_levels,
        )
    stream_load = None
    if args.stream:
        if args.metrics_out or args.validate or args.faults:
            print(
                "error: --stream is incompatible with --metrics-out, "
                "--validate and --faults (streaming runs hook-free on "
                "the fast engine); the windowed stream.* metrics are "
                "in the campaign output instead",
                file=sys.stderr,
            )
            return 2
        from repro.campaign import StreamLoad

        stream_load = StreamLoad(
            process=args.stream,
            warmup_cycles=args.warmup,
            queue_capacity=args.queue_capacity,
            admission=args.admission,
        )
    fault_plans = (None,)
    if args.faults:
        from repro.faults import load_plan

        try:
            fault_plans = (None,) + tuple(
                load_plan(path) for path in args.faults
            )
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        power_configs = _parse_power_grid(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.frontier and not args.dag:
        print(
            "error: --frontier needs --dag (the frontier plots the "
            "deadline-miss rate, and only the DAG axis carries "
            "deadlines)",
            file=sys.stderr,
        )
        return 2
    store = default_store()
    predictor = None
    if args.predictor == "ann":
        predictor = default_predictor(store, kind="ann")
    loads = [
        (count, gap) for count in args.jobs for gap in args.interarrival
    ]
    progress = None
    if args.progress:
        def progress(done: int, total: int) -> None:
            print(f"\rcampaign: {done}/{total} replications",
                  end="\n" if done == total else "",
                  file=sys.stderr, flush=True)
    result = run_campaign(
        store,
        predictor,
        policies=tuple(args.policies),
        seeds=tuple(args.seeds),
        loads=loads,
        discipline=args.discipline,
        workers=args.workers,
        collect_metrics=bool(args.metrics_out),
        validate=args.validate,
        fault_plans=fault_plans,
        engine=args.engine,
        stream=stream_load,
        dag=dag_load,
        power_configs=power_configs,
        progress=progress,
    )
    print(result.summary())
    if args.frontier:
        from repro.analysis import render_frontier

        print()
        try:
            print(render_frontier(result))
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
    if args.json:
        import dataclasses

        payload = [
            dataclasses.asdict(replication)
            for replication in result.replications
        ]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote replication results JSON to {args.json}")
    if args.metrics_out:
        import dataclasses

        payload = [
            {
                "policy": cell.policy,
                "count": cell.count,
                "mean_interarrival_cycles": cell.mean_interarrival_cycles,
                "faults": cell.faults,
                "dag": cell.dag,
                "power": cell.power,
                "n": cell.n,
                "observed": {
                    key: dataclasses.asdict(aggregate)
                    for key, aggregate in cell.observed.items()
                },
            }
            for cell in result.cells
        ]
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote per-cell metric aggregates to {args.metrics_out}")
    return 0


def _cmd_stream(args) -> int:
    import dataclasses

    from repro.core.policies import make_policy
    from repro.core.simulation import SchedulerSimulation
    from repro.core.system import base_system, paper_system
    from repro.experiment import default_predictor, default_store
    from repro.sim.stream import StreamConfig
    from repro.workloads import eembc_suite, make_process

    if args.max_jobs is None and args.duration is None:
        print(
            "error: bound the stream with --max-jobs and/or --duration",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume needs --checkpoint PATH", file=sys.stderr)
        return 2
    if args.resume and not Path(args.checkpoint).exists():
        print(
            f"error: no checkpoint file at {args.checkpoint}",
            file=sys.stderr,
        )
        return 2

    process_args = {}
    if args.process == "mmpp":
        process_args["burst_factor"] = args.burst_factor
    elif args.process == "diurnal":
        process_args["amplitude"] = args.amplitude
        process_args["period_cycles"] = args.period
    try:
        process = make_process(
            args.process,
            eembc_suite(),
            mean_interarrival_cycles=args.interarrival,
            seed=args.seed,
            **process_args,
        )
        config = StreamConfig(
            max_jobs=args.max_jobs,
            duration_cycles=args.duration,
            warmup_cycles=args.warmup,
            queue_capacity=args.queue_capacity,
            admission=args.admission,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    store = default_store()
    policy = make_policy(args.policy)
    predictor = None
    if policy.uses_predictor:
        predictor = default_predictor(
            store, kind=args.predictor, seed=args.seed
        )
    system = base_system() if args.policy == "base" else paper_system()
    try:
        power = _parse_power(args)
        telemetry = _make_telemetry(args, label=f"stream:{args.policy}")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sim = SchedulerSimulation(
        system, policy, store,
        predictor=predictor, discipline=args.discipline,
        telemetry=telemetry, power=power,
    )
    try:
        result = sim.stream(
            process,
            config,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.checkpoint if args.resume else None,
        )
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if telemetry is not None:
            telemetry.close()

    verb = "resumed" if args.resume else "ran"
    print(f"{verb} {args.policy} on a {args.process} stream "
          f"({args.discipline}, admission={result.admission}"
          + (f", capacity={result.queue_capacity}"
             if result.queue_capacity is not None else "")
          + ")")
    print(f"jobs: generated={result.jobs_generated:,} "
          f"completed={result.jobs_completed:,} "
          f"dropped={result.jobs_dropped:,} shed={result.jobs_shed:,} "
          f"(shed rate {result.shed_rate * 100:.1f}%)")
    print(f"makespan: {result.makespan_cycles / 1e6:.2f} Mcycles, "
          f"throughput {result.throughput_jobs_per_mcycle:.2f} "
          f"jobs/Mcycle")
    print(f"energy: {result.total_energy_nj / 1e6:.3f} mJ total "
          f"({result.energy_rate_nj_per_cycle:.2f} nJ/cycle; "
          f"idle {result.idle_energy_nj / 1e6:.3f}, "
          f"dynamic {result.dynamic_energy_nj / 1e6:.3f})")
    utilisation = ", ".join(
        f"core{index}={value * 100:.0f}%"
        for index, value in result.utilisation().items()
    )
    print(f"utilisation: {utilisation}")
    for label, snapshot in (
        ("waiting", result.waiting), ("turnaround", result.turnaround),
    ):
        print(f"{label} (kcyc, {result.observed_jobs:,} observed): "
              f"p50={snapshot['p50'] / 1e3:.1f} "
              f"p90={snapshot['p90'] / 1e3:.1f} "
              f"p99={snapshot['p99'] / 1e3:.1f} "
              f"mean={snapshot['mean'] / 1e3:.1f}")
    if result.power is not None:
        counts = result.power
        print(f"power ({power.label}): "
              f"grants={counts['grants']:.0f} "
              f"refunds={counts['refunds']:.0f} "
              f"throttled={counts['throttled']:.0f} "
              f"degraded={counts['degraded']:.0f} "
              f"overdrafts={counts['overdrafts']:.0f} "
              f"consumed={counts['consumed_nj'] / 1e6:.3f} mJ")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint}")
    if args.telemetry_out:
        print(f"wrote telemetry time series to {args.telemetry_out}")
    if args.sampled_trace:
        print(f"wrote sampled trace to {args.sampled_trace}")
    if args.json:
        payload = dataclasses.asdict(result)
        del payload["sim_result"]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote stream result JSON to {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import event_from_dict, validate_event_dict
    from repro.obs.report import (
        decision_breakdown,
        render_trace_report,
        trace_summary,
    )

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    events = []
    sampled = False
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if args.validate:
                    validate_event_dict(payload)
                sampled = sampled or payload.get("sampled") is True
                events.append(event_from_dict(payload))
            except ValueError as error:
                print(
                    f"error: {path}:{line_number}: {error}", file=sys.stderr
                )
                return 2
    if not events:
        print(f"error: {path} contains no events", file=sys.stderr)
        return 2
    print(render_trace_report(events, lenient=sampled))
    if args.json:
        payload = {
            "summary": trace_summary(events),
            "decision_breakdown": decision_breakdown(events),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote trace analysis JSON to {args.json}")
    return 0


def _cmd_validate(args) -> int:
    from repro.obs import event_from_dict
    from repro.validate import ValidationError, replay_trace

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such trace file: {path}", file=sys.stderr)
        return 2
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except ValueError as error:
                print(
                    f"error: {path}:{line_number}: {error}", file=sys.stderr
                )
                return 2
    if not events:
        print(f"error: {path} contains no events", file=sys.stderr)
        return 2
    try:
        report = replay_trace(events)
    except ValidationError as error:
        print(f"{path}: FAILED {error.check}", file=sys.stderr)
        print(f"  {error.detail}", file=sys.stderr)
        return 1
    print(f"{path}: OK")
    print(report.summary())
    if args.json:
        import dataclasses

        with open(args.json, "w") as handle:
            json.dump(
                dataclasses.asdict(report), handle, indent=2, sort_keys=True
            )
        print(f"\nwrote replay report JSON to {args.json}")
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import FAULT_CLASSES, generate_plan, load_plan

    if args.action == "describe":
        if not args.path:
            print("error: describe needs a plan JSON path",
                  file=sys.stderr)
            return 2
        try:
            plan = load_plan(args.path)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(plan.describe())
        return 0

    if args.path:
        print("error: generate takes no positional path (use --out)",
              file=sys.stderr)
        return 2
    classes = tuple(args.classes) if args.classes else FAULT_CLASSES
    unknown = sorted(set(classes) - set(FAULT_CLASSES))
    if unknown:
        print(f"error: unknown fault classes {unknown}; "
              f"choose from {list(FAULT_CLASSES)}", file=sys.stderr)
        return 2
    try:
        plan = generate_plan(
            args.seed, density=args.density, horizon_cycles=args.horizon,
            cores=args.cores, classes=classes, name=args.name,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(plan.describe())
    if args.out:
        plan.to_json(args.out)
        print(f"\nwrote fault plan to {args.out}")
    return 0


def _cmd_dag(args) -> int:
    from repro.workloads.dag import (
        describe_graphs,
        dump_graphs,
        generate_task_graphs,
        load_graphs,
    )

    if args.action == "describe":
        if not args.path:
            print("error: describe needs a graph-set JSON path",
                  file=sys.stderr)
            return 2
        try:
            graphs = load_graphs(args.path)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(describe_graphs(graphs))
        return 0

    if args.path:
        print("error: generate takes no positional path (use --out)",
              file=sys.stderr)
        return 2
    try:
        graphs = generate_task_graphs(
            count=args.count,
            seed=args.seed,
            tasks_min=args.tasks_min,
            tasks_max=args.tasks_max,
            edge_density=args.edge_density,
            deadline_slack=args.deadline_slack,
            criticality_levels=args.criticality_levels,
            mean_interarrival_cycles=args.interarrival,
            name=args.name,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(describe_graphs(graphs))
    if args.out:
        dump_graphs(graphs, args.out)
        print(f"\nwrote task-graph set to {args.out}")
    return 0


def _cmd_telemetry(args) -> int:
    from repro.obs import (
        read_telemetry,
        render_prometheus,
        render_telemetry_report,
    )

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such telemetry file: {path}", file=sys.stderr)
        return 2
    try:
        header, samples = read_telemetry(path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_telemetry_report(header, samples))
    if args.prom:
        if not samples:
            print("error: --prom needs at least one sample",
                  file=sys.stderr)
            return 2
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(samples[-1]))
        print(f"\nwrote Prometheus exposition to {args.prom}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"header": header, "samples": samples},
                      handle, indent=2, sort_keys=True)
        print(f"wrote telemetry JSON to {args.json}")
    return 0


def _cmd_bench(args) -> int:
    import dataclasses

    from repro.analysis.bench import (
        bench_checks,
        load_bench_artifacts,
        render_bench_report,
    )

    try:
        artifacts = load_bench_artifacts(args.dir)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not artifacts:
        print(f"error: no BENCH_*.json artifacts in {args.dir} "
              "(run pytest benchmarks/ to produce them)",
              file=sys.stderr)
        return 2
    print(render_bench_report(artifacts))
    if args.json:
        payload = [
            dataclasses.asdict(check) | {
                "ok": check.ok, "margin": check.margin,
            }
            for check in bench_checks(artifacts)
        ]
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nwrote per-check JSON to {args.json}")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.reporting import write_report

    write_report(args.out, n_jobs=args.jobs, seed=args.seed)
    return 0


def _cmd_suite(args) -> int:
    from repro.workloads import eembc_suite

    rows = [
        (spec.name, spec.instructions,
         f"~{spec.trace_mix.footprint_bytes // 1024} KB", spec.description)
        for spec in eembc_suite()
    ]
    print(format_table(
        ("benchmark", "instructions", "footprint", "models"), rows
    ))
    return 0


_COMMANDS = {
    "compare": _cmd_compare,
    "characterize": _cmd_characterize,
    "train": _cmd_train,
    "suite": _cmd_suite,
    "locality": _cmd_locality,
    "sweep": _cmd_sweep,
    "campaign": _cmd_campaign,
    "stream": _cmd_stream,
    "trace": _cmd_trace,
    "validate": _cmd_validate,
    "faults": _cmd_faults,
    "dag": _cmd_dag,
    "telemetry": _cmd_telemetry,
    "bench": _cmd_bench,
    "reproduce": _cmd_reproduce,
}


def _configure_logging(args) -> None:
    """Install a stderr handler for the library's loggers.

    ``--log-level`` wins; otherwise ``-v`` maps to INFO and ``-vv`` (or
    more) to DEBUG.  Without either, logging stays at the library
    default (WARNING), so existing output is unchanged.
    """
    if args.log_level is not None:
        level = getattr(logging, args.log_level)
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        return
    logging.basicConfig(
        level=level,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
