"""The paper's contribution: the system model, profiling table, ANN
best-core predictor, cache tuning heuristic, energy-advantageous
decision, the four evaluated scheduling policies, and the end-to-end
scheduler simulation.
"""

from .decision import StallDecision, evaluate_stall_decision, remaining_energy_nj
from .policies import (
    BasePolicy,
    EnergyCentricPolicy,
    OptimalPolicy,
    POLICY_NAMES,
    ProposedPolicy,
    SchedulingPolicy,
    make_policy,
)
from .modelstore import (
    ModelMeta,
    dataset_fingerprint,
    load_ann_predictor,
    save_ann_predictor,
    training_config_key,
)
from .predictor import (
    AnnPredictor,
    BestCorePredictor,
    DomainPredictor,
    FixedPredictor,
    OraclePredictor,
    RegressorPredictor,
)
from .profiling import ApplicationProfile, ExecutionRecord, ProfilingTable
from .results import BenchmarkStats, JobRecord, SimulationResult
from .scheduler import Assignment, CoreState, Job
from .simulation import SchedulerSimulation
from .system import CoreSpec, SystemConfig, base_system, paper_system, scaled_system
from .tuning import TuningHeuristic, TuningSession

__all__ = [
    "AnnPredictor",
    "ApplicationProfile",
    "Assignment",
    "BasePolicy",
    "BenchmarkStats",
    "BestCorePredictor",
    "CoreSpec",
    "DomainPredictor",
    "CoreState",
    "EnergyCentricPolicy",
    "ExecutionRecord",
    "FixedPredictor",
    "Job",
    "JobRecord",
    "ModelMeta",
    "OptimalPolicy",
    "OraclePredictor",
    "POLICY_NAMES",
    "ProfilingTable",
    "ProposedPolicy",
    "RegressorPredictor",
    "SchedulerSimulation",
    "SchedulingPolicy",
    "SimulationResult",
    "StallDecision",
    "SystemConfig",
    "TuningHeuristic",
    "TuningSession",
    "base_system",
    "dataset_fingerprint",
    "evaluate_stall_decision",
    "load_ann_predictor",
    "make_policy",
    "paper_system",
    "save_ann_predictor",
    "scaled_system",
    "remaining_energy_nj",
    "training_config_key",
]
