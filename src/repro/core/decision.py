"""The energy-advantageous scheduling decision (paper §IV.E).

When an application *B*'s best core *C1* is busy and an idle non-best
core *C2* exists whose best configuration for *B* is known, the scheduler
compares two futures:

* **stall** — *B* waits for *C1*: the system pays the remainder of the
  occupant's execution on *C1* (common to both futures), the idle energy
  *C2* leaks over that wait, and then *B*'s energy on *C1*;
* **run on C2** — *B* executes immediately in *C2*'s best-known
  configuration.

The paper's inequality (with the common occupant term appearing on both
sides) reduces to::

    stall advantageous  ⇔  E_B(C1) + IdleEnergy_C2(wait) ≤ E_B(C2)

The wait is the occupant's remaining cycles; the paper estimates the
occupant's remaining energy as remaining cycles × average energy per
cycle — exposed here as :func:`remaining_energy_nj` because the full
(uncancelled) comparison is also reported for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiling import ExecutionRecord

__all__ = ["StallDecision", "remaining_energy_nj", "evaluate_stall_decision"]


def remaining_energy_nj(record: ExecutionRecord, remaining_cycles: int) -> float:
    """Occupant's remaining-energy estimate (§IV.E).

    "The remaining energy consumption can be estimated by multiplying
    this remaining number of cycles by the average energy consumption
    per cycle."
    """
    if remaining_cycles < 0:
        raise ValueError("remaining_cycles must be non-negative")
    return record.energy_per_cycle_nj * remaining_cycles


@dataclass(frozen=True)
class StallDecision:
    """Outcome of one energy-advantageous evaluation."""

    #: True → stall for the best core; False → run on the non-best core.
    stall: bool
    stall_energy_nj: float
    run_energy_nj: float

    @property
    def margin_nj(self) -> float:
        """run − stall; positive when stalling saves energy."""
        return self.run_energy_nj - self.stall_energy_nj


def evaluate_stall_decision(
    *,
    best_core_energy_nj: float,
    non_best_energy_nj: float,
    wait_cycles: int,
    idle_power_non_best_nj_per_cycle: float,
) -> StallDecision:
    """Apply the (reduced) §IV.E inequality.

    Parameters
    ----------
    best_core_energy_nj:
        E of *B* executing its best-known configuration on the best core.
    non_best_energy_nj:
        E of *B* executing its best-known configuration on the idle
        non-best core.
    wait_cycles:
        Remaining cycles of the best core's current occupant.
    idle_power_non_best_nj_per_cycle:
        Static (idle) energy per cycle of the non-best core.

    Ties favour stalling: equal energy with strictly better placement
    keeps the best core's configuration advantage for future arrivals.
    """
    if wait_cycles < 0:
        raise ValueError("wait_cycles must be non-negative")
    if idle_power_non_best_nj_per_cycle < 0:
        raise ValueError("idle power must be non-negative")
    stall_energy = (
        best_core_energy_nj + wait_cycles * idle_power_non_best_nj_per_cycle
    )
    return StallDecision(
        stall=stall_energy <= non_best_energy_nj,
        stall_energy_nj=stall_energy,
        run_energy_nj=non_best_energy_nj,
    )
