"""Glue between :class:`SchedulerSimulation` and the fast engine.

:func:`run_fast` builds a :class:`~repro.sim.fast.FastSimulation` from a
configured :class:`~repro.core.simulation.SchedulerSimulation`, runs the
arrival stream through it, and then writes the fast engine's end-of-run
state back into the reference object — engine clock and counters, core
occupancy/tuner/residency state, the profiling table, tuning sessions
and the decision accumulators — so post-run introspection
(``sim.engine.processed``, ``sim.cores[i].busy_cycles``,
``sim.table``, ``sim.heuristic``) observes exactly what a reference run
would have left behind.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.profiling import ExecutionRecord, ProfilingTable
from repro.core.results import SimulationResult
from repro.core.tuning import TuningHeuristic
from repro.sim.fast import FastSimulation
from repro.workloads.arrivals import JobArrival

__all__ = ["build_fast", "run_fast"]


def build_fast(sim) -> FastSimulation:
    """A :class:`FastSimulation` mirroring ``sim``'s configuration."""
    return FastSimulation(
        sim.system,
        sim.policy,
        sim.store,
        predictor=sim.predictor,
        energy_table=sim.energy_table,
        tuner_costs=sim._tuner_costs,
        profiling_overhead_fraction=sim.profiling_overhead_fraction,
        discipline=sim.discipline,
        preemptive=sim.preemptive,
        preemption_quantum_cycles=sim.preemption_quantum_cycles,
        preload_profiles=sim._preload_profiles_requested,
        telemetry=sim.telemetry,
        power=sim.power,
    )


def run_fast(sim, arrivals: Sequence[JobArrival]) -> SimulationResult:
    """Run ``sim``'s configuration on the fast engine.

    ``sim`` must have been constructed with the obs/validate/faults
    hooks all off (engine resolution guarantees this).  Uses the
    engine prebuilt at construction when available and still fresh
    (engine selection can change between construction and run if the
    caller toggles hooks, and an engine instance runs exactly once).
    """
    fast = sim._fast
    if fast is None or fast.final_state is not None:
        fast = build_fast(sim)
    result = fast.run(arrivals)
    _write_back(sim, fast, result)
    return result


def _write_back(sim, fast: FastSimulation, result: SimulationResult) -> None:
    """Install the fast engine's final state on the reference object."""
    state = fast.final_state
    engine = sim.engine
    engine._now = state["now"]
    engine._processed = state["processed"]
    engine._sequence = state["sequence"]

    sim.queue.enqueued_total = state["enqueued_total"]
    sim.queue.max_length = state["max_queue_len"]

    for core, snap in zip(sim.cores, state["cores"]):
        core.current_job = None
        core.dvfs = snap.get("dvfs")
        core.busy_until = snap["busy_until"]
        core.busy_cycles = snap["busy_cycles"]
        core.executions = snap["executions"]
        core.epoch = snap["epoch"]
        core.run_started_at = snap["run_started_at"]
        core._residency_closed = snap["residency_closed"]
        core._residency_start = snap["residency_start"]
        core._residency_busy = snap["residency_busy"]
        tuner = core.tuner
        tuner._current = snap["config"]
        tuner.reconfigurations = snap["reconfigurations"]
        tuner.total_cycles = snap["reconfig_cycles"]
        tuner.total_energy_nj = snap["reconfig_energy_nj"]

    # Rebuild the profiling table in the fast run's touch order (the
    # reference table's dict order is observable through benchmarks(),
    # exploration_counts() and predictions_kb).
    table = ProfilingTable()
    for b in fast.touch_order:
        name = fast.bench_names[b]
        profile = table.profile(name)
        if fast.profiled[b]:
            profile.counters = sim.store.counters(name)
        if fast.pred_raw[b] is not None:
            profile.predicted_size_kb = fast.pred_raw[b]
        for cid in fast.executed[b]:
            config = fast.cfg_objs[cid]
            entry = fast._est[b][cid]
            profile.executions[config] = ExecutionRecord(
                config=config,
                total_energy_nj=entry[3],
                total_cycles=entry[0],
            )
        profile.tuned_sizes = set(fast.tuned[b])
    sim.table = table

    heuristic = TuningHeuristic()
    heuristic._sessions = {
        (fast.bench_names[b], size_kb): session
        for (b, size_kb), session in fast.sessions.items()
    }
    sim.heuristic = heuristic

    acc = state["accumulators"]
    sim._dynamic_nj = acc["dynamic_nj"]
    sim._busy_static_nj = acc["busy_static_nj"]
    sim._reconfig_nj = acc["reconfig_nj"]
    sim._reconfig_cycles = acc["reconfig_cycles"]
    sim._profiling_overhead_nj = acc["profiling_overhead_nj"]
    sim._stall_decisions = acc["stall_decisions"]
    sim._non_best_decisions = acc["non_best_decisions"]
    sim._tuning_executions = acc["tuning_executions"]
    sim._profiling_executions = acc["profiling_executions"]
    sim._preemption_count = acc["preemption_count"]
    sim._records = list(result.jobs)
    if "power" in state:
        sim._power_pool.load_state(state["power"])
