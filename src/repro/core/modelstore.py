"""Content-addressed store for trained ANN predictors.

Training the paper's 30-member ensemble is the expensive step of every
predictor-driven experiment, and it is deterministic in (dataset,
topology, training hyperparameters, seed).  This module mirrors the
characterisation store's :class:`~repro.characterization.store.StoreMeta`
pattern for *trained models*: a :class:`ModelMeta` records a fingerprint
of the exact training inputs, its :meth:`ModelMeta.cache_key` is embedded
in the cache filename by :mod:`repro.experiment`, and
:func:`load_ann_predictor` refuses to serve weights trained from any
other inputs.  A warm cache turns
:func:`repro.experiment.default_predictor` into a pure load — zero
training epochs.

Weights round-trip exactly: JSON serialises python floats via ``repr``,
which reproduces the same float64 bit pattern on load.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.ann.training import TrainingConfig
from repro.characterization.dataset import Dataset

from .predictor import AnnPredictor

__all__ = [
    "ModelMeta",
    "dataset_fingerprint",
    "training_config_key",
    "save_ann_predictor",
    "load_ann_predictor",
]

logger = logging.getLogger(__name__)

#: Version of the on-disk JSON layout.
MODEL_STORE_FORMAT = 1

#: Version of the training pipeline; bump to invalidate every cached
#: model when the trainer's arithmetic changes.
TRAINER_VERSION = "batched-1"


def dataset_fingerprint(dataset: Dataset) -> str:
    """Stable short hash of a dataset's exact contents.

    Covers the feature matrix and label bytes plus the sample names,
    families and feature names — any change to the training data changes
    the fingerprint.
    """
    digest = hashlib.blake2s(digest_size=8)
    digest.update(
        np.ascontiguousarray(
            np.asarray(dataset.features, dtype=float)
        ).tobytes()
    )
    digest.update(
        np.ascontiguousarray(
            np.asarray(dataset.labels_kb, dtype=float)
        ).tobytes()
    )
    blob = "|".join(
        (
            ",".join(dataset.names),
            ",".join(dataset.families),
            ",".join(dataset.feature_names),
        )
    )
    digest.update(blob.encode("utf-8"))
    return digest.hexdigest()


def training_config_key(config: TrainingConfig) -> str:
    """Stable short hash of every :class:`TrainingConfig` field."""
    blob = "|".join(
        (
            str(config.epochs),
            str(config.batch_size),
            repr(config.learning_rate),
            str(config.patience),
            str(config.shuffle),
            str(config.seed),
        )
    )
    return hashlib.blake2s(blob.encode("utf-8"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class ModelMeta:
    """Identity of a trained model: what produced its weights.

    Two models with equal metadata are interchangeable — ensemble
    training is deterministic in (dataset, topology, hyperparameters,
    seed, trainer version).
    """

    #: :func:`dataset_fingerprint` of the *training* dataset (the
    #: experiment pipeline folds the validation split in through the
    #: split seed, which is part of the dataset-producing inputs).
    dataset_fingerprint: str
    #: Member topology in the paper's notation, e.g. ``"(7, 18, 5, 1)"``.
    topology: str
    #: Ensemble size.
    n_members: int
    #: :func:`training_config_key` of the training hyperparameters.
    training_key: str
    #: Ensemble root seed.
    seed: int
    #: Training pipeline version.
    trainer_version: str = TRAINER_VERSION

    def cache_key(self) -> str:
        """Short content hash used in on-disk cache filenames."""
        blob = "|".join(
            (
                self.dataset_fingerprint,
                self.topology,
                str(self.n_members),
                self.training_key,
                str(self.seed),
                self.trainer_version,
            )
        )
        return hashlib.blake2s(blob.encode("utf-8"), digest_size=8).hexdigest()


def save_ann_predictor(
    path: Union[str, Path], predictor: AnnPredictor, meta: ModelMeta
) -> Path:
    """Serialise a fitted :class:`AnnPredictor` (weights + scaler) to JSON."""
    if not predictor._fitted:
        raise ValueError("cannot save an unfitted predictor")
    if predictor.scaler.mean_ is None or predictor.scaler.scale_ is None:
        raise ValueError("cannot save a predictor with an unfitted scaler")
    members = []
    for member in predictor.ensemble.members:
        members.append(
            [
                {"weights": w.tolist(), "bias": b.tolist()}
                for w, b in member.get_weights()
            ]
        )
    payload = {
        "format": MODEL_STORE_FORMAT,
        "meta": asdict(meta),
        "predictor": {
            "feature_names": list(predictor.feature_names),
            "sizes_kb": list(predictor.sizes_kb),
            "n_members": predictor.ensemble.n_members,
            "hidden": list(predictor.ensemble.hidden),
            "hidden_activation": predictor.ensemble.hidden_activation,
            "log_features": predictor.log_features,
            "seed": predictor.ensemble.seed,
        },
        "scaler": {
            "mean": predictor.scaler.mean_.tolist(),
            "scale": predictor.scaler.scale_.tolist(),
        },
        "members": members,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_ann_predictor(
    path: Union[str, Path], expected_meta: Optional[ModelMeta] = None
) -> Optional[AnnPredictor]:
    """Load a predictor saved by :func:`save_ann_predictor`.

    Returns ``None`` when the file is missing, unreadable, written by a
    different store format, or (with ``expected_meta``) was trained from
    different inputs — callers fall back to training.
    """
    path = Path(path)
    if not path.is_file():
        logger.info("model-store miss: %s does not exist", path)
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        logger.warning("model-store miss: %s unreadable (%s)", path, error)
        return None
    if not isinstance(payload, dict):
        logger.warning("model-store miss: %s is not a JSON object", path)
        return None
    if payload.get("format") != MODEL_STORE_FORMAT:
        logger.info(
            "model-store miss: %s has format %r, wanted %r",
            path, payload.get("format"), MODEL_STORE_FORMAT,
        )
        return None
    try:
        meta = ModelMeta(**payload["meta"])
        spec = payload["predictor"]
        predictor = AnnPredictor(
            feature_names=spec["feature_names"],
            sizes_kb=spec["sizes_kb"],
            n_members=spec["n_members"],
            hidden=spec["hidden"],
            log_features=spec["log_features"],
            seed=spec["seed"],
        )
        if (
            spec.get("hidden_activation", "tanh")
            != predictor.ensemble.hidden_activation
        ):
            # AnnPredictor builds tanh ensembles only; a save with any
            # other activation cannot be reconstructed faithfully here.
            return None
        predictor.scaler.mean_ = np.asarray(
            payload["scaler"]["mean"], dtype=float
        )
        predictor.scaler.scale_ = np.asarray(
            payload["scaler"]["scale"], dtype=float
        )
        members = payload["members"]
        if len(members) != len(predictor.ensemble.members):
            return None
        for member, layers in zip(predictor.ensemble.members, members):
            member.set_weights(
                [
                    (
                        np.asarray(layer["weights"], dtype=float),
                        np.asarray(layer["bias"], dtype=float),
                    )
                    for layer in layers
                ]
            )
    except (KeyError, TypeError, ValueError) as error:
        logger.warning("model-store miss: %s malformed (%s)", path, error)
        return None
    if expected_meta is not None and meta != expected_meta:
        logger.info(
            "model-store miss: %s was trained from different inputs "
            "(cached %s, wanted %s)",
            path, meta, expected_meta,
        )
        return None
    predictor.ensemble._trained = True
    predictor._fitted = True
    logger.debug("model-store hit: %s", path)
    return predictor
