"""The four evaluated scheduling systems (paper §V).

* :class:`BasePolicy` — the *base system*: every core runs the fixed
  base configuration; no profiling, no ANN, no tuning; jobs go to any
  idle core FIFO.
* :class:`OptimalPolicy` — the *optimal system*: heterogeneous cores,
  profiling, **no** ANN; each benchmark is physically executed in every
  configuration (exhaustive design-space exploration spread across its
  executions); never stalls — the best core is used when idle, otherwise
  any idle core with that core's best-known configuration.
* :class:`EnergyCentricPolicy` — the *energy-centric system*: profiling
  + ANN prediction; jobs are scheduled **only** to the predicted best
  core and always stall when it is busy, even with other cores idle.
* :class:`ProposedPolicy` — the paper's system: profiling + ANN + the
  tuning heuristic + the §IV.E energy-advantageous stall-vs-non-best
  decision.

Each policy sees the simulation through a narrow read interface (the
``sim`` argument of :meth:`SchedulingPolicy.choose`) and returns an
:class:`~repro.core.scheduler.Assignment` or ``None`` to leave the job
in the ready queue.

Beyond the paper's four systems, two *deadline-aware* policies support
the DAG/task-graph workload axis (:mod:`repro.workloads.dag`):

* :class:`EdfPolicy` — earliest-deadline-first *ordering* of the ready
  queue (dispatching like the base system otherwise).
* :class:`HeftPolicy` — HEFT-style upward-rank ordering: each task's
  rank is its estimated work plus the heaviest chain of work below it,
  weighted by its graph's criticality, plus a graph-pressure term that
  is decremented on every dispatch (the classic "rank update").

These are registered under :data:`DEADLINE_POLICY_NAMES`, deliberately
*not* under :data:`POLICY_NAMES`: the paper grids (fast engine,
telemetry, streaming) are pinned to the four paper systems, and neither
ordering policy is implemented by the struct-of-arrays fast engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.core.decision import evaluate_stall_decision
from repro.core.scheduler import Assignment, CoreState, Job

__all__ = [
    "SchedulingPolicy",
    "BasePolicy",
    "OptimalPolicy",
    "EnergyCentricPolicy",
    "ProposedPolicy",
    "EdfPolicy",
    "HeftPolicy",
    "POLICY_NAMES",
    "DEADLINE_POLICY_NAMES",
    "ALL_POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy(ABC):
    """Dispatch rule for one of the evaluated systems."""

    #: Display name (matches the paper's system names).
    name: str = "policy"
    #: Whether unprofiled jobs must first run on a profiling core.
    requires_profiling: bool = False
    #: Whether the ANN predictor is consulted after profiling.
    uses_predictor: bool = False
    #: Whether the policy imposes its own ready-queue order via
    #: :meth:`queue_key` (overriding the simulation's discipline).
    #: Ordering policies are reference-engine only.
    orders_queue: bool = False
    #: Bumped whenever the policy's queue order may have changed for
    #: reasons other than a queue mutation (e.g. a rank update on
    #: dispatch); the simulation folds it into its queue-view cache key.
    order_version: int = 0

    @abstractmethod
    def choose(self, job: Job, sim) -> Optional[Assignment]:
        """Pick a core+configuration for ``job``, or ``None`` to wait.

        ``sim`` is the running simulation
        (:class:`repro.core.simulation.SchedulerSimulation`); policies
        only read from it.
        """

    # -- ordering / DAG hooks (no-ops for the paper's four systems) ---------

    def queue_key(self, job: Job, sim):
        """Sort key for ``job`` when ``orders_queue`` is set.

        Lower keys dispatch first; ties fall back to arrival (FIFO)
        order because the simulation sorts stably.
        """
        raise NotImplementedError(
            f"{self.name!r} does not order the ready queue"
        )

    def observe_graphs(self, assignments: Sequence[Tuple[object, Dict[int, Job]]], sim) -> None:
        """Called by :meth:`~repro.core.simulation.SchedulerSimulation.run_dags`
        before the run starts, with ``(graph, task_id → job)`` pairs.

        Rank-based policies precompute per-job urgency here; the default
        is a no-op.
        """

    def on_dispatch(self, job: Job, sim) -> None:
        """Called after every dispatch; rank-updating policies react here."""

    # -- power hook (no-op for the paper's four systems) --------------------

    def choose_dvfs(self, job: Job, core: CoreState, table) -> Optional[str]:
        """Operating-point name for dispatching ``job`` on ``core``.

        Called by the power gate when a
        :class:`~repro.power.DvfsTable` is configured.  Returning
        ``None`` (the default) selects the table's nominal point; the
        gate may still lower the point when the dispatch cannot afford
        its token price.  Overriding this hook forces the reference
        engine (the fast engine inlines only the default behaviour).
        """
        return None

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _idle_cores(sim) -> List[CoreState]:
        return [c for c in sim.cores if c.is_idle(sim.now)]


class BasePolicy(SchedulingPolicy):
    """Homogeneous fixed-configuration baseline (no specialisation)."""

    name = "base"
    requires_profiling = False
    uses_predictor = False

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        for core in self._idle_cores(sim):
            return Assignment(core_index=core.index, config=core.current_config)
        return None


class OptimalPolicy(SchedulingPolicy):
    """Exhaustive-exploration system; never stalls.

    Every execution of a not-yet-fully-explored benchmark physically
    runs one unexplored configuration of the scheduled core (smallest
    first), so the benchmark's true best configuration eventually becomes
    known on every core.  Once everything is explored the benchmark runs
    its best configuration on its best core when idle, and the scheduled
    core's best configuration otherwise.
    """

    name = "optimal"
    requires_profiling = True
    uses_predictor = False

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        idle = self._idle_cores(sim)
        if not idle:
            return None
        profile = sim.table.profile(job.benchmark)

        # Prefer finishing exploration: any idle core with unexplored
        # configurations runs the next one.
        for core in idle:
            unexplored = [
                c for c in core.spec.configs if c not in profile.executions
            ]
            if unexplored:
                return Assignment(
                    core_index=core.index,
                    config=min(unexplored),
                    tuning=True,
                )

        # The idle cores are fully explored: run the best core's best
        # configuration if it is among them, else the best idle option.
        def best_energy(core: CoreState) -> Tuple[float, int]:
            config = profile.best_known_config(core.size_kb)
            return (profile.executions[config].total_energy_nj, core.index)

        core = min(idle, key=best_energy)
        return Assignment(
            core_index=core.index,
            config=profile.best_known_config(core.size_kb),
        )


class EnergyCentricPolicy(SchedulingPolicy):
    """ANN-guided system that always stalls for the predicted best core."""

    name = "energy_centric"
    requires_profiling = True
    uses_predictor = True

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        size_kb = sim.predicted_size_kb(job)
        for core in self._idle_cores(sim):
            if core.size_kb != size_kb:
                continue
            return Assignment(
                core_index=core.index,
                config=sim.tuning_config(job, core),
                tuning=not sim.heuristic.session(job.benchmark, core.size_kb).done,
            )
        return None


class ProposedPolicy(SchedulingPolicy):
    """The paper's scheduler (its Figure 2 flow)."""

    name = "proposed"
    requires_profiling = True
    uses_predictor = True

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        size_kb = sim.predicted_size_kb(job)

        # Best core idle → schedule there (tuning if still exploring).
        for core in self._idle_cores(sim):
            if core.size_kb == size_kb:
                return Assignment(
                    core_index=core.index,
                    config=sim.tuning_config(job, core),
                    tuning=not sim.heuristic.session(
                        job.benchmark, core.size_kb
                    ).done,
                )

        idle = [c for c in self._idle_cores(sim) if c.size_kb != size_kb]
        if not idle:
            return None

        # Unknown best configuration on some idle core → not enough
        # information for the energy comparison; explore there ("the
        # application is scheduled to an arbitrary idle core").
        for core in idle:
            session = sim.heuristic.session(job.benchmark, core.size_kb)
            if not session.done:
                return Assignment(
                    core_index=core.index,
                    config=session.next_config(),
                    tuning=True,
                )

        # All idle cores tuned.  The comparison also needs the best
        # core's energy; without it the job stalls conservatively.
        best_session = sim.heuristic.session(job.benchmark, size_kb)
        if not best_session.done:
            sim.count_stall_decision(job)
            return None
        best_record = sim.table.execution(
            job.benchmark, best_session.best_config
        )
        if best_record is None:
            # Profiling-table eviction can drop the record out from
            # under a finished session; without the best core's energy
            # the §IV.E comparison cannot run — stall conservatively
            # (the record reappears when the configuration re-executes).
            sim.count_stall_decision(job)
            return None

        def run_energy(core: CoreState) -> Tuple[float, int]:
            config = sim.heuristic.session(
                job.benchmark, core.size_kb
            ).best_config
            return (
                sim.table.execution(job.benchmark, config).total_energy_nj,
                core.index,
            )

        candidate = min(idle, key=run_energy)
        candidate_config = sim.heuristic.session(
            job.benchmark, candidate.size_kb
        ).best_config
        best_size_cores = [
            core
            for core in sim.cores
            if core.size_kb == size_kb and not core.failed
        ]
        if not best_size_cores:
            # Every best-size core is down (fault injection): waiting
            # has unbounded cost, so run on the cheapest tuned idle
            # core instead of stalling on a core that may never return.
            sim.count_non_best_decision(job)
            return Assignment(
                core_index=candidate.index, config=candidate_config
            )
        wait_cycles = min(
            core.remaining_cycles(sim.now) for core in best_size_cores
        )
        decision = evaluate_stall_decision(
            best_core_energy_nj=best_record.total_energy_nj,
            non_best_energy_nj=sim.table.execution(
                job.benchmark, candidate_config
            ).total_energy_nj,
            wait_cycles=wait_cycles,
            idle_power_non_best_nj_per_cycle=sim.idle_power_nj_per_cycle(
                candidate
            ),
        )
        if decision.stall:
            sim.count_stall_decision(job)
            return None
        sim.count_non_best_decision(job)
        return Assignment(core_index=candidate.index, config=candidate_config)


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first ordering of the ready queue.

    Dispatching is the base system's (first idle core, current
    configuration); only the *order* in which queued jobs are offered
    changes.  Jobs without a deadline sort last, and equal deadlines
    fall back to FIFO.  On a single saturated core EDF is the optimal
    deadline-miss minimiser, which is what the congested-scenario
    acceptance test leans on.
    """

    name = "edf"
    requires_profiling = False
    uses_predictor = False
    orders_queue = True

    def queue_key(self, job: Job, sim):
        if job.deadline_cycle is None:
            return float("inf")
        return float(job.deadline_cycle)

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        for core in self._idle_cores(sim):
            return Assignment(core_index=core.index, config=core.current_config)
        return None


class HeftPolicy(SchedulingPolicy):
    """HEFT-style upward-rank ordering with rank update on dispatch.

    Before a DAG run starts, :meth:`observe_graphs` computes each
    task's *upward rank* — its own estimated work (profiling-store
    estimate in the base configuration) plus the heaviest chain of
    successor work below it.  The queue key combines that rank
    (weighted by the graph's criticality) with a *graph pressure* term,
    the graph's total undispatched work.  Every dispatch shrinks the
    dispatching graph's pressure and bumps :attr:`order_version`, so
    queued tasks of *other* graphs observably gain relative urgency —
    the "rank update on dispatch" of dynamic HEFT variants.

    Plain (non-DAG) jobs rank by their own estimated work, i.e. a
    longest-job-first order with no pressure term.
    """

    name = "heft"
    requires_profiling = False
    uses_predictor = False
    orders_queue = True

    def __init__(self) -> None:
        self.order_version = 0
        #: job_id → upward rank in estimated cycles.
        self._rank: Dict[int, float] = {}
        #: job_id → the job's own estimated work in cycles.
        self._weight: Dict[int, float] = {}
        #: job_id → owning graph id (absent for plain jobs).
        self._graph_of: Dict[int, int] = {}
        #: graph id → undispatched work remaining, in estimated cycles.
        self._pending: Dict[int, float] = {}
        #: graph id → criticality weight.
        self._criticality: Dict[int, int] = {}

    @staticmethod
    def _estimate(benchmark: str, sim) -> float:
        return float(sim.store.estimate(benchmark, BASE_CONFIG).total_cycles)

    def observe_graphs(self, assignments, sim) -> None:
        for graph, jobs in assignments:
            successors = graph.successors()
            by_task = {t.task_id: t for t in graph.tasks}
            weight = {
                tid: self._estimate(task.benchmark, sim)
                for tid, task in by_task.items()
            }
            rank: Dict[int, float] = {}
            for tid in reversed(graph.topological_order()):
                rank[tid] = weight[tid] + max(
                    (rank[s] for s in successors[tid]), default=0.0
                )
            self._pending[graph.graph_id] = sum(weight.values())
            self._criticality[graph.graph_id] = graph.criticality
            for tid, job in jobs.items():
                self._rank[job.job_id] = rank[tid]
                self._weight[job.job_id] = weight[tid]
                self._graph_of[job.job_id] = graph.graph_id
        self.order_version += 1

    def queue_key(self, job: Job, sim):
        graph_id = self._graph_of.get(job.job_id)
        if graph_id is None:
            weight = self._weight.get(job.job_id)
            if weight is None:
                weight = self._estimate(job.benchmark, sim)
                self._weight[job.job_id] = weight
            return -weight
        urgency = (
            self._criticality[graph_id] * self._rank[job.job_id]
            + self._pending[graph_id]
        )
        return -urgency

    def on_dispatch(self, job: Job, sim) -> None:
        graph_id = self._graph_of.get(job.job_id)
        if graph_id is None:
            return
        self._pending[graph_id] = max(
            0.0, self._pending[graph_id] - self._weight[job.job_id]
        )
        self.order_version += 1

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        for core in self._idle_cores(sim):
            return Assignment(core_index=core.index, config=core.current_config)
        return None


_POLICIES = {
    cls.name: cls
    for cls in (BasePolicy, OptimalPolicy, EnergyCentricPolicy, ProposedPolicy)
}

_DEADLINE_POLICIES = {cls.name: cls for cls in (EdfPolicy, HeftPolicy)}

#: The paper's four systems.  Deliberately *not* extended with the
#: deadline-aware policies: the fast-engine/telemetry/streaming grids
#: iterate this tuple and neither ordering policy runs on the fast
#: engine.
POLICY_NAMES = tuple(_POLICIES)

#: Deadline-aware ordering policies for the DAG workload axis
#: (reference engine only).
DEADLINE_POLICY_NAMES = tuple(_DEADLINE_POLICIES)

#: Every name :func:`make_policy` accepts.
ALL_POLICY_NAMES = POLICY_NAMES + DEADLINE_POLICY_NAMES


def make_policy(name: str) -> SchedulingPolicy:
    """Construct an evaluated policy (paper system or deadline-aware)."""
    cls = _POLICIES.get(name) or _DEADLINE_POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown policy {name!r}; choose from {ALL_POLICY_NAMES}"
        )
    return cls()
