"""The four evaluated scheduling systems (paper §V).

* :class:`BasePolicy` — the *base system*: every core runs the fixed
  base configuration; no profiling, no ANN, no tuning; jobs go to any
  idle core FIFO.
* :class:`OptimalPolicy` — the *optimal system*: heterogeneous cores,
  profiling, **no** ANN; each benchmark is physically executed in every
  configuration (exhaustive design-space exploration spread across its
  executions); never stalls — the best core is used when idle, otherwise
  any idle core with that core's best-known configuration.
* :class:`EnergyCentricPolicy` — the *energy-centric system*: profiling
  + ANN prediction; jobs are scheduled **only** to the predicted best
  core and always stall when it is busy, even with other cores idle.
* :class:`ProposedPolicy` — the paper's system: profiling + ANN + the
  tuning heuristic + the §IV.E energy-advantageous stall-vs-non-best
  decision.

Each policy sees the simulation through a narrow read interface (the
``sim`` argument of :meth:`SchedulingPolicy.choose`) and returns an
:class:`~repro.core.scheduler.Assignment` or ``None`` to leave the job
in the ready queue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.core.decision import evaluate_stall_decision
from repro.core.scheduler import Assignment, CoreState, Job

__all__ = [
    "SchedulingPolicy",
    "BasePolicy",
    "OptimalPolicy",
    "EnergyCentricPolicy",
    "ProposedPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy(ABC):
    """Dispatch rule for one of the evaluated systems."""

    #: Display name (matches the paper's system names).
    name: str = "policy"
    #: Whether unprofiled jobs must first run on a profiling core.
    requires_profiling: bool = False
    #: Whether the ANN predictor is consulted after profiling.
    uses_predictor: bool = False

    @abstractmethod
    def choose(self, job: Job, sim) -> Optional[Assignment]:
        """Pick a core+configuration for ``job``, or ``None`` to wait.

        ``sim`` is the running simulation
        (:class:`repro.core.simulation.SchedulerSimulation`); policies
        only read from it.
        """

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _idle_cores(sim) -> List[CoreState]:
        return [c for c in sim.cores if c.is_idle(sim.now)]


class BasePolicy(SchedulingPolicy):
    """Homogeneous fixed-configuration baseline (no specialisation)."""

    name = "base"
    requires_profiling = False
    uses_predictor = False

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        for core in self._idle_cores(sim):
            return Assignment(core_index=core.index, config=core.current_config)
        return None


class OptimalPolicy(SchedulingPolicy):
    """Exhaustive-exploration system; never stalls.

    Every execution of a not-yet-fully-explored benchmark physically
    runs one unexplored configuration of the scheduled core (smallest
    first), so the benchmark's true best configuration eventually becomes
    known on every core.  Once everything is explored the benchmark runs
    its best configuration on its best core when idle, and the scheduled
    core's best configuration otherwise.
    """

    name = "optimal"
    requires_profiling = True
    uses_predictor = False

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        idle = self._idle_cores(sim)
        if not idle:
            return None
        profile = sim.table.profile(job.benchmark)

        # Prefer finishing exploration: any idle core with unexplored
        # configurations runs the next one.
        for core in idle:
            unexplored = [
                c for c in core.spec.configs if c not in profile.executions
            ]
            if unexplored:
                return Assignment(
                    core_index=core.index,
                    config=min(unexplored),
                    tuning=True,
                )

        # The idle cores are fully explored: run the best core's best
        # configuration if it is among them, else the best idle option.
        def best_energy(core: CoreState) -> Tuple[float, int]:
            config = profile.best_known_config(core.size_kb)
            return (profile.executions[config].total_energy_nj, core.index)

        core = min(idle, key=best_energy)
        return Assignment(
            core_index=core.index,
            config=profile.best_known_config(core.size_kb),
        )


class EnergyCentricPolicy(SchedulingPolicy):
    """ANN-guided system that always stalls for the predicted best core."""

    name = "energy_centric"
    requires_profiling = True
    uses_predictor = True

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        size_kb = sim.predicted_size_kb(job)
        for core in self._idle_cores(sim):
            if core.size_kb != size_kb:
                continue
            return Assignment(
                core_index=core.index,
                config=sim.tuning_config(job, core),
                tuning=not sim.heuristic.session(job.benchmark, core.size_kb).done,
            )
        return None


class ProposedPolicy(SchedulingPolicy):
    """The paper's scheduler (its Figure 2 flow)."""

    name = "proposed"
    requires_profiling = True
    uses_predictor = True

    def choose(self, job: Job, sim) -> Optional[Assignment]:
        size_kb = sim.predicted_size_kb(job)

        # Best core idle → schedule there (tuning if still exploring).
        for core in self._idle_cores(sim):
            if core.size_kb == size_kb:
                return Assignment(
                    core_index=core.index,
                    config=sim.tuning_config(job, core),
                    tuning=not sim.heuristic.session(
                        job.benchmark, core.size_kb
                    ).done,
                )

        idle = [c for c in self._idle_cores(sim) if c.size_kb != size_kb]
        if not idle:
            return None

        # Unknown best configuration on some idle core → not enough
        # information for the energy comparison; explore there ("the
        # application is scheduled to an arbitrary idle core").
        for core in idle:
            session = sim.heuristic.session(job.benchmark, core.size_kb)
            if not session.done:
                return Assignment(
                    core_index=core.index,
                    config=session.next_config(),
                    tuning=True,
                )

        # All idle cores tuned.  The comparison also needs the best
        # core's energy; without it the job stalls conservatively.
        best_session = sim.heuristic.session(job.benchmark, size_kb)
        if not best_session.done:
            sim.count_stall_decision(job)
            return None
        best_record = sim.table.execution(
            job.benchmark, best_session.best_config
        )
        if best_record is None:
            # Profiling-table eviction can drop the record out from
            # under a finished session; without the best core's energy
            # the §IV.E comparison cannot run — stall conservatively
            # (the record reappears when the configuration re-executes).
            sim.count_stall_decision(job)
            return None

        def run_energy(core: CoreState) -> Tuple[float, int]:
            config = sim.heuristic.session(
                job.benchmark, core.size_kb
            ).best_config
            return (
                sim.table.execution(job.benchmark, config).total_energy_nj,
                core.index,
            )

        candidate = min(idle, key=run_energy)
        candidate_config = sim.heuristic.session(
            job.benchmark, candidate.size_kb
        ).best_config
        best_size_cores = [
            core
            for core in sim.cores
            if core.size_kb == size_kb and not core.failed
        ]
        if not best_size_cores:
            # Every best-size core is down (fault injection): waiting
            # has unbounded cost, so run on the cheapest tuned idle
            # core instead of stalling on a core that may never return.
            sim.count_non_best_decision(job)
            return Assignment(
                core_index=candidate.index, config=candidate_config
            )
        wait_cycles = min(
            core.remaining_cycles(sim.now) for core in best_size_cores
        )
        decision = evaluate_stall_decision(
            best_core_energy_nj=best_record.total_energy_nj,
            non_best_energy_nj=sim.table.execution(
                job.benchmark, candidate_config
            ).total_energy_nj,
            wait_cycles=wait_cycles,
            idle_power_non_best_nj_per_cycle=sim.idle_power_nj_per_cycle(
                candidate
            ),
        )
        if decision.stall:
            sim.count_stall_decision(job)
            return None
        sim.count_non_best_decision(job)
        return Assignment(core_index=candidate.index, config=candidate_config)


_POLICIES = {
    cls.name: cls
    for cls in (BasePolicy, OptimalPolicy, EnergyCentricPolicy, ProposedPolicy)
}

#: Names accepted by :func:`make_policy`.
POLICY_NAMES = tuple(_POLICIES)


def make_policy(name: str) -> SchedulingPolicy:
    """Construct one of the four evaluated policies by name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
