"""Best-core (best-cache-size) predictors (paper §IV.C/D).

The paper's predictor is a bagged ensemble of 30 small MLPs trained
offline on profiling counters; at run time the scheduler feeds the
just-profiled application's counters in and receives the best cache
size, which identifies the best core.

These predictors share the :class:`BestCorePredictor` interface:

* :class:`AnnPredictor` — the paper's design: standardised selected
  counters → bagged MLP regression on log2(size) → snap to a legal size.
* :class:`RegressorPredictor` — the same pipeline over any fit/predict
  regressor (k-NN, decision tree, random forest), implementing the
  paper's "different machine learning techniques" future work.
* :class:`DomainPredictor` — one specialised predictor per application
  domain (§IV.D's multiple-ANN suggestion).
* :class:`OraclePredictor` — returns the true best size from a
  characterisation store (the upper bound used to measure the ANN's
  <2 % energy-degradation claim and by ablations).
* :class:`FixedPredictor` — always the same size (sanity baselines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ann.bagging import PAPER_ENSEMBLE_SIZE, BaggedRegressor
from repro.ann.network import PAPER_TOPOLOGY
from repro.ann.preprocessing import StandardScaler, log_transform, snap_to_classes
from repro.ann.training import TrainingConfig
from repro.cache.config import CACHE_SIZES_KB
from repro.characterization.dataset import Dataset
from repro.characterization.store import CharacterizationStore
from repro.workloads.counters import ANN_SELECTED_FEATURES, HardwareCounters

__all__ = [
    "BestCorePredictor",
    "AnnPredictor",
    "RegressorPredictor",
    "DomainPredictor",
    "OraclePredictor",
    "FixedPredictor",
]


class BestCorePredictor(ABC):
    """Maps profiling counters to a predicted best cache size."""

    @abstractmethod
    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        """Best cache size (KB) for the profiled application."""


class AnnPredictor(BestCorePredictor):
    """The paper's bagged-ANN predictor.

    The network regresses log2 of the best cache size from standardised,
    feature-selected counters; the continuous output is snapped to the
    nearest legal size.  Regressing in log2 space makes the three classes
    {2, 4, 8} equidistant, so the snap threshold sits at the geometric
    midpoints.
    """

    def __init__(
        self,
        feature_names: Sequence[str] = ANN_SELECTED_FEATURES,
        sizes_kb: Sequence[int] = CACHE_SIZES_KB,
        *,
        n_members: int = PAPER_ENSEMBLE_SIZE,
        hidden: Sequence[int] = PAPER_TOPOLOGY,
        log_features: bool = True,
        seed: int = 0,
    ) -> None:
        if not feature_names:
            raise ValueError("need at least one feature")
        if not sizes_kb:
            raise ValueError("need at least one cache size class")
        self.feature_names = tuple(feature_names)
        self.sizes_kb = tuple(sorted(sizes_kb))
        self._log_sizes = np.log2(np.array(self.sizes_kb, dtype=float))
        #: Counters are heavy-tailed counts; compressing them with log1p
        #: before standardisation makes ratios (e.g. cycles per
        #: instruction) linearly separable for the small MLP.
        self.log_features = log_features
        self.scaler = StandardScaler()
        self.ensemble = BaggedRegressor(
            in_features=len(self.feature_names),
            n_members=n_members,
            hidden=hidden,
            seed=seed,
        )
        self._fitted = False

    def fit(
        self,
        dataset: Dataset,
        *,
        val_dataset: Optional[Dataset] = None,
        config: TrainingConfig = TrainingConfig(),
        engine: str = "batched",
    ) -> "AnnPredictor":
        """Train on a characterised dataset (features → best size).

        ``engine`` selects the ensemble-training engine
        (see :data:`repro.ann.bagging.TRAINING_ENGINES`); both engines
        produce identical members.
        """
        if tuple(dataset.feature_names) != self.feature_names:
            raise ValueError(
                "dataset feature names do not match the predictor's: "
                f"{dataset.feature_names} != {self.feature_names}"
            )
        x = self.scaler.fit_transform(self._pre(dataset.features))
        y = np.log2(dataset.labels_kb)[:, None]
        x_val = y_val = None
        if val_dataset is not None and len(val_dataset) > 0:
            x_val = self.scaler.transform(self._pre(val_dataset.features))
            y_val = np.log2(val_dataset.labels_kb)[:, None]
        self.ensemble.fit(
            x, y, x_val=x_val, y_val=y_val, config=config, engine=engine
        )
        self._fitted = True
        return self

    def _pre(self, features: np.ndarray) -> np.ndarray:
        if not self.log_features:
            return np.atleast_2d(np.asarray(features, dtype=float))
        return log_transform(np.atleast_2d(np.asarray(features, dtype=float)))

    def predict_sizes_kb(self, features: np.ndarray) -> np.ndarray:
        """Vectorised prediction for a raw feature matrix."""
        if not self._fitted:
            raise RuntimeError("predictor used before fit()")
        x = self.scaler.transform(self._pre(features))
        log_pred = self.ensemble.predict(x)
        snapped = snap_to_classes(log_pred, self._log_sizes)
        return np.power(2.0, snapped).astype(int)

    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        vector = counters.as_vector(self.feature_names)
        return int(self.predict_sizes_kb(vector[None, :])[0])


class RegressorPredictor(BestCorePredictor):
    """Best-core prediction through any fit/predict regressor.

    The paper's future work proposes "evaluating different machine
    learning techniques"; this adapter runs the same pipeline as
    :class:`AnnPredictor` (log-compress → standardise → regress log2
    size → snap) over any regressor with ``fit(x, y)`` and
    ``predict(x)`` — e.g. :class:`repro.ann.neighbors.KNNRegressor` or
    :class:`repro.ann.tree.DecisionTreeRegressor`.
    """

    def __init__(
        self,
        regressor,
        feature_names: Sequence[str] = ANN_SELECTED_FEATURES,
        sizes_kb: Sequence[int] = CACHE_SIZES_KB,
        *,
        log_features: bool = True,
    ) -> None:
        if not feature_names:
            raise ValueError("need at least one feature")
        if not sizes_kb:
            raise ValueError("need at least one cache size class")
        self.regressor = regressor
        self.feature_names = tuple(feature_names)
        self.sizes_kb = tuple(sorted(sizes_kb))
        self._log_sizes = np.log2(np.array(self.sizes_kb, dtype=float))
        self.log_features = log_features
        self.scaler = StandardScaler()
        self._fitted = False

    def _pre(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if not self.log_features:
            return features
        return log_transform(features)

    def fit(self, dataset: Dataset) -> "RegressorPredictor":
        """Train the wrapped regressor on a characterised dataset."""
        if tuple(dataset.feature_names) != self.feature_names:
            raise ValueError(
                "dataset feature names do not match the predictor's: "
                f"{dataset.feature_names} != {self.feature_names}"
            )
        x = self.scaler.fit_transform(self._pre(dataset.features))
        y = np.log2(dataset.labels_kb)
        self.regressor.fit(x, y)
        self._fitted = True
        return self

    def predict_sizes_kb(self, features: np.ndarray) -> np.ndarray:
        """Vectorised prediction for a raw feature matrix."""
        if not self._fitted:
            raise RuntimeError("predictor used before fit()")
        x = self.scaler.transform(self._pre(features))
        log_pred = np.asarray(self.regressor.predict(x), dtype=float).ravel()
        snapped = snap_to_classes(log_pred, self._log_sizes)
        return np.power(2.0, snapped).astype(int)

    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        vector = counters.as_vector(self.feature_names)
        return int(self.predict_sizes_kb(vector[None, :])[0])


class DomainPredictor(BestCorePredictor):
    """One specialised predictor per application domain (§IV.D).

    "For diverse systems executing different application domains, the
    scheduler could have multiple ANNs each of which would be
    specialized for a different domain."  This predictor trains one
    sub-predictor per domain on that domain's samples only and routes
    each profiled application to its domain's model (the domain is
    application metadata, known when the application is installed).

    Parameters
    ----------
    domains:
        Mapping of benchmark *family* → domain label.  Variant names
        like ``a2time.v3`` resolve through their family prefix.
    make_predictor:
        Factory creating one trainable predictor (e.g. an
        :class:`AnnPredictor`) per domain; called with the domain index
        for seed decorrelation.
    """

    def __init__(
        self,
        domains,
        make_predictor=None,
    ) -> None:
        if not domains:
            raise ValueError("need a non-empty family -> domain mapping")
        self.domains = dict(domains)
        if make_predictor is None:
            def make_predictor(index: int) -> AnnPredictor:
                return AnnPredictor(n_members=10, seed=index)
        self._make_predictor = make_predictor
        self.by_domain: dict = {}
        self._fitted = False

    def _family(self, benchmark: str) -> str:
        return benchmark.split(".")[0]

    def _domain(self, benchmark: str) -> str:
        family = self._family(benchmark)
        try:
            return self.domains[family]
        except KeyError:
            raise KeyError(
                f"benchmark family {family!r} has no domain assignment"
            ) from None

    def fit(
        self,
        dataset: Dataset,
        *,
        config: "TrainingConfig" = None,
    ) -> "DomainPredictor":
        """Train one sub-predictor per domain on its rows only."""
        from repro.ann.training import TrainingConfig as _TrainingConfig

        training = config if config is not None else _TrainingConfig()
        rows_by_domain: dict = {}
        for index, family in enumerate(dataset.families):
            domain = self.domains.get(family)
            if domain is None:
                raise KeyError(
                    f"dataset family {family!r} has no domain assignment"
                )
            rows_by_domain.setdefault(domain, []).append(index)
        import inspect

        for i, (domain, rows) in enumerate(sorted(rows_by_domain.items())):
            sub = self._make_predictor(i)
            sub_dataset = dataset.take(rows)
            if "config" in inspect.signature(sub.fit).parameters:
                sub.fit(sub_dataset, config=training)
            else:  # e.g. RegressorPredictor
                sub.fit(sub_dataset)
            self.by_domain[domain] = sub
        self._fitted = True
        return self

    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        if not self._fitted:
            raise RuntimeError("predictor used before fit()")
        domain = self._domain(benchmark)
        sub = self.by_domain.get(domain)
        if sub is None:
            raise KeyError(
                f"no predictor trained for domain {domain!r}"
            )
        return sub.predict_size_kb(benchmark, counters)


class OraclePredictor(BestCorePredictor):
    """Perfect predictions from a characterisation store."""

    def __init__(self, store: CharacterizationStore) -> None:
        self.store = store

    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        return self.store.best_size_kb(benchmark)


class FixedPredictor(BestCorePredictor):
    """Always predicts the same size (degenerate baseline)."""

    def __init__(self, size_kb: int) -> None:
        if size_kb <= 0:
            raise ValueError("size_kb must be positive")
        self.size_kb = size_kb

    def predict_size_kb(
        self, benchmark: str, counters: HardwareCounters
    ) -> int:
        return self.size_kb
