"""The profiling table (paper §IV.A/B).

Core 4 "contains a profiling table that stores profiling information for
all applications, including the execution statistics for the base
configuration, and the performance and energy consumption of any core
configurations that have been explored during design space exploration.
This storage eliminates future profiling executions and enables the
tuning heuristic to operate across multiple application executions."

:class:`ProfilingTable` is that structure: per benchmark it records

* the base-configuration hardware counters (set once by profiling),
* the ANN's predicted best cache size (set right after profiling),
* every explored configuration's measured energy and cycles,
* and, per cache size, whether exploration finished and which explored
  configuration is the known best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.workloads.counters import HardwareCounters

__all__ = ["ExecutionRecord", "ApplicationProfile", "ProfilingTable"]


@dataclass(frozen=True)
class ExecutionRecord:
    """Measured energy/performance of one explored configuration."""

    config: CacheConfig
    total_energy_nj: float
    total_cycles: int

    def __post_init__(self) -> None:
        if self.total_energy_nj < 0:
            raise ValueError("energy must be non-negative")
        if self.total_cycles <= 0:
            raise ValueError("cycles must be positive")

    @property
    def energy_per_cycle_nj(self) -> float:
        """Average energy per cycle (remaining-energy estimation, §IV.E)."""
        return self.total_energy_nj / self.total_cycles


@dataclass
class ApplicationProfile:
    """Everything the table knows about one application."""

    benchmark: str
    counters: Optional[HardwareCounters] = None
    predicted_size_kb: Optional[int] = None
    executions: Dict[CacheConfig, ExecutionRecord] = field(default_factory=dict)
    #: Cache sizes whose design-space exploration completed.
    tuned_sizes: set = field(default_factory=set)

    @property
    def profiled(self) -> bool:
        """Whether base-configuration profiling has happened."""
        return self.counters is not None

    def explored_configs_for_size(self, size_kb: int) -> Tuple[CacheConfig, ...]:
        """Explored configurations of one cache size, canonical order."""
        return tuple(
            sorted(c for c in self.executions if c.size_kb == size_kb)
        )

    def best_known_config(self, size_kb: int) -> Optional[CacheConfig]:
        """Lowest-energy *explored* configuration of a size, if any."""
        candidates = self.explored_configs_for_size(size_kb)
        if not candidates:
            return None
        return min(
            candidates, key=lambda c: (self.executions[c].total_energy_nj, c)
        )

    def is_tuned(self, size_kb: int) -> bool:
        """Whether the tuning heuristic finished for this cache size."""
        return size_kb in self.tuned_sizes


class ProfilingTable:
    """Benchmark-id → :class:`ApplicationProfile` (lives on Core 4)."""

    def __init__(self) -> None:
        self._profiles: Dict[str, ApplicationProfile] = {}

    def __contains__(self, benchmark: str) -> bool:
        return benchmark in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def profile(self, benchmark: str) -> ApplicationProfile:
        """The profile for a benchmark, created on first touch."""
        entry = self._profiles.get(benchmark)
        if entry is None:
            entry = ApplicationProfile(benchmark=benchmark)
            self._profiles[benchmark] = entry
        return entry

    def has_profile(self, benchmark: str) -> bool:
        """Whether base-configuration profiling has been recorded."""
        entry = self._profiles.get(benchmark)
        return entry is not None and entry.profiled

    def record_profiling(
        self, benchmark: str, counters: HardwareCounters
    ) -> None:
        """Store the base-configuration counters (one-time)."""
        entry = self.profile(benchmark)
        entry.counters = counters

    def record_prediction(self, benchmark: str, size_kb: int) -> None:
        """Store the ANN's predicted best cache size."""
        if size_kb <= 0:
            raise ValueError("predicted size must be positive")
        self.profile(benchmark).predicted_size_kb = size_kb

    def record_execution(
        self,
        benchmark: str,
        config: CacheConfig,
        total_energy_nj: float,
        total_cycles: int,
    ) -> None:
        """Store the measured outcome of one configuration execution.

        Re-executions of an already-recorded configuration overwrite the
        record (same deterministic measurement in this reproduction).
        """
        record = ExecutionRecord(
            config=config,
            total_energy_nj=total_energy_nj,
            total_cycles=total_cycles,
        )
        self.profile(benchmark).executions[config] = record

    def execution(
        self, benchmark: str, config: CacheConfig
    ) -> Optional[ExecutionRecord]:
        """The stored record for one configuration, if explored."""
        entry = self._profiles.get(benchmark)
        if entry is None:
            return None
        return entry.executions.get(config)

    def predicted_size_kb(self, benchmark: str) -> Optional[int]:
        """The ANN's stored prediction, if any."""
        entry = self._profiles.get(benchmark)
        return entry.predicted_size_kb if entry is not None else None

    def best_known_config(
        self, benchmark: str, size_kb: int
    ) -> Optional[CacheConfig]:
        """Best explored configuration of a size; None if unexplored."""
        entry = self._profiles.get(benchmark)
        if entry is None:
            return None
        return entry.best_known_config(size_kb)

    def is_best_config_known(self, benchmark: str, size_kb: int) -> bool:
        """Whether tuning completed for (benchmark, size)."""
        entry = self._profiles.get(benchmark)
        return entry is not None and entry.is_tuned(size_kb)

    def mark_tuned(self, benchmark: str, size_kb: int) -> None:
        """Mark a size's exploration as complete."""
        self.profile(benchmark).tuned_sizes.add(size_kb)

    def benchmarks(self) -> Tuple[str, ...]:
        """All benchmarks with any recorded information."""
        return tuple(self._profiles)

    # -- fault-injection degradation (see repro.faults) ----------------------

    def evict_counters(self, benchmark: str) -> None:
        """Drop a benchmark's profiling counters (forces re-profiling).

        The prediction and execution records survive: they are keyed
        knowledge in their own right, and keeping them means in-flight
        scheduling decisions for already-queued jobs stay well-defined.
        """
        entry = self._profiles.get(benchmark)
        if entry is not None:
            entry.counters = None

    def evict_size(self, benchmark: str, size_kb: int) -> None:
        """Drop one cache size's execution records and tuned mark.

        Leaves the profile internally consistent: the size reads as
        never explored, so exploration restarts from scratch (callers
        must also invalidate the matching
        :class:`~repro.core.tuning.TuningHeuristic` session).
        """
        entry = self._profiles.get(benchmark)
        if entry is None:
            return
        for config in [c for c in entry.executions if c.size_kb == size_kb]:
            del entry.executions[config]
        entry.tuned_sizes.discard(size_kb)

    def corrupt_execution(
        self, benchmark: str, config: CacheConfig, factor: float
    ) -> None:
        """Scale one recorded execution's energy by ``factor`` (> 0).

        Models a bit-flipped/stale table entry: subsequent decisions
        trust the wrong energy until the configuration re-executes and
        overwrites the record.
        """
        if factor <= 0:
            raise ValueError("corruption factor must be positive")
        entry = self._profiles.get(benchmark)
        if entry is None:
            return
        record = entry.executions.get(config)
        if record is None:
            return
        entry.executions[config] = ExecutionRecord(
            config=record.config,
            total_energy_nj=record.total_energy_nj * factor,
            total_cycles=record.total_cycles,
        )

    def exploration_counts(self) -> Mapping[str, int]:
        """Configurations explored per benchmark (tuning-efficiency metric)."""
        return {
            name: len(profile.executions)
            for name, profile in self._profiles.items()
        }
