"""Simulation result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["JobRecord", "BenchmarkStats", "SimulationResult"]


@dataclass(frozen=True)
class JobRecord:
    """Lifecycle of one job through the scheduler."""

    job_id: int
    benchmark: str
    arrival_cycle: int
    start_cycle: int
    completion_cycle: int
    core_index: int
    config_name: str
    #: Whether this execution was the job's profiling run.
    profiled: bool
    #: Whether this execution was a tuning-heuristic exploration step.
    tuning: bool
    energy_nj: float
    #: Static priority (0 in the paper's plain-FIFO evaluation).
    priority: int = 0
    #: Absolute completion deadline, if the job carried one.
    deadline_cycle: Optional[int] = None
    #: Times the job was preempted before completing.
    preemptions: int = 0
    #: Total ready-queue cycles over all visits: the wait before the
    #: first dispatch *plus* requeued time after preemptions.  Defaults
    #: to ``start - arrival`` (exact whenever the job was never
    #: preempted).
    waiting_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if not (
            self.arrival_cycle <= self.start_cycle <= self.completion_cycle
        ):
            raise ValueError(
                "job cycles must satisfy arrival <= start <= completion"
            )
        if self.waiting_cycles is None:
            object.__setattr__(
                self, "waiting_cycles",
                self.start_cycle - self.arrival_cycle,
            )
        elif self.waiting_cycles < 0:
            raise ValueError("waiting_cycles must be non-negative")

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the deadline was met; None when the job had none."""
        if self.deadline_cycle is None:
            return None
        return self.completion_cycle <= self.deadline_cycle

    @property
    def service_cycles(self) -> int:
        """Cycles spent executing (including any reconfiguration)."""
        return self.completion_cycle - self.start_cycle

    @property
    def turnaround_cycles(self) -> int:
        """Arrival-to-completion latency."""
        return self.completion_cycle - self.arrival_cycle


@dataclass(frozen=True)
class BenchmarkStats:
    """Aggregated per-benchmark outcome of one run."""

    benchmark: str
    jobs: int
    mean_energy_nj: float
    mean_waiting_cycles: float
    mean_turnaround_cycles: float
    cores_used: tuple
    configs_used: tuple
    deadline_misses: int
    preemptions: int


@dataclass
class SimulationResult:
    """Aggregate outcome of one scheduler simulation run."""

    policy: str
    jobs_completed: int
    makespan_cycles: int
    #: Static energy of idle cores (the paper's "idle energy").
    idle_energy_nj: float
    #: Dynamic cache/memory energy of all executions, plus
    #: reconfiguration and profiling overheads.
    dynamic_energy_nj: float
    #: Static energy of cores while executing.
    busy_static_energy_nj: float
    reconfig_energy_nj: float
    profiling_overhead_nj: float
    #: Cycles spent reconfiguring caches.
    reconfig_cycles: int
    #: Number of stall decisions taken (proposed policy).
    stall_decisions: int
    #: Number of run-on-non-best decisions taken (proposed policy).
    non_best_decisions: int
    #: Executions that were tuning-heuristic exploration steps.
    tuning_executions: int
    #: Executions that were profiling runs.
    profiling_executions: int
    #: Preemptions performed (0 under non-preemptive scheduling).
    preemption_count: int = 0
    #: Per-core busy cycles (index → cycles occupied by executions).
    core_busy_cycles: Dict[int, int] = field(default_factory=dict)
    #: Per-benchmark count of configurations explored (tuning efficiency).
    exploration_counts: Dict[str, int] = field(default_factory=dict)
    #: Predicted best size per benchmark (empty for non-ANN policies).
    predictions_kb: Dict[str, int] = field(default_factory=dict)
    #: Per-job records, completion order.
    jobs: list = field(default_factory=list)

    @property
    def total_energy_nj(self) -> float:
        """System energy: idle + busy static + dynamic (incl. overheads)."""
        return (
            self.idle_energy_nj
            + self.busy_static_energy_nj
            + self.dynamic_energy_nj
        )

    @property
    def mean_waiting_cycles(self) -> float:
        """Mean ready-queue waiting time across jobs."""
        if not self.jobs:
            return 0.0
        return sum(j.waiting_cycles for j in self.jobs) / len(self.jobs)

    @property
    def mean_turnaround_cycles(self) -> float:
        """Mean arrival-to-completion latency across jobs."""
        if not self.jobs:
            return 0.0
        return sum(j.turnaround_cycles for j in self.jobs) / len(self.jobs)

    @property
    def deadline_jobs(self) -> int:
        """Number of completed jobs that carried a deadline."""
        return sum(1 for j in self.jobs if j.deadline_cycle is not None)

    @property
    def deadline_misses(self) -> int:
        """Deadline-carrying jobs that completed after their deadline."""
        return sum(1 for j in self.jobs if j.met_deadline is False)

    @property
    def deadline_miss_rate(self) -> float:
        """Misses per deadline-carrying job; 0.0 when none had one."""
        if self.deadline_jobs == 0:
            return 0.0
        return self.deadline_misses / self.deadline_jobs

    @property
    def core_utilizations(self) -> Dict[int, float]:
        """Per-core busy fraction of the makespan (empty if unrecorded)."""
        if self.makespan_cycles == 0:
            return {core: 0.0 for core in self.core_busy_cycles}
        return {
            core: busy / self.makespan_cycles
            for core, busy in self.core_busy_cycles.items()
        }

    def per_benchmark_stats(self) -> Dict[str, BenchmarkStats]:
        """Aggregate the per-job records by benchmark.

        The structured counterpart of
        :func:`repro.analysis.render_benchmark_breakdown` for
        programmatic use.
        """
        grouped: Dict[str, list] = {}
        for record in self.jobs:
            grouped.setdefault(record.benchmark, []).append(record)
        stats: Dict[str, BenchmarkStats] = {}
        for benchmark, records in grouped.items():
            n = len(records)
            stats[benchmark] = BenchmarkStats(
                benchmark=benchmark,
                jobs=n,
                mean_energy_nj=sum(r.energy_nj for r in records) / n,
                mean_waiting_cycles=sum(r.waiting_cycles for r in records) / n,
                mean_turnaround_cycles=(
                    sum(r.turnaround_cycles for r in records) / n
                ),
                cores_used=tuple(sorted({r.core_index for r in records})),
                configs_used=tuple(sorted({r.config_name for r in records})),
                deadline_misses=sum(
                    1 for r in records if r.met_deadline is False
                ),
                preemptions=sum(r.preemptions for r in records),
            )
        return stats

    def normalized_to(self, baseline: "SimulationResult") -> Dict[str, float]:
        """Energy/performance ratios against another run (paper Figs 6/7)."""
        def ratio(mine: float, theirs: float) -> float:
            return mine / theirs if theirs else float("nan")

        return {
            "idle_energy": ratio(self.idle_energy_nj, baseline.idle_energy_nj),
            "dynamic_energy": ratio(
                self.dynamic_energy_nj, baseline.dynamic_energy_nj
            ),
            "total_energy": ratio(self.total_energy_nj, baseline.total_energy_nj),
            "cycles": ratio(self.makespan_cycles, baseline.makespan_cycles),
        }
