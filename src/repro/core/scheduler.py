"""Scheduler runtime types shared by the policies and the simulation.

* :class:`Job` — one arrived benchmark instance.
* :class:`CoreState` — a core's run-time state (tuner, occupancy,
  accounting).
* :class:`Assignment` — a policy's dispatch decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.config import CacheConfig
from repro.cache.tuner import CacheTuner, TunerCostModel
from repro.core.system import CoreSpec

__all__ = ["Job", "CoreState", "Assignment"]


@dataclass
class Job:
    """One benchmark instance travelling through the system.

    ``priority`` and ``deadline_cycle`` support the paper's future-work
    extension ("considering systems with preemption, priority, and
    deadlines"); with the defaults the job behaves exactly as in the
    paper's FIFO evaluation.
    """

    job_id: int
    benchmark: str
    arrival_cycle: int
    #: Static priority; larger is more urgent (0 = the paper's default).
    priority: int = 0
    #: Absolute completion deadline in cycles, if any.
    deadline_cycle: Optional[int] = None
    start_cycle: Optional[int] = None
    completion_cycle: Optional[int] = None
    #: Fraction of the execution still to run (1.0 = not yet started;
    #: decreases when the job is preempted mid-execution).
    remaining_fraction: float = 1.0
    #: How many times this job has been preempted.
    preemptions: int = 0
    #: Cycle the job last entered the ready queue (arrival or requeue
    #: after a preemption); ``None`` until the arrival is processed.
    last_enqueue_cycle: Optional[int] = None
    #: Ready-queue cycles accumulated over *all* visits — the wait
    #: before the first dispatch plus any requeued time after
    #: preemptions.
    waiting_cycles: int = 0
    #: Execution energy (dynamic + static) charged to this job across
    #: all its slices, net of preemption refunds.
    charged_energy_nj: float = 0.0

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")
        if (
            self.deadline_cycle is not None
            and self.deadline_cycle < self.arrival_cycle
        ):
            raise ValueError("deadline cannot precede the arrival")

    @property
    def started(self) -> bool:
        """Whether the job has been dispatched to a core."""
        return self.start_cycle is not None


@dataclass(frozen=True)
class Assignment:
    """A policy's decision: run a job on a core in a configuration.

    Attributes
    ----------
    core_index:
        Target core.
    config:
        L1 configuration to execute with (the tuner installs it first if
        it differs from the core's current configuration).
    profiling:
        True when this execution is the job's profiling run.
    tuning:
        True when this execution is a tuning-heuristic exploration step.
    dvfs:
        Operating-point name for this dispatch when the power axis has
        a DVFS table (``None`` = nominal / power axis off).  Policies
        may set it via :meth:`SchedulingPolicy.choose_dvfs`; the power
        gate resolves it and may lower it when degrading an
        unaffordable dispatch.
    """

    core_index: int
    config: CacheConfig
    profiling: bool = False
    tuning: bool = False
    dvfs: Optional[str] = None


class CoreState:
    """Run-time state of one core inside the simulation."""

    def __init__(
        self,
        spec: CoreSpec,
        tuner_costs: TunerCostModel = TunerCostModel(),
    ) -> None:
        self.spec = spec
        self.tuner = CacheTuner(spec.reset_config, tuner_costs)
        self.current_job: Optional[Job] = None
        self.busy_until = 0
        self.busy_cycles = 0
        self.executions = 0
        #: Whether the core is inside a fault-injected failure window;
        #: a down core accepts no dispatches and its occupant (if any)
        #: was requeued when the window opened.
        self.failed = False
        #: Start time of the in-flight execution (for preemption).
        self.run_started_at = 0
        #: Operating-point name of the most recent dispatch when the
        #: power axis has a DVFS table; ``None`` otherwise.
        self.dvfs: Optional[str] = None
        #: Increments on every begin/preempt; completion events carry the
        #: epoch they were scheduled under so stale ones are ignored.
        self.epoch = 0
        #: Closed config-residency intervals: ``(start, end, config,
        #: busy_cycles)`` tuples, one per configuration the core has
        #: left behind.  Idle leakage integrates over these piecewise
        #: (a core's static power follows the *installed* configuration,
        #: not the one it happens to end the run with).
        self._residency_closed: list = []
        self._residency_start = 0
        self._residency_busy = 0

    @property
    def index(self) -> int:
        """Core index (zero-based)."""
        return self.spec.index

    @property
    def size_kb(self) -> int:
        """Fixed cache size of the core."""
        return self.spec.cache_size_kb

    @property
    def current_config(self) -> CacheConfig:
        """Currently installed L1 configuration."""
        return self.tuner.current

    def is_idle(self, now: int) -> bool:
        """Whether the core can accept a job at time ``now``.

        Both conditions matter: ``current_job`` clears when the occupant
        finishes or is preempted, and ``busy_until`` guards against a
        core being handed a job before its release time has been
        reached (they coincide today only because dispatch runs at
        event boundaries).  A failed core (fault injection) is never
        idle: it cannot accept work until its failure window closes.
        """
        return (
            not self.failed
            and self.current_job is None
            and now >= self.busy_until
        )

    def begin(self, job: Job, now: int, service_cycles: int) -> None:
        """Occupy the core with a job for ``service_cycles``."""
        if self.current_job is not None:
            raise RuntimeError(
                f"{self.spec.name} is busy with job {self.current_job.job_id}"
            )
        if service_cycles <= 0:
            raise ValueError("service_cycles must be positive")
        self.current_job = job
        self.run_started_at = now
        self.busy_until = now + service_cycles
        self.busy_cycles += service_cycles
        self._residency_busy += service_cycles
        self.executions += 1
        self.epoch += 1

    def finish(self, now: int) -> Job:
        """Release the core; returns the job that just completed."""
        if self.current_job is None:
            raise RuntimeError(f"{self.spec.name} has no job to finish")
        if now != self.busy_until:
            raise RuntimeError(
                f"{self.spec.name} finishing at {now}, expected {self.busy_until}"
            )
        job = self.current_job
        self.current_job = None
        return job

    def remaining_cycles(self, now: int) -> int:
        """Cycles until the current occupant completes (0 when idle)."""
        if self.current_job is None:
            return 0
        return max(0, self.busy_until - now)

    def preempt(self, now: int) -> tuple:
        """Halt the in-flight execution; returns ``(job, fraction_run)``.

        ``fraction_run`` is the share of the *scheduled service* that
        actually executed before the preemption.  Unused busy cycles are
        refunded from the accounting and the epoch advances so the
        core's pending completion event becomes stale.
        """
        if self.current_job is None:
            raise RuntimeError(f"{self.spec.name} has no job to preempt")
        if now >= self.busy_until:
            raise RuntimeError(
                f"{self.spec.name} occupant already finished at "
                f"{self.busy_until}; cannot preempt at {now}"
            )
        service = self.busy_until - self.run_started_at
        executed = now - self.run_started_at
        fraction_run = executed / service if service else 0.0
        self.busy_cycles -= self.busy_until - now
        self._residency_busy -= self.busy_until - now
        job = self.current_job
        self.current_job = None
        self.busy_until = now
        self.epoch += 1
        return job, fraction_run

    # -- config residency (idle-leakage accounting) --------------------------

    def note_reconfigured(self, now: int, previous: CacheConfig) -> None:
        """Close ``previous``'s residency interval at ``now``.

        Called by the simulation whenever the tuner installs a
        *different* configuration; the interval records how many of its
        cycles were busy so idle leakage can be integrated per
        configuration actually installed.
        """
        self._residency_closed.append(
            (self._residency_start, now, previous, self._residency_busy)
        )
        self._residency_start = now
        self._residency_busy = 0

    def residency_intervals(self, end: int) -> list:
        """All residency intervals up to ``end`` (makespan), closed form.

        Returns ``(start, end, config, busy_cycles)`` tuples covering
        ``[0, end)`` without gaps; the final (still open) interval is
        closed at ``end`` under the currently installed configuration.
        Does not mutate the core's state.
        """
        return self._residency_closed + [
            (self._residency_start, end, self.current_config,
             self._residency_busy)
        ]
