"""End-to-end scheduler simulation (the paper's MATLAB evaluation role).

Drives one of the four policies over an arrival stream on a
:class:`~repro.core.system.SystemConfig`, with every physical execution's
cycles and energy drawn from the characterisation store.  The scheduler
is invoked "each time a benchmark arrived or when a core became idle"
(paper §V) — exactly the two event kinds of the engine.

Energy accounting
-----------------
* **dynamic** — Figure 4's E(dynamic) of every execution, plus tuner
  reconfiguration energy and profiling counter overhead;
* **busy static** — Figure 4's E(sta) of every execution;
* **idle** — per-core static leakage over all cycles the core spent
  unoccupied, up to the makespan.

Total system energy = idle + busy static + dynamic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cache.config import BASE_CONFIG
from repro.cache.tuner import TunerCostModel
from repro.characterization.store import CharacterizationStore
from repro.core.policies import SchedulingPolicy
from repro.core.predictor import BestCorePredictor
from repro.core.profiling import ProfilingTable
from repro.core.results import JobRecord, SimulationResult
from repro.core.scheduler import Assignment, CoreState, Job
from repro.core.system import SystemConfig
from repro.core.tuning import TuningHeuristic
from repro.energy.tables import EnergyTable
from repro.obs.events import (
    ConfigInstalled,
    DeadlineMiss,
    EnergyAccrued,
    JobArrived,
    JobCompleted,
    JobPreempted,
    NonBestDispatch,
    PowerThrottled,
    ProfilingCompleted,
    ProfilingStarted,
    SizePredicted,
    StallDecision,
    TaskReady,
    TokenGrant,
    TuningStep,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, TraceRecorder
from repro.sim.engine import EventEngine
from repro.sim.events import Event, EventKind
from repro.sim.queueing import ReadyQueue
from repro.workloads.arrivals import JobArrival

__all__ = ["SchedulerSimulation"]

#: Counters pre-registered when a metrics registry is attached, so every
#: traced run reports a uniform key set (campaign cells aggregate these
#: across replications without key drift).
_METRIC_COUNTERS = (
    "sim.jobs_arrived",
    "sim.jobs_completed",
    "sim.executions",
    "sim.profiling_executions",
    "sim.tuning_executions",
    "sim.stall_decisions",
    "sim.non_best_decisions",
    "sim.preemptions",
    "sim.reconfigurations",
    "sim.predictor_hits",
    "sim.predictor_misses",
    "sim.dispatch.best",
    "sim.dispatch.non_best",
    "sim.dispatch.tuning",
    "sim.dispatch.profiling",
    "sim.deadline.jobs",
    "sim.deadline.misses",
    "sim.dag.graphs",
    "sim.dag.tasks_released",
)

_METRIC_HISTOGRAMS = (
    "sim.queue_depth",
    "sim.waiting_cycles",
    "sim.turnaround_cycles",
    "sim.service_cycles",
    "sim.tuner.exploration_steps",
    "sim.deadline.slack_cycles",
)

#: Counters pre-registered only when the power axis is enabled, so
#: power-off metric snapshots stay byte-identical to pre-power runs.
_POWER_COUNTERS = (
    "sim.power.grants",
    "sim.power.refunds",
    "sim.power.throttled",
    "sim.power.degraded",
    "sim.power.overdrafts",
)


class _PendingExecution:
    """What a core is currently running (for completion handling)."""

    __slots__ = (
        "job",
        "assignment",
        "estimate",
        "fraction_at_start",
        "dynamic_charged_nj",
        "static_charged_nj",
        "overhead_charged_nj",
        "category",
    )

    def __init__(
        self,
        job,
        assignment,
        estimate,
        fraction_at_start=1.0,
        dynamic_charged_nj=0.0,
        static_charged_nj=0.0,
        overhead_charged_nj=0.0,
        category="best",
    ) -> None:
        self.job = job
        self.assignment = assignment
        self.estimate = estimate
        self.fraction_at_start = fraction_at_start
        self.dynamic_charged_nj = dynamic_charged_nj
        self.static_charged_nj = static_charged_nj
        self.overhead_charged_nj = overhead_charged_nj
        self.category = category


class SchedulerSimulation:
    """One simulation run of one policy on one system.

    Parameters
    ----------
    system:
        Machine description (the paper's quad-core, or any other).
    policy:
        Scheduling policy (one of the four evaluated systems).
    store:
        Characterisation of every benchmark that can arrive, on every
        configuration any core offers (this is "physical execution"
        ground truth).
    predictor:
        Best-core predictor; required when the policy uses one.
    energy_table:
        Per-configuration energy constants (defaults to a fresh table
        sharing the store's energy model assumptions).
    tuner_costs:
        Reconfiguration cost model.
    profiling_overhead_fraction:
        Extra cycles/energy charged on a profiling run for reading and
        storing the hardware counters.
    discipline:
        Ready-queue service order: ``fifo`` (the paper), ``priority``
        (static priority, FIFO within a level) or ``edf`` (earliest
        deadline first; deadline-free jobs go last).  The latter two
        implement the paper's priority/deadline future work (§VIII).
    preemptive:
        With the ``priority``/``edf`` disciplines, allow a waiting job
        to preempt a strictly less urgent running job (naive preemption:
        the victim loses its cache state, its partial execution's energy
        is charged pro-rata, and it re-enters the ready queue with its
        remaining work).  Profiling runs are never preempted.  This is
        the paper's "systems with preemption" future work.
    preemption_quantum_cycles:
        Minimum execution window around a preemption: a running job is
        only eligible as a victim once it has executed this many cycles
        *and* still has at least this many cycles left.  This models OS
        scheduling granularity and prevents preemption storms from
        fragmenting executions into one-cycle slivers.
    preload_profiles:
        §IV.B: "This profiling could be eliminated if the applications
        were known a priori with profiling-based statistics recorded at
        design time and this profiling information can be pre-loaded."
        When true, every benchmark in the store arrives pre-profiled:
        counters and the predictor's best-core prediction are installed
        in the profiling table, and the tuning heuristic is run to
        completion against design-time measurements, so no run-time
        profiling or tuning executions happen.
    recorder:
        Trace recorder receiving one typed event per run-time decision
        (see :mod:`repro.obs.events`).  Defaults to the no-op
        :data:`~repro.obs.recorder.NULL_RECORDER`; recorders only read
        simulation state, so a traced run is bit-identical to an
        untraced one.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        present the simulation reports counters (decisions, executions,
        predictor hit/miss), streaming histograms (queue depth, waiting
        and service cycles, tuner convergence) and end-of-run gauges
        (energy decomposition, makespan, per-core utilisation) into it.
    validate:
        Attach a :class:`~repro.validate.SimulationValidator`: an
        independent double-entry energy ledger mirrors every charge and
        refund, runtime invariants (queue conservation, core/pending
        consistency, refund and fraction bounds) are re-derived after
        every event, and end-of-run conservation checks assert the
        ledger, the :class:`~repro.core.results.SimulationResult`
        totals and the per-job/per-core attributions all agree.  Any
        violation raises
        :class:`~repro.validate.ValidationError` (and, with tracing
        attached, emits an ``invariant_violation`` event first).
        Validation only reads simulation state — a validated run is
        bit-identical to an unvalidated one.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`; when present a
        :class:`~repro.faults.injector.FaultInjector` drives seeded
        core failures/slowdowns, predictor outages/mispredictions,
        profiling noise, table eviction/corruption, reconfiguration
        pinning and dispatch failures through the simulation's fault
        checkpoints (see ``docs/faults.md``).  An *empty* plan injects
        nothing and the run is bit-identical to ``faults=None``.
    engine:
        Which event loop executes :meth:`run`.  ``"reference"`` is the
        oracle loop in this module; ``"fast"`` is the struct-of-arrays
        engine (:mod:`repro.sim.fast`) with the obs/validate/faults
        hooks compiled out — bit-identical results, an order of
        magnitude faster, but incompatible with tracing, metrics,
        validation and fault injection (requesting both raises
        :class:`ValueError`).  The default ``"auto"`` picks the fast
        engine exactly when all four hooks are off (see
        ``docs/performance.md``).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` sink.  Unlike
        the four per-event hooks above it is *sampled* observability —
        fed at chunk boundaries by the fast and streaming engines, so
        attaching it keeps ``engine="auto"`` on the fast path and the
        results bit-identical.  Requires the fast engine (attaching it
        alongside hooks, which force the reference engine, raises
        :class:`ValueError`).  See ``docs/observability.md``.
    power:
        Optional :class:`~repro.power.PowerConfig`: a power-token
        budget (global and/or per-cluster caps priced in nJ from the
        energy tables) and/or a DVFS operating-point table.  Every
        dispatch must afford its dynamic+static charge from the token
        pool; unaffordable dispatches degrade down the (config × DVFS)
        ladder within their slack or wait, and tokens return on
        completion/preemption through the existing refund path.  A
        disabled configuration (``cap_nj=None``, no cluster caps, no
        DVFS) normalises to ``None`` and the run is bit-identical to
        ``power=None`` on every engine.  See ``docs/power.md``.
    """

    #: Queue disciplines supported by the dispatcher.
    DISCIPLINES = ("fifo", "priority", "edf")

    #: Engine selection modes accepted by the ``engine`` parameter.
    ENGINES = ("auto", "fast", "reference")

    def __init__(
        self,
        system: SystemConfig,
        policy: SchedulingPolicy,
        store: CharacterizationStore,
        *,
        predictor: Optional[BestCorePredictor] = None,
        energy_table: Optional[EnergyTable] = None,
        tuner_costs: TunerCostModel = TunerCostModel(),
        profiling_overhead_fraction: float = 0.003,
        discipline: str = "fifo",
        preemptive: bool = False,
        preemption_quantum_cycles: int = 10_000,
        preload_profiles: bool = False,
        recorder: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        validate: bool = False,
        faults=None,
        engine: str = "auto",
        telemetry=None,
        power=None,
    ) -> None:
        if policy.uses_predictor and predictor is None:
            raise ValueError(
                f"policy {policy.name!r} needs a predictor"
            )
        if profiling_overhead_fraction < 0:
            raise ValueError("profiling_overhead_fraction must be >= 0")
        if discipline not in self.DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; "
                f"choose from {self.DISCIPLINES}"
            )
        if preemptive and discipline == "fifo":
            raise ValueError(
                "preemption needs an urgency order; use the 'priority' "
                "or 'edf' discipline"
            )
        if preemption_quantum_cycles < 0:
            raise ValueError("preemption_quantum_cycles must be >= 0")
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {self.ENGINES}"
            )
        if engine == "fast" and policy.orders_queue:
            raise ValueError(
                f"engine='fast' does not implement the policy-ordered "
                f"ready queue of policy {policy.name!r}; deadline-aware "
                "ordering policies run on the reference engine only "
                "(use engine='auto' or engine='reference')"
            )
        self.engine_mode = engine
        self.discipline = discipline
        self.preemptive = preemptive
        self.preemption_quantum_cycles = preemption_quantum_cycles
        #: Jobs already preempted at the *current* timestamp (bounds
        #: churn when the policy then declines the freed core).  Only
        #: one timestamp's set is ever retained — keyed storage would
        #: leak one set per preemption time over a long run.
        self._preempted_now: set = set()
        self._preempted_now_cycle = -1
        self._preemption_count = 0
        self.system = system
        self.policy = policy
        self.store = store
        self.predictor = predictor
        self.energy_table = (
            energy_table if energy_table is not None else EnergyTable()
        )
        self.profiling_overhead_fraction = profiling_overhead_fraction
        #: Kept for the fast path, which builds its own core state.
        self._tuner_costs = tuner_costs
        self._preload_profiles_requested = preload_profiles
        #: ((queue.mutations, policy.order_version), view) pair backing
        #: :meth:`_queue_view`.
        self._queue_view_cache = None
        #: DAG bookkeeping, populated by :meth:`run_dags` (``None`` for
        #: plain arrival runs): job_id → successor jobs, job_id →
        #: unfinished-predecessor count, and job_id → (graph, task) ids
        #: for trace labelling.
        self._dag_successors: Optional[Dict[int, List[Job]]] = None
        self._dag_remaining: Optional[Dict[int, int]] = None
        self._dag_meta: Optional[Dict[int, tuple]] = None
        #: Per-(benchmark, config) memo over the store's estimate rows.
        self._estimate_cache: Dict[tuple, object] = {}
        #: Per-benchmark memo over the store's profiling counters.
        self._counters_cache: Dict[str, object] = {}

        self.engine = EventEngine()
        self.queue: ReadyQueue[Job] = ReadyQueue()
        self.cores: List[CoreState] = [
            CoreState(spec, tuner_costs) for spec in system.cores
        ]
        self.table = ProfilingTable()
        self.heuristic = TuningHeuristic()

        self._pending: Dict[int, _PendingExecution] = {}
        self._records: List[JobRecord] = []
        self._dynamic_nj = 0.0
        self._busy_static_nj = 0.0
        self._reconfig_nj = 0.0
        self._reconfig_cycles = 0
        self._profiling_overhead_nj = 0.0
        self._stall_decisions = 0
        self._non_best_decisions = 0
        self._tuning_executions = 0
        self._profiling_executions = 0

        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics
        #: Sampled telemetry sink (:mod:`repro.obs.telemetry`) for the
        #: fast and streaming engines.  Deliberately NOT part of
        #: :meth:`_fast_eligible`: telemetry fires on chunk boundaries
        #: only, so requesting it keeps ``engine="auto"`` on the fast
        #: path.
        self.telemetry = telemetry
        #: Job id the policy just flagged as a non-best dispatch; consumed
        #: by :meth:`_start` to categorise the execution it opens.
        self._non_best_next: Optional[int] = None
        if metrics is not None:
            # Pre-register the uniform key set (counters start at zero,
            # histograms empty) so snapshots of different runs align.
            for name in _METRIC_COUNTERS:
                metrics.counter(name)
            for name in _METRIC_HISTOGRAMS:
                metrics.histogram(name)

        if validate:
            # Imported lazily: the default path stays free of the
            # validation layer entirely.
            from repro.validate.invariants import SimulationValidator

            self._validator: Optional[SimulationValidator] = (
                SimulationValidator(self)
            )
            if metrics is not None:
                metrics.counter("sim.validate.checks")
                metrics.counter("sim.validate.violations")
        else:
            self._validator = None

        if faults is not None:
            # Imported lazily: the default path stays free of the fault
            # layer entirely.
            from repro.faults.injector import FaultInjector

            self._faults: Optional[FaultInjector] = FaultInjector(
                self, faults
            )
        else:
            self._faults = None

        #: Normalised power configuration (``None`` when nothing is
        #: enabled, so every power-off path is byte-for-byte the
        #: pre-power code) and its runtime token pool.
        self.power = None
        self._power_pool = None
        if power is not None:
            # Imported lazily: the default path stays free of the power
            # layer entirely.
            from repro.power.budget import TokenPool, normalize_power

            self.power = normalize_power(power)
            if self.power is not None:
                self._power_pool = TokenPool(self.power)
                if metrics is not None:
                    for name in _POWER_COUNTERS:
                        metrics.counter(name)

        if engine == "fast" and not self._fast_eligible():
            raise ValueError(
                "engine='fast' is incompatible with tracing, metrics, "
                "validation and fault injection; drop those hooks or "
                "use engine='reference'.  For low-overhead visibility "
                "on the fast engine, attach sampled telemetry instead "
                "(telemetry=Telemetry(...), or --telemetry-out / "
                "--progress on the CLI)"
            )
        if telemetry is not None and self._resolve_engine() == "reference":
            raise ValueError(
                "telemetry is the sampled observability of the fast and "
                "streaming engines; the reference engine has the "
                "full-fidelity hooks (recorder/metrics/validate/faults) "
                "instead.  Drop the hooks so engine='auto' picks the "
                "fast engine, or drop telemetry"
            )

        if preload_profiles:
            self._preload_profiles()

        # When the fast engine is already known to run, build it now:
        # its lookup tables (config interning, characterisation rows,
        # reconfiguration costs) are construction-time state, exactly
        # like the reference's preloaded profiles above.
        self._fast = None
        if self._resolve_engine() == "fast":
            from repro.core.fastpath import build_fast

            self._fast = build_fast(self)

    # -- engine selection ----------------------------------------------------

    def _fast_eligible(self) -> bool:
        """Whether the hook-free fast engine may run this simulation."""
        return (
            not self.recorder.enabled
            and self.metrics is None
            and self._validator is None
            and self._faults is None
            and not self.policy.orders_queue
            # The fast engine implements the power gate itself, but a
            # policy that *chooses* operating points needs the
            # reference loop's per-dispatch hook.
            and (
                self.power is None
                or type(self.policy).choose_dvfs
                is SchedulingPolicy.choose_dvfs
            )
        )

    def _resolve_engine(self) -> str:
        """The engine :meth:`run` will actually use."""
        if self.engine_mode == "auto":
            return "fast" if self._fast_eligible() else "reference"
        return self.engine_mode

    def _preload_profiles(self) -> None:
        """Install design-time profiling/tuning knowledge (§IV.B)."""
        for benchmark in self.store.names():
            counters = self._counters(benchmark)
            self.table.record_profiling(benchmark, counters)
            if self.policy.uses_predictor:
                size = self.predictor.predict_size_kb(benchmark, counters)
                self.table.record_prediction(benchmark, size)
                # Design-time tuning: run the heuristic against offline
                # measurements for every core size the system offers.
                for size_kb in self.system.cache_sizes_kb:
                    session = self.heuristic.session(benchmark, size_kb)
                    while not session.done:
                        config = session.next_config()
                        estimate = self._estimate(benchmark, config)
                        self.table.record_execution(
                            benchmark,
                            config,
                            estimate.total_energy_nj,
                            estimate.total_cycles,
                        )
                        session.record(config, estimate.total_energy_nj)
                    self.table.mark_tuned(benchmark, size_kb)

    # -- store lookup memos --------------------------------------------------

    def _estimate(self, benchmark: str, config):
        """Memoised ``store.estimate``: one row walk per (bench, config).

        The store is immutable for the lifetime of a run, so the first
        lookup's result (or its ``KeyError``) is definitive; misses are
        not cached so the exception surfaces identically on every call.
        """
        key = (benchmark, config)
        estimate = self._estimate_cache.get(key)
        if estimate is None:
            estimate = self.store.estimate(benchmark, config)
            self._estimate_cache[key] = estimate
        return estimate

    def _counters(self, benchmark: str):
        """Memoised ``store.counters`` (same object, one walk)."""
        counters = self._counters_cache.get(benchmark)
        if counters is None:
            counters = self.store.counters(benchmark)
            self._counters_cache[benchmark] = counters
        return counters

    # -- read interface used by policies ------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self.engine.now

    @property
    def power_pool(self):
        """The run's :class:`~repro.power.TokenPool` (``None`` when the
        power axis is off).  On the fast engine the pool state is
        written back after :meth:`run`, so post-run reads see the same
        account either way."""
        return self._power_pool

    def predicted_size_kb(self, job: Job) -> int:
        """The job's predicted best cache size, mapped onto this system."""
        raw = self.table.predicted_size_kb(job.benchmark)
        if raw is None:
            raise RuntimeError(
                f"{job.benchmark} has no prediction; profiling must precede "
                "prediction-based scheduling"
            )
        return self.system.nearest_size_kb(raw)

    def tuning_config(self, job: Job, core: CoreState):
        """Configuration to run on ``core``: tuned best, or next trial."""
        session = self.heuristic.session(job.benchmark, core.size_kb)
        if session.done:
            return session.best_config
        return session.next_config()

    def idle_power_nj_per_cycle(self, core: CoreState) -> float:
        """Static leakage per cycle of a core (cache-size dependent)."""
        return self.energy_table.get(core.current_config).static_per_cycle_nj

    def count_stall_decision(self, job: Optional[Job] = None) -> None:
        """Policy hook: an explicit stall decision was taken."""
        self._stall_decisions += 1
        if self.metrics is not None:
            self.metrics.counter("sim.stall_decisions").inc()
        if self.recorder.enabled and job is not None:
            self.recorder.emit(
                StallDecision(
                    cycle=self.now,
                    job_id=job.job_id,
                    benchmark=job.benchmark,
                )
            )

    def count_non_best_decision(self, job: Optional[Job] = None) -> None:
        """Policy hook: an explicit run-on-non-best decision was taken."""
        self._non_best_decisions += 1
        if self.metrics is not None:
            self.metrics.counter("sim.non_best_decisions").inc()
        if job is not None:
            self._non_best_next = job.job_id

    # -- open-system streaming ----------------------------------------------

    def stream(
        self,
        process,
        config,
        *,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        resume_from=None,
    ):
        """Open-system run: consume an unbounded arrival process.

        Drives a :class:`~repro.sim.stream.StreamingSimulation` built
        from this simulation's configuration — the fast engine's event
        loop fed in bounded chunks from ``process``, with streaming
        metric accumulation, admission control and deterministic
        checkpoint/resume — and returns its
        :class:`~repro.sim.stream.StreamResult`.

        ``config`` is a :class:`~repro.sim.stream.StreamConfig`
        bounding the run (``max_jobs`` and/or ``duration_cycles``).
        ``checkpoint_path`` enables periodic atomic snapshots every
        ``checkpoint_every`` completions; ``resume_from`` (a snapshot
        dict or a checkpoint file path) continues a previous run
        bit-identically instead of starting fresh.

        Streaming is fast-engine-only: an unbounded run cannot retain
        per-event traces, per-job records or mid-run hook state, so —
        exactly like ``engine='fast'`` — tracing, metrics, validation
        and fault injection are rejected up front.  Sampled telemetry
        (the ``telemetry`` constructor argument) is the exception: it
        fires at refill boundaries in O(1) memory, so it rides along on
        the fast path and into the stream's checkpoints.
        """
        if self.policy.orders_queue:
            raise ValueError(
                f"streaming does not support the policy-ordered ready "
                f"queue of policy {self.policy.name!r} (reference engine "
                "only); use a queue discipline (e.g. discipline='edf') "
                "for deadline ordering in open-system runs"
            )
        if self.engine_mode == "reference" or not self._fast_eligible():
            raise ValueError(
                "streaming is incompatible with tracing, metrics, "
                "validation, fault injection and engine='reference': "
                "an open-system run is unbounded, so per-event hooks "
                "would retain unbounded state.  Drop the hooks (use "
                "engine='auto' or 'fast') and either attach sampled "
                "telemetry (telemetry=Telemetry(...), or "
                "--telemetry-out / --progress on the CLI) for "
                "chunk-boundary time-series, or read windowed metrics "
                "from the StreamResult — waiting/turnaround "
                "P50/P90/P99 snapshots, throughput, energy and shed "
                "rates are accumulated in O(1) memory."
            )
        from repro.sim.stream import StreamingSimulation, read_checkpoint

        streaming = StreamingSimulation(
            self.system,
            self.policy,
            self.store,
            predictor=self.predictor,
            energy_table=self.energy_table,
            tuner_costs=self._tuner_costs,
            profiling_overhead_fraction=self.profiling_overhead_fraction,
            discipline=self.discipline,
            preemptive=self.preemptive,
            preemption_quantum_cycles=self.preemption_quantum_cycles,
            preload_profiles=self._preload_profiles_requested,
            config=config,
            telemetry=self.telemetry,
            power=self.power,
        )
        if resume_from is not None:
            snapshot = (
                read_checkpoint(resume_from)
                if isinstance(resume_from, str)
                else resume_from
            )
            return streaming.resume(
                snapshot,
                process,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
            )
        return streaming.run(
            process,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    # -- main loop -----------------------------------------------------------

    def run(self, arrivals: Sequence[JobArrival]) -> SimulationResult:
        """Simulate the full arrival stream to completion."""
        if self._resolve_engine() == "fast":
            # Imported lazily: the reference path stays importable even
            # if the fast engine's dependencies are unavailable.
            from repro.core.fastpath import run_fast

            return run_fast(self, arrivals)
        if not arrivals:
            raise ValueError("need at least one arrival")
        for arrival in arrivals:
            if arrival.benchmark not in self.store:
                raise KeyError(
                    f"benchmark {arrival.benchmark!r} missing from the "
                    "characterisation store"
                )
            job = Job(
                job_id=arrival.job_id,
                benchmark=arrival.benchmark,
                arrival_cycle=arrival.arrival_cycle,
                priority=arrival.priority,
                deadline_cycle=arrival.deadline_cycle,
            )
            self.engine.schedule_at(
                arrival.arrival_cycle, EventKind.ARRIVAL, payload=job
            )
        if self._faults is not None:
            self._faults.schedule_windows()
        self.engine.run(self._handle)
        if self.queue:
            raise RuntimeError(
                f"simulation drained with {len(self.queue)} jobs still queued"
            )
        return self._result()

    def run_dags(self, graphs) -> SimulationResult:
        """Simulate a task-graph workload with precedence gating.

        Each :class:`~repro.workloads.dag.TaskGraph` is lowered to jobs
        with globally sequential ids (graph order, then task order —
        the numbering :func:`~repro.workloads.dag.dag_arrivals` mirrors,
        so an edge-free graph set runs bit-identically to its lowered
        plain-arrival equivalent).  A graph's *root* tasks enter the
        ready queue as ordinary arrivals at the graph's arrival cycle;
        every other task is released — pushed, counted and traced as
        :class:`~repro.obs.events.TaskReady` — only when its last
        predecessor completes.  Per-task deadlines are materialised as
        ``graph.arrival_cycle + deadline_offset``.

        DAG runs are reference-engine only: precedence gating hooks the
        completion path, which the struct-of-arrays fast engine
        compiles out.  ``engine='auto'`` routes here transparently;
        ``engine='fast'`` is rejected up front, naming the limitation.
        """
        from repro.workloads.dag import TaskGraph

        if not graphs:
            raise ValueError("need at least one task graph")
        if self.engine_mode == "fast":
            raise ValueError(
                "engine='fast' does not implement precedence gating: a "
                "DAG task is released only when its predecessors "
                "complete, which hooks the reference loop's completion "
                "path.  Use engine='auto' or engine='reference' for "
                "task-graph workloads"
            )
        if self.telemetry is not None:
            raise ValueError(
                "telemetry is the sampled observability of the fast and "
                "streaming engines, and DAG runs are reference-engine "
                "only; drop telemetry (attach recorder/metrics hooks "
                "for full-fidelity DAG observability instead)"
            )
        seen_graphs: set = set()
        for graph in graphs:
            if not isinstance(graph, TaskGraph):
                raise TypeError(
                    f"expected TaskGraph, got {type(graph).__name__}"
                )
            if graph.graph_id in seen_graphs:
                raise ValueError(f"duplicate graph id {graph.graph_id}")
            seen_graphs.add(graph.graph_id)
            for task in graph.tasks:
                if task.benchmark not in self.store:
                    raise KeyError(
                        f"benchmark {task.benchmark!r} missing from the "
                        "characterisation store"
                    )

        self._dag_successors = {}
        self._dag_remaining = {}
        self._dag_meta = {}
        assignments = []
        roots: List[Job] = []
        next_id = 0
        for graph in graphs:
            by_task: Dict[int, Job] = {}
            for task in graph.tasks:
                deadline = (
                    None
                    if task.deadline_offset is None
                    else graph.arrival_cycle + task.deadline_offset
                )
                job = Job(
                    job_id=next_id,
                    benchmark=task.benchmark,
                    arrival_cycle=graph.arrival_cycle,
                    priority=task.priority,
                    deadline_cycle=deadline,
                )
                next_id += 1
                by_task[task.task_id] = job
                self._dag_meta[job.job_id] = (graph.graph_id, task.task_id)
                self._dag_remaining[job.job_id] = len(task.predecessors)
                if not task.predecessors:
                    roots.append(job)
            for task in graph.tasks:
                for pred in task.predecessors:
                    self._dag_successors.setdefault(
                        by_task[pred].job_id, []
                    ).append(by_task[task.task_id])
            assignments.append((graph, by_task))

        # Rank-based policies precompute per-job urgency up front.
        self.policy.observe_graphs(assignments, self)
        if self.metrics is not None:
            self.metrics.counter("sim.dag.graphs").inc(len(graphs))
        for job in roots:
            self.engine.schedule_at(
                job.arrival_cycle, EventKind.ARRIVAL, payload=job
            )
        if self._faults is not None:
            self._faults.schedule_windows()
        self.engine.run(self._handle)
        if self.queue:
            raise RuntimeError(
                f"simulation drained with {len(self.queue)} jobs still queued"
            )
        unreleased = sorted(
            job_id
            for job_id, count in self._dag_remaining.items()
            if count > 0
        )
        if unreleased:
            raise RuntimeError(
                f"simulation drained with {len(unreleased)} tasks never "
                f"released (jobs {unreleased[:10]}); a predecessor never "
                "completed"
            )
        return self._result()

    def _handle(self, event: Event) -> None:
        if event.kind is EventKind.ARRIVAL:
            job = event.payload
            job.last_enqueue_cycle = self.now
            self.queue.push(job)
            if self._validator is not None:
                self._validator.on_arrival(job)
            if self.metrics is not None:
                self.metrics.counter("sim.jobs_arrived").inc()
            if self.recorder.enabled:
                self.recorder.emit(
                    JobArrived(
                        cycle=self.now,
                        job_id=job.job_id,
                        benchmark=job.benchmark,
                    )
                )
        elif event.kind is EventKind.COMPLETION:
            self._complete(event.payload)
        elif event.kind is EventKind.GENERIC and self._faults is not None:
            # Fault edges and retry wakeups; at equal timestamps the
            # engine orders COMPLETION < ARRIVAL < GENERIC, so a core
            # failing at cycle t never kills a job that finished at t.
            self._faults.handle(event.payload)
        else:  # pragma: no cover - no other generic events exist
            raise ValueError(f"unexpected event kind {event.kind}")
        self._dispatch()
        if self._validator is not None:
            self._validator.after_event()
        if self.metrics is not None:
            self.metrics.histogram("sim.queue_depth").observe(len(self.queue))

    # -- dispatch ------------------------------------------------------------

    def _queue_view(self):
        """Queued jobs in the active service order.

        An ordering policy (``policy.orders_queue``) supersedes the
        queue discipline: jobs sort by :meth:`SchedulingPolicy.queue_key`
        (stable, so ties stay FIFO).  The view is cached against the
        queue's mutation counter plus the policy's ``order_version``: a
        dispatch round that scans many jobs without assigning reuses one
        sorted copy, and a rank update on dispatch (which mutates no
        queue membership) still invalidates through the version bump.
        For the discipline sorts the keys — priority, deadline — are
        immutable, so only queue membership changes can invalidate.
        """
        policy = self.policy
        cached = self._queue_view_cache
        key = (
            self.queue.mutations,
            policy.order_version if policy.orders_queue else 0,
        )
        if cached is not None and cached[0] == key:
            return cached[1]
        jobs = list(self.queue)
        if policy.orders_queue:
            jobs.sort(key=lambda j: policy.queue_key(j, self))
        elif self.discipline == "priority":
            # Stable sort: FIFO among equal priorities.
            jobs.sort(key=lambda j: -j.priority)
        elif self.discipline == "edf":
            infinity = float("inf")
            jobs.sort(
                key=lambda j: (
                    infinity if j.deadline_cycle is None else j.deadline_cycle
                ),
            )
        self._queue_view_cache = (key, jobs)
        return jobs

    def _dispatch(self) -> None:
        """Assign queued jobs until no further assignment is possible."""
        faults = self._faults
        while True:
            assigned = False
            if any(core.is_idle(self.now) for core in self.cores):
                for job in self._queue_view():
                    if faults is not None and not faults.eligible(job):
                        continue  # dispatch-failure backoff pending
                    assignment = None
                    if faults is not None:
                        assignment = faults.surrender_assignment(job)
                    if assignment is None:
                        assignment = self._choose(job)
                    if assignment is None:
                        continue
                    if faults is not None:
                        assignment = faults.filter_dispatch(job, assignment)
                        if assignment is None:
                            continue  # dispatch failed; backoff scheduled
                    if self._power_pool is not None:
                        assignment = self._power_gate(job, assignment)
                        if assignment is None:
                            continue  # throttled: wait for tokens
                    self.queue.remove(job)
                    self._start(job, assignment)
                    assigned = True
                    break  # core states changed; rescan the queue
            if assigned:
                continue
            if self.preemptive and self._try_preempt():
                continue
            if faults is not None:
                forced = faults.break_deadlock()
                if forced is not None:
                    job, assignment = forced
                    self.queue.remove(job)
                    self._start(job, assignment)
                    continue
            return

    # -- preemption ----------------------------------------------------------

    def _urgency(self, job: Job) -> float:
        """Larger is more urgent, per the active discipline."""
        if self.discipline == "priority":
            return float(job.priority)
        # edf: earlier deadline = more urgent; deadline-free = least.
        if job.deadline_cycle is None:
            return float("-inf")
        return -float(job.deadline_cycle)

    def _try_preempt(self) -> bool:
        """Preempt one strictly-less-urgent running job, if any.

        A victim is preempted at most once per timestamp (bounds churn
        when the policy then declines the freed core); profiling runs
        are never preempted.
        """
        if self._preempted_now_cycle != self.now:
            self._preempted_now_cycle = self.now
            self._preempted_now.clear()
        already = self._preempted_now
        quantum = self.preemption_quantum_cycles
        running = [
            core for core in self.cores
            if core.current_job is not None
            and core.current_job.job_id not in already
            and not self._pending[core.index].assignment.profiling
            and core.busy_until > self.now
            and self.now - core.run_started_at >= quantum
            and core.busy_until - self.now >= quantum
        ]
        if not running:
            return False
        for job in self._queue_view():
            victim_core = min(
                running, key=lambda c: self._urgency(c.current_job)
            )
            if self._urgency(job) <= self._urgency(victim_core.current_job):
                continue
            self._preempt_core(victim_core)
            return True
        return False

    def _preempt_core(self, core: CoreState) -> None:
        """Halt a core's execution; requeue the victim's remaining work."""
        self._requeue_from_core(core, reason="preemption")

    def _requeue_from_core(self, core: CoreState, *, reason: str) -> None:
        """Shared requeue path for preemptions and core failures.

        Both interruption kinds follow the exact same accounting —
        pro-rata refund of the charges made at start, remaining-fraction
        bookkeeping, ``waiting_cycles`` resumption via
        ``last_enqueue_cycle`` — so the PR-4 refund semantics hold
        identically under fault injection.  Only the scheduler-facing
        side effects differ: a ``preemption`` counts toward the
        preemption statistics and the per-timestamp churn guard, a
        ``core_failure`` toward the ``sim.faults.requeued`` counter.
        """
        pending = self._pending.pop(core.index)
        victim, fraction_run = core.preempt(self.now)
        if reason == "preemption":
            self._preempted_now.add(victim.job_id)
            self._preemption_count += 1
        # Refund the unexecuted share of the charges made at start.
        refund = 1.0 - fraction_run
        refund_dynamic = pending.dynamic_charged_nj * refund
        refund_static = pending.static_charged_nj * refund
        refund_overhead = pending.overhead_charged_nj * refund
        self._dynamic_nj -= refund_dynamic
        self._busy_static_nj -= refund_static
        self._profiling_overhead_nj -= refund_overhead
        victim.charged_energy_nj -= refund_dynamic + refund_static
        victim.remaining_fraction = (
            pending.fraction_at_start * (1.0 - fraction_run)
        )
        victim.preemptions += 1
        victim.last_enqueue_cycle = self.now
        token_refund = None
        if self._power_pool is not None:
            # Tokens return through the same refund floats the energy
            # path computed, so the ledger's token account balances
            # bit-for-bit against the execution charges.
            token_refund = refund_dynamic + refund_static
            self._power_pool.refund(victim.job_id, token_refund)
            if self.metrics is not None:
                self.metrics.counter("sim.power.refunds").inc()
        self.queue.push(victim)
        if self._validator is not None:
            self._validator.on_preempt(
                victim, core,
                fraction_run=fraction_run,
                refund_dynamic_nj=refund_dynamic,
                refund_static_nj=refund_static,
                refund_overhead_nj=refund_overhead,
                token_nj=token_refund,
            )
        if self.metrics is not None:
            if reason == "preemption":
                self.metrics.counter("sim.preemptions").inc()
            else:
                self.metrics.counter("sim.faults.requeued").inc()
        if self.recorder.enabled:
            self.recorder.emit(
                JobPreempted(
                    cycle=self.now,
                    job_id=victim.job_id,
                    core_index=core.index,
                    benchmark=victim.benchmark,
                    category=pending.category,
                    fraction_run=fraction_run,
                    refunded_dynamic_nj=refund_dynamic,
                    refunded_static_nj=refund_static,
                    refunded_overhead_nj=refund_overhead,
                    reason=reason,
                )
            )

    def _choose(self, job: Job) -> Optional[Assignment]:
        if self.policy.requires_profiling and not self.table.has_profile(
            job.benchmark
        ):
            # Unprofiled job: it must first execute on a profiling core
            # in the base configuration (primary first, §III).
            for spec in self.system.profiling_cores:
                core = self.cores[spec.index]
                if core.is_idle(self.now) and spec.supports(BASE_CONFIG):
                    return Assignment(
                        core_index=spec.index,
                        config=BASE_CONFIG,
                        profiling=True,
                    )
            return None
        return self.policy.choose(job, self)

    def _power_gate(
        self, job: Job, assignment: Assignment
    ) -> Optional[Assignment]:
        """Price the dispatch in power tokens; degrade or defer it.

        Returns the (possibly degraded) assignment to start, or ``None``
        when the job must wait for tokens.  The preferred option is the
        policy's choice at the policy's operating point (nominal when
        the policy abstains); when it is unaffordable, strictly cheaper
        (config × DVFS) options *on the same core* are tried most
        expensive first — the minimal degradation — subject to the
        slack-percentage deadline test.  Profiling and tuning runs pin
        their configuration, so only the DVFS axis may degrade them.
        When nothing is affordable but no tokens are held anywhere, the
        preferred option is granted as an *overdraft* — the progress
        guarantee that a drained system always dispatches.
        """
        from repro.energy.scaling import scaled_charges
        from repro.power.budget import pick_degraded

        power = self.power
        pool = self._power_pool
        core = self.cores[assignment.core_index]
        table = power.dvfs
        point = None
        if table is not None:
            name = assignment.dvfs
            if name is None:
                name = self.policy.choose_dvfs(job, core, table)
            point = table.default if name is None else table.get(name)
        preferred = Assignment(
            core_index=assignment.core_index,
            config=assignment.config,
            profiling=assignment.profiling,
            tuning=assignment.tuning,
            dvfs=None if point is None else point.name,
        )
        fraction = job.remaining_fraction
        estimate = self._estimate(job.benchmark, assignment.config)
        work, dynamic, static = scaled_charges(
            estimate.total_cycles,
            estimate.energy.dynamic_nj,
            estimate.energy.static_nj,
            fraction,
            point,
        )
        price = dynamic + static
        size_kb = core.spec.cache_size_kb
        if pool.affordable(price, size_kb):
            return preferred

        # Degradation ladder: (config × operating point) on this core,
        # enumerated configs-ascending × table order so the fast engine
        # ranks candidates identically.
        points = (point,) if table is None else tuple(table)
        if assignment.profiling or assignment.tuning:
            configs = (assignment.config,)
        else:
            configs = core.spec.configs
        candidates = []
        rank = 0
        for config in configs:
            try:
                cand = self._estimate(job.benchmark, config)
            except KeyError:
                rank += len(points)
                continue
            for option in points:
                cand_work, cand_dyn, cand_sta = scaled_charges(
                    cand.total_cycles,
                    cand.energy.dynamic_nj,
                    cand.energy.static_nj,
                    fraction,
                    option,
                )
                candidates.append(
                    (cand_dyn + cand_sta, cand_work, rank, (config, option))
                )
                rank += 1
        chosen = pick_degraded(
            pool,
            size_kb,
            price,
            candidates,
            now=self.now,
            arrival_cycle=job.arrival_cycle,
            deadline_cycle=job.deadline_cycle,
            slack_pct=power.slack_pct,
        )
        if chosen is not None:
            config, option = chosen
            pool.degraded += 1
            if self.metrics is not None:
                self.metrics.counter("sim.power.degraded").inc()
            if self.recorder.enabled:
                self.recorder.emit(
                    PowerThrottled(
                        cycle=self.now,
                        job_id=job.job_id,
                        benchmark=job.benchmark,
                        reason="degraded",
                        price_nj=price,
                    )
                )
            return Assignment(
                core_index=assignment.core_index,
                config=config,
                profiling=assignment.profiling,
                tuning=assignment.tuning,
                dvfs=None if option is None else option.name,
            )
        if pool.idle():
            # Progress guarantee: with no tokens held anywhere, the
            # preferred dispatch always proceeds (counted as an
            # overdraft when it exceeds the configured caps).
            pool.overdrafts += 1
            if self.metrics is not None:
                self.metrics.counter("sim.power.overdrafts").inc()
            if self.recorder.enabled:
                self.recorder.emit(
                    PowerThrottled(
                        cycle=self.now,
                        job_id=job.job_id,
                        benchmark=job.benchmark,
                        reason="overdraft",
                        price_nj=price,
                    )
                )
            return preferred
        pool.throttled += 1
        if self.metrics is not None:
            self.metrics.counter("sim.power.throttled").inc()
        if self.recorder.enabled:
            self.recorder.emit(
                PowerThrottled(
                    cycle=self.now,
                    job_id=job.job_id,
                    benchmark=job.benchmark,
                    reason="wait",
                    price_nj=price,
                )
            )
        return None

    def _start(self, job: Job, assignment: Assignment) -> None:
        core = self.cores[assignment.core_index]
        if not core.spec.supports(assignment.config):
            raise ValueError(
                f"{core.spec.name} cannot install {assignment.config.name}"
            )
        previous_config = core.current_config
        cost = core.tuner.reconfigure(assignment.config)
        if assignment.config != previous_config:
            # Close the outgoing configuration's residency interval so
            # idle leakage integrates at the static power that was
            # actually installed during each idle stretch.
            core.note_reconfigured(self.now, previous_config)
        self._reconfig_nj += cost.energy_nj
        self._reconfig_cycles += cost.cycles

        estimate = self._estimate(job.benchmark, assignment.config)
        # A preempted job resumes with only its remaining work; cycles
        # and energy are charged pro-rata (the lost cache state is
        # approximated by the cold-cache characterisation itself).
        fraction = job.remaining_fraction
        if not 0.0 < fraction <= 1.0:
            raise RuntimeError(
                f"job {job.job_id} has invalid remaining fraction {fraction}"
            )
        overhead_cycles = 0
        overhead_nj = 0.0
        if assignment.profiling:
            overhead_cycles = int(
                round(estimate.total_cycles * self.profiling_overhead_fraction)
            )
            overhead_nj = (
                estimate.total_energy_nj * self.profiling_overhead_fraction
            )
            self._profiling_overhead_nj += overhead_nj
            self._profiling_executions += 1
        if assignment.tuning and fraction == 1.0:
            self._tuning_executions += 1

        token_grant = None
        if self._power_pool is not None:
            from repro.energy.scaling import scaled_charges

            point = None
            if self.power.dvfs is not None and assignment.dvfs is not None:
                point = self.power.dvfs.get(assignment.dvfs)
            work_cycles, dynamic_charge, static_charge = scaled_charges(
                estimate.total_cycles,
                estimate.energy.dynamic_nj,
                estimate.energy.static_nj,
                fraction,
                point,
            )
            token_grant = dynamic_charge + static_charge
            self._power_pool.grant(
                job.job_id, token_grant, core.spec.cache_size_kb
            )
            core.dvfs = assignment.dvfs
            if self.metrics is not None:
                self.metrics.counter("sim.power.grants").inc()
        else:
            dynamic_charge = estimate.energy.dynamic_nj * fraction
            static_charge = estimate.energy.static_nj * fraction
            work_cycles = max(1, int(round(estimate.total_cycles * fraction)))
        self._dynamic_nj += dynamic_charge
        self._busy_static_nj += static_charge
        job.charged_energy_nj += dynamic_charge + static_charge

        service = work_cycles + cost.cycles + overhead_cycles
        if self._faults is not None:
            # Transient slowdown dilates occupancy only; energy charges
            # stay estimate-based, so the ledger's busy/idle split (both
            # derived from the same dilated busy cycles) stays balanced.
            service = self._faults.scale_service(core.index, service, job)
        if job.start_cycle is None:
            job.start_cycle = self.now
        enqueued_at = (
            job.last_enqueue_cycle
            if job.last_enqueue_cycle is not None
            else job.arrival_cycle
        )
        job.waiting_cycles += self.now - enqueued_at
        job.last_enqueue_cycle = None
        core.begin(job, self.now, service)
        # Rank-updating policies (HEFT) react to the dispatch; a no-op
        # for the paper's four systems.
        self.policy.on_dispatch(job, self)
        if self._validator is not None:
            self._validator.on_dispatch(
                job, core,
                dynamic_nj=dynamic_charge,
                static_nj=static_charge,
                overhead_nj=overhead_nj,
                reconfig_nj=cost.energy_nj,
                token_nj=token_grant,
            )

        # Dispatch category, by precedence: a profiling run trumps
        # everything, a tuning trial trumps the policy's non-best flag.
        if assignment.profiling:
            category = "profiling"
        elif assignment.tuning:
            category = "tuning"
        elif self._non_best_next == job.job_id:
            category = "non_best"
        else:
            category = "best"
        if self._non_best_next == job.job_id:
            self._non_best_next = None

        self._pending[core.index] = _PendingExecution(
            job,
            assignment,
            estimate,
            fraction_at_start=fraction,
            dynamic_charged_nj=dynamic_charge,
            static_charged_nj=static_charge,
            overhead_charged_nj=overhead_nj,
            category=category,
        )
        self.engine.schedule_at(
            self.now + service,
            EventKind.COMPLETION,
            payload=(core.index, core.epoch),
        )

        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("sim.executions").inc()
            metrics.counter(f"sim.dispatch.{category}").inc()
            metrics.histogram("sim.service_cycles").observe(service)
            if assignment.profiling:
                metrics.counter("sim.profiling_executions").inc()
            elif assignment.tuning:
                metrics.counter("sim.tuning_executions").inc()
            if cost.cycles or cost.energy_nj:
                metrics.counter("sim.reconfigurations").inc()

        rec = self.recorder
        if rec.enabled:
            if cost.cycles or cost.energy_nj:
                rec.emit(
                    ConfigInstalled(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core.index,
                        config=assignment.config.name,
                        cycles=cost.cycles,
                        energy_nj=cost.energy_nj,
                    )
                )
            if category == "profiling":
                rec.emit(
                    ProfilingStarted(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core.index,
                        benchmark=job.benchmark,
                    )
                )
            elif category == "tuning":
                session = self.heuristic.session(
                    job.benchmark, assignment.config.size_kb
                )
                rec.emit(
                    TuningStep(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core.index,
                        benchmark=job.benchmark,
                        config=assignment.config.name,
                        step=session.exploration_count + 1,
                    )
                )
            elif category == "non_best":
                rec.emit(
                    NonBestDispatch(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core.index,
                        benchmark=job.benchmark,
                        config=assignment.config.name,
                        predicted_size_kb=self.predicted_size_kb(job),
                    )
                )
            rec.emit(
                EnergyAccrued(
                    cycle=self.now,
                    job_id=job.job_id,
                    core_index=core.index,
                    benchmark=job.benchmark,
                    category=category,
                    dynamic_nj=dynamic_charge,
                    static_nj=static_charge,
                    overhead_nj=overhead_nj,
                    service_cycles=service,
                )
            )
            if token_grant is not None:
                rec.emit(
                    TokenGrant(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core.index,
                        benchmark=job.benchmark,
                        config=assignment.config.name,
                        dvfs=assignment.dvfs or "",
                        tokens_nj=token_grant,
                    )
                )

    # -- completion ----------------------------------------------------------

    def _complete(self, payload) -> None:
        core_index, epoch = payload
        core = self.cores[core_index]
        if epoch != core.epoch:
            # Stale completion: the execution it announced was preempted.
            return
        pending = self._pending.pop(core_index)
        job = core.finish(self.now)
        if job is not pending.job:  # pragma: no cover - internal invariant
            raise RuntimeError("completion does not match pending execution")
        job.completion_cycle = self.now
        job.remaining_fraction = 0.0
        if self._power_pool is not None:
            # Settle the dispatch's token grant: the energy was spent.
            self._power_pool.consume(job.job_id)

        assignment = pending.assignment
        estimate = pending.estimate
        benchmark = job.benchmark

        # Knowledge updates only for complete, uninterrupted executions —
        # a resumed partial run is not a valid measurement of the
        # configuration.
        full_run = pending.fraction_at_start == 1.0
        if full_run:
            # The execution's measured energy/cycles enter the profiling
            # table (the paper's "performance and energy consumption of
            # any core configurations that have been explored").
            self.table.record_execution(
                benchmark,
                assignment.config,
                estimate.total_energy_nj,
                estimate.total_cycles,
            )

        if assignment.profiling:
            counters = self._counters(benchmark)
            if self._faults is not None:
                counters = self._faults.perturb_counters(benchmark, counters)
            self.table.record_profiling(benchmark, counters)
            if self.recorder.enabled:
                self.recorder.emit(
                    ProfilingCompleted(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core_index,
                        benchmark=benchmark,
                    )
                )
            if self.policy.uses_predictor:
                if (
                    self._faults is not None
                    and not self._faults.predictor_available()
                ):
                    # Predictor outage: fall back to the base-config
                    # size heuristic (no hit/miss accounting — no
                    # prediction was made).
                    size = self._faults.fallback_prediction(job, core_index)
                    self.table.record_prediction(benchmark, size)
                else:
                    size = self.predictor.predict_size_kb(
                        benchmark, counters
                    )
                    if self._faults is not None:
                        size = self._faults.perturb_prediction(
                            job, core_index, size
                        )
                    self.table.record_prediction(benchmark, size)
                    if self.metrics is not None or self.recorder.enabled:
                        best = self.store.best_size_kb(benchmark)
                        if self.metrics is not None:
                            hit = "hits" if size == best else "misses"
                            self.metrics.counter(
                                f"sim.predictor_{hit}"
                            ).inc()
                        if self.recorder.enabled:
                            self.recorder.emit(
                                SizePredicted(
                                    cycle=self.now,
                                    job_id=job.job_id,
                                    core_index=core_index,
                                    benchmark=benchmark,
                                    size_kb=size,
                                    best_size_kb=best,
                                )
                            )

        if full_run and assignment.tuning and self.policy.uses_predictor:
            session = self.heuristic.session(
                benchmark, assignment.config.size_kb
            )
            if not session.done and session.next_config() == assignment.config:
                session.record(assignment.config, estimate.total_energy_nj)
                if session.done:
                    self.table.mark_tuned(benchmark, assignment.config.size_kb)

        # The job's attributed energy is what was actually charged over
        # all its slices (pro-rata, refunds netted) — for a never-
        # preempted job this equals the estimate's total exactly.
        charged_nj = job.charged_energy_nj
        waiting = job.waiting_cycles
        self._records.append(
            JobRecord(
                job_id=job.job_id,
                benchmark=benchmark,
                arrival_cycle=job.arrival_cycle,
                start_cycle=job.start_cycle,
                completion_cycle=job.completion_cycle,
                core_index=core_index,
                config_name=assignment.config.name,
                profiled=assignment.profiling,
                tuning=assignment.tuning,
                energy_nj=charged_nj,
                priority=job.priority,
                deadline_cycle=job.deadline_cycle,
                preemptions=job.preemptions,
                waiting_cycles=waiting,
            )
        )

        if self._faults is not None:
            # Table eviction/corruption draws happen once per
            # completion, after all knowledge updates for this job.
            self._faults.after_completion(benchmark)

        if self._validator is not None:
            self._validator.on_complete(job, core_index)
        if self.metrics is not None:
            metrics = self.metrics
            metrics.counter("sim.jobs_completed").inc()
            metrics.histogram("sim.waiting_cycles").observe(waiting)
            metrics.histogram("sim.turnaround_cycles").observe(
                job.completion_cycle - job.arrival_cycle
            )
        if self.recorder.enabled:
            self.recorder.emit(
                JobCompleted(
                    cycle=self.now,
                    job_id=job.job_id,
                    core_index=core_index,
                    benchmark=benchmark,
                    config=assignment.config.name,
                    category=pending.category,
                    energy_nj=charged_nj,
                    waiting_cycles=waiting,
                )
            )

        # Deadline accounting (any run whose jobs carry deadlines, DAG
        # or plain): slack is signed, a miss is strictly negative slack.
        deadline = job.deadline_cycle
        if deadline is not None:
            slack = deadline - self.now
            if self.metrics is not None:
                self.metrics.counter("sim.deadline.jobs").inc()
                self.metrics.histogram("sim.deadline.slack_cycles").observe(
                    slack
                )
                if slack < 0:
                    self.metrics.counter("sim.deadline.misses").inc()
            if slack < 0 and self.recorder.enabled:
                self.recorder.emit(
                    DeadlineMiss(
                        cycle=self.now,
                        job_id=job.job_id,
                        core_index=core_index,
                        benchmark=benchmark,
                        deadline_cycle=deadline,
                        miss_cycles=self.now - deadline,
                    )
                )

        if self._dag_successors is not None:
            self._release_successors(job)

    def _release_successors(self, job: Job) -> None:
        """Push DAG successors whose last predecessor just completed.

        A release is the DAG analogue of an arrival: the task enters
        the ready queue, the queue-conservation validator and the
        ``sim.jobs_arrived`` counter see it exactly like an arrival,
        and the trace carries a :class:`TaskReady` instead of a
        :class:`JobArrived`.  Successors release in task-declaration
        order, keeping the stream deterministic.
        """
        for successor in self._dag_successors.get(job.job_id, ()):
            remaining = self._dag_remaining[successor.job_id] - 1
            self._dag_remaining[successor.job_id] = remaining
            if remaining:
                continue
            successor.last_enqueue_cycle = self.now
            self.queue.push(successor)
            if self._validator is not None:
                self._validator.on_arrival(successor)
            if self.metrics is not None:
                self.metrics.counter("sim.jobs_arrived").inc()
                self.metrics.counter("sim.dag.tasks_released").inc()
            if self.recorder.enabled:
                graph_id, task_id = self._dag_meta[successor.job_id]
                self.recorder.emit(
                    TaskReady(
                        cycle=self.now,
                        job_id=successor.job_id,
                        benchmark=successor.benchmark,
                        graph_id=graph_id,
                        task_id=task_id,
                    )
                )

    # -- result assembly ------------------------------------------------------

    def _result(self) -> SimulationResult:
        makespan = max((r.completion_cycle for r in self._records), default=0)
        # Idle leakage is integrated piecewise over each core's
        # config-residency intervals: a core that spent part of the run
        # under a different configuration leaks at *that* config's
        # static power for the idle cycles of that interval, not at the
        # final config's.  Idle cycles are grouped by power value per
        # core before multiplying, mirroring EnergyLedger.close_idle so
        # that validated and simulated totals agree bit-for-bit.
        idle_nj = 0.0
        for core in self.cores:
            per_power: Dict[float, int] = {}
            for start, end, config, busy in core.residency_intervals(makespan):
                idle_cycles = (end - start) - busy
                if idle_cycles < 0:  # pragma: no cover - internal invariant
                    raise RuntimeError(
                        f"{core.spec.name} busy beyond the makespan"
                    )
                power = self.energy_table.get(config).static_per_cycle_nj
                per_power[power] = per_power.get(power, 0) + idle_cycles
            for power, cycles in per_power.items():
                idle_nj += cycles * power
        predictions = {
            name: self.table.predicted_size_kb(name)
            for name in self.table.benchmarks()
            if self.table.predicted_size_kb(name) is not None
        }
        if self.metrics is not None:
            metrics = self.metrics
            metrics.gauge("sim.makespan_cycles").set(makespan)
            metrics.gauge("sim.energy.idle_nj").set(idle_nj)
            metrics.gauge("sim.energy.dynamic_nj").set(
                self._dynamic_nj
                + self._reconfig_nj
                + self._profiling_overhead_nj
            )
            metrics.gauge("sim.energy.busy_static_nj").set(
                self._busy_static_nj
            )
            metrics.gauge("sim.energy.reconfig_nj").set(self._reconfig_nj)
            metrics.gauge("sim.energy.profiling_overhead_nj").set(
                self._profiling_overhead_nj
            )
            metrics.gauge("sim.energy.total_nj").set(
                idle_nj
                + self._busy_static_nj
                + self._dynamic_nj
                + self._reconfig_nj
                + self._profiling_overhead_nj
            )
            for core in self.cores:
                prefix = f"sim.core.{core.index}"
                metrics.gauge(f"{prefix}.busy_cycles").set(core.busy_cycles)
                metrics.gauge(f"{prefix}.utilization").set(
                    core.busy_cycles / makespan if makespan else 0.0
                )
            if self._power_pool is not None:
                pool = self._power_pool
                metrics.gauge("sim.power.granted_nj").set(pool.granted_nj)
                metrics.gauge("sim.power.refunded_nj").set(pool.refunded_nj)
                metrics.gauge("sim.power.consumed_nj").set(pool.consumed_nj)
                metrics.gauge("sim.power.outstanding_nj").set(
                    pool.outstanding_nj
                )
            hits = metrics.counter("sim.predictor_hits").value
            misses = metrics.counter("sim.predictor_misses").value
            if hits + misses:
                metrics.gauge("sim.predictor.hit_rate").set(
                    hits / (hits + misses)
                )
            for steps in self.table.exploration_counts().values():
                metrics.histogram("sim.tuner.exploration_steps").observe(
                    steps
                )
        result = SimulationResult(
            policy=self.policy.name,
            jobs_completed=len(self._records),
            makespan_cycles=makespan,
            idle_energy_nj=idle_nj,
            dynamic_energy_nj=(
                self._dynamic_nj
                + self._reconfig_nj
                + self._profiling_overhead_nj
            ),
            busy_static_energy_nj=self._busy_static_nj,
            reconfig_energy_nj=self._reconfig_nj,
            profiling_overhead_nj=self._profiling_overhead_nj,
            reconfig_cycles=self._reconfig_cycles,
            stall_decisions=self._stall_decisions,
            non_best_decisions=self._non_best_decisions,
            tuning_executions=self._tuning_executions,
            profiling_executions=self._profiling_executions,
            preemption_count=self._preemption_count,
            core_busy_cycles={
                core.index: core.busy_cycles for core in self.cores
            },
            exploration_counts=dict(self.table.exploration_counts()),
            predictions_kb=predictions,
            jobs=list(self._records),
        )
        if self._validator is not None:
            self._validator.finish(result, makespan)
        return result
