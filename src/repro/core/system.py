"""Heterogeneous multicore system description.

The paper's sample architecture (its Figure 1) is a quad-core system in
which each core has a private configurable L1 and a fixed cache size
subsetting the design space:

* Core 1 — 2 KB,
* Core 2 — 4 KB,
* Core 3 — 8 KB, secondary profiling core,
* Core 4 — 8 KB, primary profiling core (runs the scheduler, the ANN and
  the profiling table; executes the base configuration 8KB_4W_64B when
  profiling).

"This general structure could be scaled up or down for different system
requirements" — :class:`SystemConfig` accepts any core list, and the
*base system* of the evaluation (all cores fixed at 8KB_4W_64B) is just
another instance (:func:`base_system`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache.config import (
    BASE_CONFIG,
    CacheConfig,
    configs_for_size,
)

__all__ = [
    "CoreSpec",
    "SystemConfig",
    "paper_system",
    "base_system",
    "scaled_system",
]


@dataclass(frozen=True)
class CoreSpec:
    """One core: a fixed cache size plus its tunable configurations.

    Attributes
    ----------
    index:
        Zero-based core index (Core 1 of the paper is index 0).
    cache_size_kb:
        The fixed L1 capacity of this core.
    profiling:
        Whether this core can run the profiler/scheduler (Cores 3 and 4).
    primary_profiling:
        Whether this is the primary profiling core (Core 4).
    initial_config:
        Configuration installed at reset; defaults to the largest
        associativity/line the size offers if not given.
    """

    index: int
    cache_size_kb: int
    profiling: bool = False
    primary_profiling: bool = False
    initial_config: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("core index must be non-negative")
        if self.primary_profiling and not self.profiling:
            raise ValueError("the primary profiling core must be a profiling core")
        if (
            self.initial_config is not None
            and self.initial_config.size_kb != self.cache_size_kb
        ):
            raise ValueError(
                f"initial config {self.initial_config.name} does not match "
                f"core cache size {self.cache_size_kb} KB"
            )

    @property
    def name(self) -> str:
        """Paper-style one-based name, e.g. ``Core 4``."""
        return f"Core {self.index + 1}"

    @property
    def configs(self) -> List[CacheConfig]:
        """All configurations this core's tuner can install."""
        return configs_for_size(self.cache_size_kb)

    @property
    def reset_config(self) -> CacheConfig:
        """The configuration installed at system reset."""
        if self.initial_config is not None:
            return self.initial_config
        return max(self.configs, key=lambda c: (c.assoc, c.line_b))

    def supports(self, config: CacheConfig) -> bool:
        """Whether the tuner can install ``config`` on this core."""
        return config.size_kb == self.cache_size_kb and config in self.configs


@dataclass(frozen=True)
class SystemConfig:
    """A complete machine: an ordered tuple of cores."""

    cores: Tuple[CoreSpec, ...]

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("a system needs at least one core")
        indices = [core.index for core in self.cores]
        if indices != list(range(len(self.cores))):
            raise ValueError("core indices must be 0..n-1 in order")
        if not any(core.profiling for core in self.cores):
            raise ValueError("a system needs at least one profiling core")
        primaries = [core for core in self.cores if core.primary_profiling]
        if len(primaries) != 1:
            raise ValueError("exactly one primary profiling core is required")

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def primary_profiling_core(self) -> CoreSpec:
        """Core 4's role: hosts the profiling table and the ANN."""
        return next(c for c in self.cores if c.primary_profiling)

    @property
    def profiling_cores(self) -> Tuple[CoreSpec, ...]:
        """Cores able to profile, primary first."""
        return tuple(
            sorted(
                (c for c in self.cores if c.profiling),
                key=lambda c: not c.primary_profiling,
            )
        )

    @property
    def cache_sizes_kb(self) -> Tuple[int, ...]:
        """Distinct cache sizes present, ascending."""
        return tuple(sorted({c.cache_size_kb for c in self.cores}))

    def cores_with_size(self, size_kb: int) -> Tuple[CoreSpec, ...]:
        """All cores whose fixed cache size is ``size_kb``."""
        return tuple(c for c in self.cores if c.cache_size_kb == size_kb)

    def nearest_size_kb(self, size_kb: int) -> int:
        """The closest available cache size to a requested one.

        The ANN's snapped prediction is always a design-space size, but a
        scaled-down system may not offer it; ties resolve to the smaller
        (lower-leakage) size.
        """
        return min(
            self.cache_sizes_kb,
            key=lambda s: (abs(s - size_kb), s),
        )


def paper_system() -> SystemConfig:
    """The paper's quad-core heterogeneous system (its Figure 1)."""
    return SystemConfig(
        cores=(
            CoreSpec(index=0, cache_size_kb=2),
            CoreSpec(index=1, cache_size_kb=4),
            CoreSpec(index=2, cache_size_kb=8, profiling=True),
            CoreSpec(
                index=3,
                cache_size_kb=8,
                profiling=True,
                primary_profiling=True,
                initial_config=BASE_CONFIG,
            ),
        )
    )


def scaled_system(core_sizes_kb: Sequence[int]) -> SystemConfig:
    """A heterogeneous system with the given per-core cache sizes.

    Implements §III's "this general structure could be scaled up or
    down": any mix of design-space cache sizes, e.g. ``(4, 8)`` for a
    dual-core or ``(2, 2, 4, 4, 8, 8, 8, 8)`` for an eight-core machine.
    The largest-cache cores become the profiling cores (the last one
    primary), mirroring the paper's choice of Core 4; profiling requires
    the base configuration, so at least one core must match its size.
    """
    sizes = list(core_sizes_kb)
    if not sizes:
        raise ValueError("need at least one core")
    if BASE_CONFIG.size_kb not in sizes:
        raise ValueError(
            f"at least one core must have the base configuration's "
            f"{BASE_CONFIG.size_kb} KB cache to host profiling"
        )
    base_size_indices = [
        i for i, size in enumerate(sizes) if size == BASE_CONFIG.size_kb
    ]
    primary = base_size_indices[-1]
    # Up to two profiling cores, like the paper's Cores 3 and 4.
    profiling = set(base_size_indices[-2:])
    cores = []
    for i, size in enumerate(sizes):
        cores.append(
            CoreSpec(
                index=i,
                cache_size_kb=size,
                profiling=i in profiling,
                primary_profiling=i == primary,
                initial_config=BASE_CONFIG if i == primary else None,
            )
        )
    return SystemConfig(cores=tuple(cores))


def base_system(num_cores: int = 4) -> SystemConfig:
    """The evaluation's base system: every core fixed at 8KB_4W_64B."""
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    cores = []
    for i in range(num_cores):
        cores.append(
            CoreSpec(
                index=i,
                cache_size_kb=BASE_CONFIG.size_kb,
                profiling=i == num_cores - 1,
                primary_profiling=i == num_cores - 1,
                initial_config=BASE_CONFIG,
            )
        )
    return SystemConfig(cores=tuple(cores))
