"""The cache tuning heuristic (paper §IV.F, its Figure 5).

When an application is scheduled to a core whose best configuration is
unknown, the heuristic determines it incrementally — one configuration
per execution — resuming across executions through the profiling table:

* explore the **associativity first** ("the associativity has the second
  largest impact on energy after the size"), then the line size;
* each parameter runs **smallest to largest** ("to minimise cache
  flushing");
* exploration starts at the smallest value of both parameters; a
  parameter keeps increasing **while energy decreases** and stops at the
  first increase (greedy hill descent) or at the parameter's maximum.

On a core of associativities {1, 2, 4} and line sizes {16, 32, 64} the
heuristic therefore tries at least 3 and at most 5 configurations of the
9 the core offers (the paper's bound of "a minimum of three ... and a
maximum of nine ... out of 18" counts both tuned parameters across the
subsetted cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.config import (
    LINE_SIZES_B,
    CacheConfig,
    associativities_for_size,
)

__all__ = ["TuningSession", "TuningHeuristic"]


@dataclass
class TuningSession:
    """Resumable heuristic state for one (application, cache size).

    The session is a small state machine: ``phase`` is the parameter
    currently being swept (``assoc`` then ``line`` by default), and
    ``done`` after both sweeps converge.  Feed it measurements with
    :meth:`record`; ask what to run next with :meth:`next_config`.

    ``line_first=True`` swaps the sweep order (line size before
    associativity) — the paper argues associativity-first is right
    because "the associativity has the second largest impact on energy
    after the size"; the tuning-order ablation benchmark measures that
    choice.
    """

    size_kb: int
    line_first: bool = False
    phase: str = ""
    best_config: Optional[CacheConfig] = None
    best_energy_nj: float = float("inf")
    explored: List[CacheConfig] = field(default_factory=list)
    _first_index: int = 0
    _second_index: int = 0
    _chosen_first: Optional[int] = None

    def __post_init__(self) -> None:
        assoc_values = associativities_for_size(self.size_kb)
        line_values = tuple(sorted(LINE_SIZES_B))
        if self.line_first:
            self._first_values: Tuple[int, ...] = line_values
            self._second_values: Tuple[int, ...] = assoc_values
        else:
            self._first_values = assoc_values
            self._second_values = line_values
        if not self.phase:
            self.phase = "first"

    def _build_config(self, first: int, second: int) -> CacheConfig:
        if self.line_first:
            return CacheConfig(size_kb=self.size_kb, assoc=second, line_b=first)
        return CacheConfig(size_kb=self.size_kb, assoc=first, line_b=second)

    @property
    def done(self) -> bool:
        """Whether the best configuration for this size is now known."""
        return self.phase == "done"

    def next_config(self) -> Optional[CacheConfig]:
        """The configuration the next execution should use, or None."""
        if self.phase == "first":
            return self._build_config(
                self._first_values[self._first_index], self._second_values[0]
            )
        if self.phase == "second":
            return self._build_config(
                self._chosen_first, self._second_values[self._second_index]
            )
        return None

    def record(self, config: CacheConfig, energy_nj: float) -> None:
        """Feed the measured energy of the configuration just executed.

        Advances the state machine per Figure 5's flow.
        """
        if self.done:
            raise RuntimeError("tuning session already complete")
        expected = self.next_config()
        if config != expected:
            raise ValueError(
                f"heuristic expected {expected.name}, got {config.name}"
            )
        if energy_nj < 0:
            raise ValueError("energy must be non-negative")
        self.explored.append(config)

        improved = energy_nj < self.best_energy_nj
        if improved:
            self.best_energy_nj = energy_nj
            self.best_config = config

        if self.phase == "first":
            at_max = self._first_index == len(self._first_values) - 1
            if improved and not at_max:
                self._first_index += 1
                return
            # Energy rose (or the range is exhausted): fix the best value
            # of the first parameter and sweep the second.
            self._chosen_first = (
                self.best_config.line_b
                if self.line_first
                else self.best_config.assoc
            )
            self.phase = "second"
            # The smallest value of the second parameter was already
            # measured during the first sweep (same config), so start at
            # the second value.
            self._second_index = 1
            if self._second_index >= len(self._second_values):
                self.phase = "done"
            return

        # phase == "second"
        at_max = self._second_index == len(self._second_values) - 1
        if improved and not at_max:
            self._second_index += 1
            return
        self.phase = "done"

    @property
    def exploration_count(self) -> int:
        """How many configurations this session has executed."""
        return len(self.explored)


class TuningHeuristic:
    """Factory/bookkeeper for tuning sessions across applications.

    Sessions are keyed by (benchmark, cache size); the scheduler asks for
    a session whenever it dispatches an application to a core whose best
    configuration is unknown, exactly as the profiling table "enables the
    tuning heuristic to operate across multiple application executions".
    """

    def __init__(self) -> None:
        self._sessions: dict = {}

    def session(self, benchmark: str, size_kb: int) -> TuningSession:
        """The (created-on-first-use) session for one application/size."""
        key = (benchmark, size_kb)
        existing = self._sessions.get(key)
        if existing is None:
            existing = TuningSession(size_kb=size_kb)
            self._sessions[key] = existing
        return existing

    def invalidate(self, benchmark: str, size_kb: int) -> None:
        """Forget one session (fault injection: table eviction).

        The next :meth:`session` call creates a fresh one, so
        exploration restarts from the first configuration — keeping the
        state machine consistent with a profiling table whose records
        for this (benchmark, size) were just evicted.
        """
        self._sessions.pop((benchmark, size_kb), None)

    def sessions(self) -> dict:
        """All sessions, keyed by (benchmark, size_kb)."""
        return dict(self._sessions)

    def max_exploration_count(self) -> int:
        """Largest per-session exploration count seen so far."""
        if not self._sessions:
            return 0
        return max(s.exploration_count for s in self._sessions.values())
