"""Energy substrate: CACTI-style cache energies, off-chip memory model
and the paper's Figure 4 energy equations.
"""

from .cacti import CactiModel, CactiParameters, EnergyComponents
from .memory import MemoryModel
from .model import EnergyBreakdown, EnergyModel, ExecutionEstimate
from .tables import ConfigEnergyConstants, EnergyTable

__all__ = [
    "CactiModel",
    "CactiParameters",
    "ConfigEnergyConstants",
    "EnergyBreakdown",
    "EnergyComponents",
    "EnergyModel",
    "EnergyTable",
    "ExecutionEstimate",
    "MemoryModel",
]
