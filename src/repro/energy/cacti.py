"""CACTI-style analytical cache energy model.

The paper obtained per-access dynamic energies from CACTI 2.0 at a
0.18 µm technology node.  CACTI itself is not available offline, so this
module provides an analytical substitute built from the same structural
decomposition CACTI uses: row decoder, word lines, bit lines, sense
amplifiers, tag array, tag comparators and output drivers.  Absolute
values are calibrated to the magnitude CACTI reports for small 0.18 µm
SRAMs (an 8 KB 4-way cache costs on the order of one nanojoule per
access); what the reproduction actually depends on is the *monotone
structure*:

* larger caches cost more per access (longer bit lines, bigger decoders),
* higher associativity costs more per access (more ways read in
  parallel, more comparators),
* longer lines cost more per *fill* (more bits written) and slightly more
  per access (wider data array).

Those trends are what make cache-size prediction and the tuning heuristic
meaningful, and they are asserted by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.cache.config import CacheConfig

__all__ = ["CactiParameters", "CactiModel", "EnergyComponents"]


@dataclass(frozen=True)
class CactiParameters:
    """Technology-dependent energy coefficients (all in nanojoules).

    Defaults are calibrated for a 0.18 µm node so that the base
    configuration (8 KB, 4-way, 64 B) lands at single-digit nanojoules
    per access — the magnitude CACTI 2.0 reports at that node — and so
    that the 10 %-of-base-dynamic static rule (Figure 4) yields a
    leakage share of total system energy comparable to the paper's
    evaluation.  Absolute joules are not meaningful in this synthetic
    substitute; the monotone trends above are what matters.
    """

    tech_um: float = 0.18
    #: Energy per decoder input bit (address decode tree).
    decode_nj_per_bit: float = 0.030
    #: Energy per cell driven on a word line.
    wordline_nj_per_cell: float = 0.00088
    #: Energy per bit-line column precharged/discharged, per unit swing.
    bitline_nj_per_column: float = 0.00138
    #: Bit-line energy growth with row count (longer bit lines).
    bitline_row_factor: float = 1.0 / 256.0
    #: Energy per sense amplifier fired.
    senseamp_nj_per_bit: float = 0.00113
    #: Energy per tag bit read/compared.
    tag_nj_per_bit: float = 0.0045
    #: Energy per output-driver bit.
    output_nj_per_bit: float = 0.0030
    #: Physical address width assumed for tag sizing.
    address_bits: int = 32

    def scaled(self, tech_um: float) -> "CactiParameters":
        """Return parameters scaled to another technology node.

        Dynamic energy scales roughly with C·V² ∝ feature size ·
        voltage²; we use the common first-order (tech/0.18)³ scaling.
        """
        factor = (tech_um / 0.18) ** 3
        return CactiParameters(
            tech_um=tech_um,
            decode_nj_per_bit=self.decode_nj_per_bit * factor,
            wordline_nj_per_cell=self.wordline_nj_per_cell * factor,
            bitline_nj_per_column=self.bitline_nj_per_column * factor,
            bitline_row_factor=self.bitline_row_factor,
            senseamp_nj_per_bit=self.senseamp_nj_per_bit * factor,
            tag_nj_per_bit=self.tag_nj_per_bit * factor,
            output_nj_per_bit=self.output_nj_per_bit * factor,
            address_bits=self.address_bits,
        )


@dataclass(frozen=True)
class EnergyComponents:
    """Per-access energy decomposition, in nanojoules."""

    decode_nj: float
    wordline_nj: float
    bitline_nj: float
    senseamp_nj: float
    tag_nj: float
    output_nj: float

    @property
    def total_nj(self) -> float:
        """Sum of all components."""
        return (
            self.decode_nj
            + self.wordline_nj
            + self.bitline_nj
            + self.senseamp_nj
            + self.tag_nj
            + self.output_nj
        )


class CactiModel:
    """Analytical per-access and per-fill energies for a cache config."""

    def __init__(self, params: CactiParameters = CactiParameters()) -> None:
        self.params = params
        self._access_cache: Dict[CacheConfig, EnergyComponents] = {}

    def tag_bits(self, config: CacheConfig) -> int:
        """Tag width: address bits minus set-index and line-offset bits."""
        index_bits = int(math.log2(config.num_sets))
        offset_bits = int(math.log2(config.line_b))
        return self.params.address_bits - index_bits - offset_bits

    def components(self, config: CacheConfig) -> EnergyComponents:
        """Per-read-access energy decomposition.

        A conventional parallel-access set-associative cache reads all
        ways of the selected set (data and tags) and selects late, so both
        the data and tag energies scale with the associativity.
        """
        cached = self._access_cache.get(config)
        if cached is not None:
            return cached
        p = self.params
        rows = config.num_sets
        data_columns = config.assoc * config.line_b * 8
        row_scale = 1.0 + p.bitline_row_factor * rows
        tag_bits = self.tag_bits(config)
        tag_columns = config.assoc * tag_bits

        components = EnergyComponents(
            decode_nj=p.decode_nj_per_bit * max(1, int(math.log2(max(rows, 2)))),
            wordline_nj=p.wordline_nj_per_cell * data_columns,
            bitline_nj=p.bitline_nj_per_column * data_columns * row_scale,
            senseamp_nj=p.senseamp_nj_per_bit * data_columns,
            tag_nj=p.tag_nj_per_bit * tag_columns * row_scale,
            # A hit drives one word (32 bits) to the CPU.
            output_nj=p.output_nj_per_bit * 32,
        )
        self._access_cache[config] = components
        return components

    def access_energy_nj(self, config: CacheConfig) -> float:
        """Dynamic energy of one cache access (the E(hit) of Figure 4)."""
        return self.components(config).total_nj

    def fill_energy_nj(self, config: CacheConfig) -> float:
        """Energy to write one full line into the cache (E(cache fill)).

        A fill writes ``line_b`` bytes into a single way plus its tag, so
        it scales with the line size but not the associativity.
        """
        p = self.params
        data_bits = config.line_b * 8
        tag_bits = self.tag_bits(config)
        rows = config.num_sets
        row_scale = 1.0 + p.bitline_row_factor * rows
        return (
            p.decode_nj_per_bit * max(1, int(math.log2(max(rows, 2))))
            + p.wordline_nj_per_cell * data_bits
            + p.bitline_nj_per_column * data_bits * row_scale
            + p.tag_nj_per_bit * tag_bits * row_scale
        )
