"""Off-chip memory energy and timing model.

The paper estimated off-chip access energy "using a standard low-power
Samsung memory" and assumed a main-memory fetch takes forty times longer
than an L1 cache fetch, with memory bandwidth equal to 50 % of the miss
penalty.  No datasheet is available offline, so this module provides a
parameterised low-power SDRAM model with defaults of the right magnitude
for such parts (tens of nanojoules per random access): an activation cost
per access plus a per-byte burst transfer cost.

The timing side reproduces the paper's assumptions verbatim:

* ``miss_latency_cycles`` = 40 (40 × a one-cycle L1 fetch),
* transferring each 16-byte chunk of the line costs
  ``bandwidth_cycles_per_chunk`` = 20 cycles (50 % of the miss penalty),

so a miss on a 64 B line stalls the CPU for ``40 + 4·20 = 120`` cycles,
matching Figure 4's *Miss Cycles* equation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryModel"]

#: Bytes per bandwidth "chunk" in the paper's miss-cycles equation.
CHUNK_BYTES = 16


@dataclass(frozen=True)
class MemoryModel:
    """Low-power SDRAM energy/timing parameters.

    Attributes
    ----------
    activate_energy_nj:
        Energy of the row activation + column access for one request.
    transfer_energy_nj_per_byte:
        Burst transfer energy per byte moved on the bus.
    miss_latency_cycles:
        CPU cycles before the first chunk arrives (40 × L1 fetch).
    bandwidth_cycles_per_chunk:
        CPU cycles to transfer each 16-byte chunk (50 % of miss penalty).
    """

    activate_energy_nj: float = 6.0
    transfer_energy_nj_per_byte: float = 0.125
    miss_latency_cycles: int = 40
    bandwidth_cycles_per_chunk: int = 20

    def access_energy_nj(self, line_bytes: int) -> float:
        """Energy of one off-chip access fetching ``line_bytes`` bytes."""
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {line_bytes}")
        return self.activate_energy_nj + self.transfer_energy_nj_per_byte * line_bytes

    def miss_stall_cycles(self, line_bytes: int) -> int:
        """CPU stall cycles for one miss fetching a ``line_bytes`` line.

        Implements the per-miss form of Figure 4's equation::

            miss_latency + (linesize / 16) * memory_bandwidth
        """
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be positive, got {line_bytes}")
        chunks = (line_bytes + CHUNK_BYTES - 1) // CHUNK_BYTES
        return self.miss_latency_cycles + chunks * self.bandwidth_cycles_per_chunk
