"""The paper's energy model (its Figure 4), implemented verbatim.

::

    E(total)   = E(sta) + E(dynamic)
    E(dynamic) = cache_hits * E(hit) + cache_misses * E(miss)
    E(miss)    = E(off-chip access) + miss_cycles_per_miss * E(CPU stall)
                 + E(cache fill)
    miss cycles = misses * miss_latency
                  + misses * (linesize / 16) * memory_bandwidth
    E(sta)     = total_cycles * E(static per cycle)
    E(static per cycle) = E(per Kbyte) * cache_size_KB
    E(per Kbyte) = E(dyn of base cache) * 10% / base_cache_size_KB

The per-access energies E(hit), E(cache fill) come from the CACTI-style
model (:mod:`repro.energy.cacti`); E(off-chip access) and the miss timing
come from the memory model (:mod:`repro.energy.memory`).  The static
energy follows the paper's 10 %-of-base-dynamic rule, scaled linearly
with the cache size — so a 2 KB core leaks a quarter of an 8 KB core.

Total cycles are ``instructions × CPI_base + total miss stall cycles``:
the workload model folds hit latency into the base CPI and every miss
stalls the (in-order, embedded) CPU for the full miss penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.cache.stats import CacheStats

from .cacti import CactiModel
from .memory import MemoryModel

__all__ = ["EnergyModel", "EnergyBreakdown", "ExecutionEstimate"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one execution split the way the paper reports it (nJ)."""

    static_nj: float
    dynamic_nj: float

    @property
    def total_nj(self) -> float:
        """E(total) = E(sta) + E(dynamic)."""
        return self.static_nj + self.dynamic_nj


@dataclass(frozen=True)
class ExecutionEstimate:
    """Cycles and energy of one complete application execution."""

    config: CacheConfig
    instructions: int
    total_cycles: int
    miss_cycles: int
    energy: EnergyBreakdown

    @property
    def total_energy_nj(self) -> float:
        """Convenience accessor for the total energy."""
        return self.energy.total_nj

    @property
    def energy_per_cycle_nj(self) -> float:
        """Average energy per cycle, used by the remaining-energy estimate
        of the energy-advantageous decision (Section IV.E)."""
        if self.total_cycles == 0:
            return 0.0
        return self.energy.total_nj / self.total_cycles


class EnergyModel:
    """Figure 4's equations over the CACTI and memory substrates.

    Parameters
    ----------
    cacti:
        Per-access cache energy model.
    memory:
        Off-chip energy/timing model.
    base_config:
        The base cache configuration anchoring the static-energy rule
        (the paper's 8KB_4W_64B).
    cpu_stall_energy_nj:
        E(CPU stall) per stall cycle.
    static_fraction:
        The "10 %" in E(per Kbyte); exposed for ablation.
    cpi_base:
        Cycles per instruction of the core with a perfect cache.
    include_writeback_energy:
        Figure 4 models write-through caches (no writeback term).  When
        true, E(dynamic) additionally charges one off-chip line write
        per writeback — the refinement needed for write-back
        characterisations (an extension beyond the paper).
    """

    def __init__(
        self,
        cacti: CactiModel = None,
        memory: MemoryModel = None,
        *,
        base_config: CacheConfig = BASE_CONFIG,
        cpu_stall_energy_nj: float = 0.05,
        static_fraction: float = 0.10,
        cpi_base: float = 1.0,
        include_writeback_energy: bool = False,
    ) -> None:
        self.cacti = cacti if cacti is not None else CactiModel()
        self.memory = memory if memory is not None else MemoryModel()
        self.base_config = base_config
        self.cpu_stall_energy_nj = cpu_stall_energy_nj
        self.static_fraction = static_fraction
        self.cpi_base = cpi_base
        self.include_writeback_energy = include_writeback_energy
        if cpu_stall_energy_nj < 0:
            raise ValueError("cpu_stall_energy_nj must be non-negative")
        if not 0 <= static_fraction <= 1:
            raise ValueError("static_fraction must be within [0, 1]")
        if cpi_base <= 0:
            raise ValueError("cpi_base must be positive")

    # -- Figure 4, bottom-up -------------------------------------------------

    def energy_per_kbyte_nj(self) -> float:
        """E(per Kbyte) = E(dyn of base cache) * 10% / base size in KB."""
        base_dynamic = self.cacti.access_energy_nj(self.base_config)
        return base_dynamic * self.static_fraction / self.base_config.size_kb

    def static_per_cycle_nj(self, config: CacheConfig) -> float:
        """E(static per cycle) = E(per Kbyte) * cache size in KB."""
        return self.energy_per_kbyte_nj() * config.size_kb

    def miss_stall_cycles_per_miss(self, config: CacheConfig) -> int:
        """Stall cycles charged per miss (latency + line transfer)."""
        return self.memory.miss_stall_cycles(config.line_b)

    def miss_cycles(self, config: CacheConfig, misses: int) -> int:
        """Figure 4's *Miss Cycles* for a whole execution."""
        if misses < 0:
            raise ValueError(f"misses must be non-negative, got {misses}")
        return misses * self.miss_stall_cycles_per_miss(config)

    def miss_energy_nj(self, config: CacheConfig) -> float:
        """E(miss): off-chip access + stall energy + line fill."""
        stall_cycles = self.miss_stall_cycles_per_miss(config)
        return (
            self.memory.access_energy_nj(config.line_b)
            + stall_cycles * self.cpu_stall_energy_nj
            + self.cacti.fill_energy_nj(config)
        )

    def hit_energy_nj(self, config: CacheConfig) -> float:
        """E(hit): one read access of the data+tag arrays."""
        return self.cacti.access_energy_nj(config)

    def writeback_energy_nj(self, config: CacheConfig) -> float:
        """Energy of writing one dirty line back off-chip."""
        return self.memory.access_energy_nj(config.line_b)

    def dynamic_energy_nj(self, config: CacheConfig, stats: CacheStats) -> float:
        """E(dynamic) = hits * E(hit) + misses * E(miss) [+ writebacks]."""
        energy = stats.hits * self.hit_energy_nj(config) + stats.misses * (
            self.miss_energy_nj(config)
        )
        if self.include_writeback_energy:
            energy += stats.writebacks * self.writeback_energy_nj(config)
        return energy

    def total_cycles(
        self, config: CacheConfig, instructions: int, misses: int
    ) -> int:
        """Execution cycles: base CPI work plus all miss stalls."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        return int(round(instructions * self.cpi_base)) + self.miss_cycles(
            config, misses
        )

    def static_energy_nj(self, config: CacheConfig, total_cycles: int) -> float:
        """E(sta) = total cycles * E(static per cycle)."""
        if total_cycles < 0:
            raise ValueError("total_cycles must be non-negative")
        return total_cycles * self.static_per_cycle_nj(config)

    # -- top-level API --------------------------------------------------------

    def estimate(
        self,
        config: CacheConfig,
        instructions: int,
        stats: CacheStats,
    ) -> ExecutionEstimate:
        """Full Figure 4 evaluation for one execution.

        ``stats`` must be the cache statistics of the application running
        under ``config`` (from the cache simulator).
        """
        miss_cycles = self.miss_cycles(config, stats.misses)
        total_cycles = self.total_cycles(config, instructions, stats.misses)
        dynamic = self.dynamic_energy_nj(config, stats)
        static = self.static_energy_nj(config, total_cycles)
        return ExecutionEstimate(
            config=config,
            instructions=instructions,
            total_cycles=total_cycles,
            miss_cycles=miss_cycles,
            energy=EnergyBreakdown(static_nj=static, dynamic_nj=dynamic),
        )

    def idle_energy_nj(self, config: CacheConfig, cycles: int) -> float:
        """Idle energy of a core over ``cycles``: its cache's leakage.

        The paper's Idle Energy term for a core is the static energy the
        core expends while not executing; with the Figure 4 model that is
        the per-cycle static energy of the core's cache.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return cycles * self.static_per_cycle_nj(config)
