"""DVFS scaling of per-dispatch charges, shared by every engine.

The reference loop and the fast/streaming loops compute a dispatch's
work cycles and dynamic/static charges with syntactically different but
IEEE-identical expressions (``x * 1.0 == x``; ``round(t * 1.0) == t``).
When the power axis is enabled both route through this one helper so the
power-token price, the charged energy and the DVFS stretch are
float-identical across engines — the property the equivalence suites and
the ledger's token account rely on.

Scaling model (see :mod:`repro.power.dvfs`): only the *work* component
of service stretches by ``1/freq_scale`` — reconfiguration and profiling
overhead cycles are untouched; dynamic energy scales by ``volt**2`` and
busy-static energy by ``volt/freq``.  Knowledge updates (profiling
table, best-known, tuning sessions) always use the *unscaled* estimate:
the knowledge describes the configuration, not the operating point of
one dispatch.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.power.dvfs import DvfsPoint

__all__ = ["scaled_charges"]


def scaled_charges(
    total_cycles: int,
    dynamic_nj: float,
    static_nj: float,
    fraction: float,
    point: Optional[DvfsPoint] = None,
) -> Tuple[int, float, float]:
    """``(work_cycles, dynamic_charge_nj, static_charge_nj)`` for one
    dispatch of ``fraction`` of an execution at operating point
    ``point`` (``None`` or nominal leaves the charges untouched)."""
    if fraction == 1.0:
        work = total_cycles
        dynamic = dynamic_nj
        static = static_nj
    else:
        work = max(1, int(round(total_cycles * fraction)))
        dynamic = dynamic_nj * fraction
        static = static_nj * fraction
    if point is not None and not point.is_nominal:
        work = max(1, int(round(work / point.freq_scale)))
        dynamic = dynamic * point.dyn_factor
        static = static * point.static_factor
    return work, dynamic, static
