"""Precomputed per-configuration energy constants.

The scheduler simulation evaluates millions of energy expressions (every
scheduling decision consults the profiling table and the
energy-advantageous equation), so the per-configuration constants of the
energy model — E(hit), E(miss), static energy per cycle, stall cycles per
miss — are precomputed once into an :class:`EnergyTable`.

The table is purely derived state: every value equals what the
:class:`~repro.energy.model.EnergyModel` would compute on demand (tested
property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.cache.config import DESIGN_SPACE, CacheConfig

from .model import EnergyModel

__all__ = ["ConfigEnergyConstants", "EnergyTable"]


@dataclass(frozen=True)
class ConfigEnergyConstants:
    """All per-configuration constants of Figure 4 (energies in nJ)."""

    config: CacheConfig
    hit_energy_nj: float
    miss_energy_nj: float
    fill_energy_nj: float
    static_per_cycle_nj: float
    miss_stall_cycles: int

    def dynamic_energy_nj(self, hits: int, misses: int) -> float:
        """E(dynamic) for the given hit/miss counts."""
        if hits < 0 or misses < 0:
            raise ValueError("hits and misses must be non-negative")
        return hits * self.hit_energy_nj + misses * self.miss_energy_nj


class EnergyTable:
    """Per-configuration constants for a whole design space."""

    def __init__(
        self,
        model: EnergyModel = None,
        configs: Iterable[CacheConfig] = DESIGN_SPACE,
    ) -> None:
        self.model = model if model is not None else EnergyModel()
        self._table: Dict[CacheConfig, ConfigEnergyConstants] = {}
        for config in configs:
            self._table[config] = self._compute(config)

    def _compute(self, config: CacheConfig) -> ConfigEnergyConstants:
        model = self.model
        return ConfigEnergyConstants(
            config=config,
            hit_energy_nj=model.hit_energy_nj(config),
            miss_energy_nj=model.miss_energy_nj(config),
            fill_energy_nj=model.cacti.fill_energy_nj(config),
            static_per_cycle_nj=model.static_per_cycle_nj(config),
            miss_stall_cycles=model.miss_stall_cycles_per_miss(config),
        )

    def __contains__(self, config: CacheConfig) -> bool:
        return config in self._table

    def __len__(self) -> int:
        return len(self._table)

    def get(self, config: CacheConfig) -> ConfigEnergyConstants:
        """Constants for ``config``, computing and caching on first use."""
        constants = self._table.get(config)
        if constants is None:
            constants = self._compute(config)
            self._table[config] = constants
        return constants

    def as_mapping(self) -> Mapping[CacheConfig, ConfigEnergyConstants]:
        """Read-only view of the precomputed table."""
        return dict(self._table)
