"""High-level experiment API.

Everything the examples and benchmark harness do is composed from four
calls:

* :func:`default_store` — characterise the EEMBC-analogue suite over the
  full design space (cached to disk because it is the expensive step);
* :func:`default_predictor` — build the paper's bagged-ANN predictor,
  trained on the variant-expanded dataset (or an oracle for upper-bound
  runs);
* :func:`run_four_systems` — simulate the base / optimal /
  energy-centric / proposed systems on one arrival stream;
* :func:`run_campaign` — replicate (policy × seed × load) grids over a
  process pool with mean / CI aggregation (see :mod:`repro.campaign`);
* :func:`quick_experiment` — all of the above with sensible defaults.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.ann.training import TrainingConfig
from repro.cache.config import DESIGN_SPACE
from repro.characterization.dataset import build_dataset, expand_suite
from repro.characterization.explorer import characterize_suite
from repro.characterization.store import (
    CharacterizationStore,
    StoreMeta,
    design_space_fingerprint,
)
from repro.campaign import (
    CampaignCell,
    CampaignResult,
    MetricAggregate,
    ReplicationResult,
    ReplicationSpec,
    run_campaign,
)
from repro.core.modelstore import (
    ModelMeta,
    dataset_fingerprint,
    load_ann_predictor,
    save_ann_predictor,
    training_config_key,
)
from repro.core.policies import POLICY_NAMES, make_policy
from repro.core.predictor import AnnPredictor, BestCorePredictor, OraclePredictor
from repro.core.results import SimulationResult
from repro.core.simulation import SchedulerSimulation
from repro.core.system import base_system, paper_system
from repro.energy.tables import EnergyTable
from repro.workloads.arrivals import JobArrival, uniform_arrivals
from repro.workloads.eembc import eembc_suite

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "MetricAggregate",
    "ReplicationResult",
    "ReplicationSpec",
    "default_dataset",
    "default_store",
    "default_predictor",
    "run_campaign",
    "run_four_systems",
    "quick_experiment",
]

logger = logging.getLogger(__name__)

#: Default on-disk cache location for suite characterisation.  The
#: actual file carries the :meth:`StoreMeta.cache_key` in its name (see
#: :func:`_keyed_cache_path`), so caches for different seeds, design
#: spaces or generator versions never collide.
DEFAULT_CACHE = Path.home() / ".cache" / "repro" / "eembc_characterization.json"


def _keyed_cache_path(path: Union[str, Path], meta) -> Path:
    """Content-addressed variant of a cache path: stem.<key>.json.

    ``meta`` is anything with a ``cache_key()`` — a characterisation
    :class:`StoreMeta` or a trained-model
    :class:`~repro.core.modelstore.ModelMeta`.
    """
    path = Path(path)
    return path.with_name(f"{path.stem}.{meta.cache_key()}{path.suffix}")


def _load_cached_store(
    path: Path, meta: StoreMeta, expected_names: set
) -> Optional[CharacterizationStore]:
    """Load a cached store iff its metadata matches and it is complete.

    Returns ``None`` (forcing recharacterisation) when the file is
    missing, predates the metadata format, was produced under different
    metadata — in particular a different seed — or lacks benchmarks.
    """
    if not path.exists():
        logger.info("store cache miss: %s does not exist", path)
        return None
    store = CharacterizationStore.from_json(path)
    if store.meta != meta:
        logger.info(
            "store cache miss: %s metadata mismatch (cached %s, wanted %s)",
            path, store.meta, meta,
        )
        return None
    if not expected_names.issubset(set(store.names())):
        logger.info(
            "store cache miss: %s lacks benchmarks %s",
            path, sorted(expected_names - set(store.names())),
        )
        return None
    logger.debug("store cache hit: %s", path)
    return store


def default_store(
    cache_path: Optional[Union[str, Path]] = DEFAULT_CACHE,
    *,
    seed: int = 0,
    workers: Optional[int] = 1,
) -> CharacterizationStore:
    """Characterisation of the 15-benchmark suite over all 18 configs.

    Results are cached to a content-addressed file derived from
    ``cache_path`` (pass ``None`` to disable).  The cache key covers the
    seed, the design-space fingerprint and the generator version, and the
    stored metadata is validated on load, so a store characterised under
    one seed is never served for another.  ``workers`` fans the
    characterisation out over a process pool (``None`` = one per CPU).
    """
    meta = StoreMeta(
        seed=seed, configs_fingerprint=design_space_fingerprint(DESIGN_SPACE)
    )
    expected = {spec.name for spec in eembc_suite()}
    if cache_path is not None:
        path = _keyed_cache_path(cache_path, meta)
        cached = _load_cached_store(path, meta, expected)
        if cached is not None:
            return cached
    logger.info(
        "characterising the suite from scratch (seed=%d, workers=%s)",
        seed, workers,
    )
    store = CharacterizationStore(
        characterize_suite(eembc_suite(), seed=seed, workers=workers),
        meta=meta,
    )
    if cache_path is not None:
        path = _keyed_cache_path(cache_path, meta)
        path.parent.mkdir(parents=True, exist_ok=True)
        store.to_json(path)
        logger.info("wrote characterisation store cache: %s", path)
    return store


#: Default on-disk cache for the variant-expanded ANN dataset store.
DEFAULT_DATASET_CACHE = (
    Path.home() / ".cache" / "repro" / "eembc_dataset_characterization.json"
)


def default_dataset(
    variants_per_family: int = 12,
    *,
    cache_path: Optional[Union[str, Path]] = DEFAULT_DATASET_CACHE,
    seed: int = 0,
    base_store: Optional[CharacterizationStore] = None,
):
    """The variant-expanded ANN training dataset (cached on disk).

    Returns ``(dataset, store)`` like
    :func:`repro.characterization.build_dataset`; the expensive variant
    characterisation is reused from the content-addressed cache when
    present.  The cache key includes ``variants_per_family`` besides the
    seed / design space / generator version, so differently expanded
    datasets are cached side by side and never cross-served.  The cache
    file is rewritten only when something was actually characterised —
    a pure cache hit performs no disk write.

    ``base_store`` seeds the build with already-characterised benchmarks
    (typically the suite store from :func:`default_store`): entries whose
    metadata proves they were produced under the same seed, design space
    and generator version are reused instead of re-characterised.  Each
    family's variant 0 *is* the original benchmark, so a suite store
    saves exactly those characterisations.
    """
    meta = StoreMeta(
        seed=seed,
        configs_fingerprint=design_space_fingerprint(DESIGN_SPACE),
        variant=f"dataset:variants={variants_per_family}",
    )
    store = None
    disk_names: Optional[set] = None
    if cache_path is not None:
        path = _keyed_cache_path(cache_path, meta)
        if path.exists():
            cached = CharacterizationStore.from_json(path)
            if cached.meta == meta:
                # build_dataset characterises whatever is missing.
                store = cached
                disk_names = set(cached.names())
            else:
                logger.info(
                    "dataset cache miss: %s metadata mismatch", path
                )
        else:
            logger.info("dataset cache miss: %s does not exist", path)
    if base_store is not None and base_store.meta is not None:
        base_meta = base_store.meta
        if (
            base_meta.seed == meta.seed
            and base_meta.configs_fingerprint == meta.configs_fingerprint
            and base_meta.generator_version == meta.generator_version
        ):
            if store is None:
                store = CharacterizationStore(meta=meta)
            for name in base_store.names():
                if name not in store:
                    store.add(base_store.get(name))
    dataset, store = build_dataset(
        eembc_suite(),
        variants_per_family=variants_per_family,
        seed=seed,
        store=store,
    )
    store.meta = meta
    if cache_path is not None:
        expected = {
            spec.name
            for spec in expand_suite(eembc_suite(), variants_per_family)
        }
        if disk_names is None or not expected.issubset(disk_names):
            path = _keyed_cache_path(cache_path, meta)
            path.parent.mkdir(parents=True, exist_ok=True)
            store.to_json(path)
            logger.info("wrote dataset store cache: %s", path)
    return dataset, store


#: Default on-disk cache for trained ANN predictors.  Like the other
#: caches the real file carries the :meth:`ModelMeta.cache_key` in its
#: name, so models trained from different datasets, topologies,
#: hyperparameters or seeds never collide.
DEFAULT_MODEL_CACHE = Path.home() / ".cache" / "repro" / "eembc_trained_model.json"


def default_predictor(
    store: Optional[CharacterizationStore] = None,
    *,
    kind: str = "ann",
    variants_per_family: int = 12,
    n_members: int = 10,
    epochs: int = 200,
    seed: int = 0,
    engine: str = "batched",
    model_cache_path: Optional[Union[str, Path]] = DEFAULT_MODEL_CACHE,
    dataset_cache_path: Optional[Union[str, Path]] = DEFAULT_DATASET_CACHE,
) -> BestCorePredictor:
    """Build the best-core predictor.

    ``kind='ann'`` trains the paper's bagged MLP on the variant-expanded
    dataset (``n_members`` defaults below the paper's 30 to keep the
    default experience fast; the ANN-accuracy benchmark uses the full
    ensemble).  ``kind='oracle'`` returns perfect predictions from the
    store and requires one.

    For ``kind='ann'`` a passed ``store`` seeds the dataset build: its
    matching characterisations (one per family — variant 0 is the
    original benchmark) are reused instead of re-simulated.  Trained
    weights are cached content-addressed under ``model_cache_path``
    (key: dataset fingerprint, topology, training config, seed) — a
    repeat call with identical inputs loads them and performs zero
    training epochs.  ``engine`` selects the ensemble-training engine;
    both engines produce identical weights, so it is not part of the
    cache key.
    """
    if kind == "oracle":
        if store is None:
            raise ValueError("the oracle predictor needs a store")
        return OraclePredictor(store)
    if kind != "ann":
        raise ValueError(f"unknown predictor kind {kind!r}")
    dataset, _ = default_dataset(
        variants_per_family,
        cache_path=dataset_cache_path,
        seed=seed,
        base_store=store,
    )
    predictor = AnnPredictor(n_members=n_members, seed=seed)
    config = TrainingConfig(epochs=epochs, seed=seed)
    meta = ModelMeta(
        dataset_fingerprint=dataset_fingerprint(dataset),
        topology=repr(predictor.ensemble.members[0].topology),
        n_members=n_members,
        training_key=training_config_key(config),
        seed=seed,
    )
    if model_cache_path is not None:
        cached = load_ann_predictor(
            _keyed_cache_path(model_cache_path, meta), expected_meta=meta
        )
        if cached is not None:
            return cached
    logger.info(
        "training the ANN predictor from scratch "
        "(members=%d, epochs=%d, seed=%d)",
        n_members, epochs, seed,
    )
    # Paper-style split: shuffled 70/15/15 over all inputs (§IV.D), so the
    # deployed benchmarks' families are represented in training.  Pass
    # ``by_family=True`` to Dataset.split for held-out-family evaluation.
    split = dataset.split(seed=seed, by_family=False)
    predictor.fit(
        split.train,
        val_dataset=split.val,
        config=config,
        engine=engine,
    )
    if model_cache_path is not None:
        save_ann_predictor(
            _keyed_cache_path(model_cache_path, meta), predictor, meta
        )
    return predictor


def run_four_systems(
    arrivals: Sequence[JobArrival],
    store: CharacterizationStore,
    predictor: BestCorePredictor,
    *,
    policies: Sequence[str] = POLICY_NAMES,
    engine: str = "auto",
) -> Dict[str, SimulationResult]:
    """Simulate the selected systems on one arrival stream.

    The base system runs on the homogeneous machine, the other three on
    the paper's heterogeneous quad-core; all share the characterisation
    store and energy constants.  ``engine`` selects the event loop
    (``auto`` / ``fast`` / ``reference``); since these runs attach no
    hooks, the default resolves to the fast engine.
    """
    energy_table = EnergyTable()
    results: Dict[str, SimulationResult] = {}
    for name in policies:
        policy = make_policy(name)
        system = base_system() if name == "base" else paper_system()
        simulation = SchedulerSimulation(
            system,
            policy,
            store,
            predictor=predictor if policy.uses_predictor else None,
            energy_table=energy_table,
            engine=engine,
        )
        results[name] = simulation.run(arrivals)
    return results


def quick_experiment(
    n_jobs: int = 1000,
    *,
    seed: int = 0,
    mean_interarrival_cycles: int = 56_000,
    predictor_kind: str = "ann",
    cache_path: Optional[Union[str, Path]] = DEFAULT_CACHE,
    workers: Optional[int] = 1,
) -> Dict[str, SimulationResult]:
    """End-to-end four-system comparison with default components."""
    store = default_store(cache_path, seed=seed, workers=workers)
    predictor = default_predictor(store, kind=predictor_kind, seed=seed)
    arrivals = uniform_arrivals(
        eembc_suite(),
        count=n_jobs,
        seed=seed,
        mean_interarrival_cycles=mean_interarrival_cycles,
    )
    return run_four_systems(arrivals, store, predictor)
