"""Deterministic fault injection and scheduler degradation paths.

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the pure-data,
  JSON-serialisable fault schedule (seeded per-site RNG streams);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the runtime
  layer a :class:`~repro.core.simulation.SchedulerSimulation` attaches
  when constructed with ``faults=<plan>``.

See ``docs/faults.md`` for the fault model, plan schema, degradation
semantics and determinism guarantees.
"""

from .injector import FaultInjector
from .plan import (
    CORE_FAULT_KINDS,
    FAULT_CLASSES,
    PREDICTOR_FAULT_KINDS,
    CoreFault,
    FaultPlan,
    PredictorFault,
    generate_plan,
    load_plan,
)

__all__ = [
    "CORE_FAULT_KINDS",
    "FAULT_CLASSES",
    "PREDICTOR_FAULT_KINDS",
    "CoreFault",
    "FaultInjector",
    "FaultPlan",
    "PredictorFault",
    "generate_plan",
    "load_plan",
]
