"""Runtime fault injection for one scheduler simulation.

:class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan` to
a running :class:`~repro.core.simulation.SchedulerSimulation`.  The
simulation calls its checkpoints at dispatch, service-scheduling and
completion time; windowed core/predictor faults are driven by GENERIC
engine events so they interleave deterministically with arrivals and
completions (completions sort first at equal timestamps, so a core
failing at cycle ``t`` never kills an execution that finished at ``t``).

Degradation semantics (mirrored in ``docs/faults.md``):

* a failing core's occupant is requeued through the simulation's shared
  requeue path — identical pro-rata refund accounting to a preemption,
  so the PR-4 energy ledger stays balanced;
* best-core election excludes down cores
  (:meth:`~repro.core.scheduler.CoreState.is_idle` is false while
  ``failed``); the proposed policy additionally dispatches non-best
  directly when every best-size core is down;
* predictor outages fall back to the base-configuration size heuristic;
* repeated dispatch failures retry with capped exponential backoff and,
  after ``dispatch_max_retries`` failures, surrender to any idle core;
* a reconfiguration failure pins dispatches to the core's reset (base)
  configuration for the window;
* the deadlock breaker guarantees termination: when the queue is
  non-empty but no execution and no event is outstanding, one queued
  job is force-dispatched to an idle up core (or the run aborts loudly
  if every core is down with no recovery scheduled).

All randomness comes from the plan's per-site streams, so the fault
event sequence of a (plan, workload, policy) triple is byte-identical
across runs, worker processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Optional, Tuple

from repro.cache import CACHE_SIZES_KB
from repro.core.scheduler import Assignment, Job
from repro.obs.events import CoreDown, CoreUp, FallbackDecision, FaultInjected
from repro.sim.events import EventKind
from repro.workloads.counters import HardwareCounters

from .plan import FaultPlan

__all__ = ["FaultInjector"]

#: ``sim.faults.*`` counters pre-registered when metrics are attached
#: (uniform key set across replications, like the simulation's own).
_FAULT_COUNTERS = (
    "sim.faults.injected",
    "sim.faults.core_down",
    "sim.faults.core_up",
    "sim.faults.requeued",
    "sim.faults.dispatch_failures",
    "sim.faults.surrenders",
    "sim.faults.slowdowns",
    "sim.faults.predictor_outages",
    "sim.faults.mispredictions",
    "sim.faults.counter_noise",
    "sim.faults.table_evictions",
    "sim.faults.table_corruptions",
    "sim.faults.reconfig_pins",
    "sim.faults.forced_dispatches",
)

#: Integer counter fields (perturbed values are rounded and clamped).
_INT_COUNTER_FIELDS = frozenset(
    f.name for f in fields(HardwareCounters) if f.type in ("int", int)
)


class FaultInjector:
    """Applies one :class:`FaultPlan` to one simulation run."""

    def __init__(self, sim, plan: FaultPlan) -> None:
        self.sim = sim
        self.plan = plan
        for fault in plan.core_faults:
            if fault.core_index >= len(sim.cores):
                raise ValueError(
                    f"fault plan {plan.name!r} targets core "
                    f"{fault.core_index} but the system has "
                    f"{len(sim.cores)} cores"
                )
        self._dispatch_rng = plan.rng("dispatch")
        self._counter_rng = plan.rng("counters")
        self._table_rng = plan.rng("table")
        self._mispredict_rng = plan.rng("mispredict")
        #: Overlap-safe down-window nesting depth per core.
        self._down_depth = {core.index: 0 for core in sim.cores}
        #: Consecutive dispatch failures per job id.
        self._failures = {}
        #: Earliest cycle a backed-off job may retry dispatch.
        self._retry_not_before = {}
        if sim.metrics is not None:
            for name in _FAULT_COUNTERS:
                sim.metrics.counter(name)

    # -- shared emit helpers -------------------------------------------------

    def _count(self, name: str) -> None:
        if self.sim.metrics is not None:
            self.sim.metrics.counter("sim.faults.injected").inc()
            self.sim.metrics.counter(name).inc()

    def _emit(self, event) -> None:
        if self.sim.recorder.enabled:
            self.sim.recorder.emit(event)

    # -- windowed faults (engine-driven) -------------------------------------

    def schedule_windows(self) -> None:
        """Schedule GENERIC events for every core failure/recovery edge.

        Slowdown, pin and predictor windows need no events — they are
        membership tests at dispatch/completion checkpoints.
        """
        engine = self.sim.engine
        for fault in self.plan.core_faults:
            if fault.kind != "failure":
                continue
            engine.schedule_at(
                fault.start_cycle,
                EventKind.GENERIC,
                payload=("core_fail", fault.core_index),
            )
            if fault.end_cycle is not None:
                engine.schedule_at(
                    fault.end_cycle,
                    EventKind.GENERIC,
                    payload=("core_recover", fault.core_index),
                )

    def handle(self, payload: Tuple) -> None:
        """Process one GENERIC fault event (called from ``_handle``)."""
        action, arg = payload
        sim = self.sim
        if action == "core_fail":
            core = sim.cores[arg]
            self._down_depth[arg] += 1
            if self._down_depth[arg] == 1:
                core.failed = True
                self._count("sim.faults.core_down")
                self._emit(CoreDown(cycle=sim.now, core_index=arg))
            if core.current_job is not None and core.busy_until > sim.now:
                sim._requeue_from_core(core, reason="core_failure")
        elif action == "core_recover":
            core = sim.cores[arg]
            self._down_depth[arg] -= 1
            if self._down_depth[arg] == 0:
                core.failed = False
                self._count("sim.faults.core_up")
                self._emit(CoreUp(cycle=sim.now, core_index=arg))
        elif action == "retry":
            # Pure wakeup: _handle runs a dispatch pass after every
            # event, which re-examines the backed-off job.
            pass
        else:  # pragma: no cover - internal invariant
            raise ValueError(f"unknown fault event {action!r}")

    # -- dispatch checkpoints ------------------------------------------------

    def eligible(self, job: Job) -> bool:
        """Whether the job's dispatch-failure backoff has expired."""
        return self._retry_not_before.get(job.job_id, 0) <= self.sim.now

    def surrender_assignment(self, job: Job) -> Optional[Assignment]:
        """Any-idle-core assignment for a job that exhausted its retries.

        Returns ``None`` while the job is below the retry cap (the
        policy decides) or when no up core is idle (the job waits).
        """
        if self._failures.get(job.job_id, 0) < self.plan.dispatch_max_retries:
            return None
        sim = self.sim
        for core in sim.cores:
            if core.is_idle(sim.now):
                self._count("sim.faults.surrenders")
                self._emit(FallbackDecision(
                    cycle=sim.now,
                    job_id=job.job_id,
                    benchmark=job.benchmark,
                    reason="retries_exhausted",
                    core_index=core.index,
                ))
                return Assignment(
                    core_index=core.index, config=core.current_config
                )
        return None

    def filter_dispatch(
        self, job: Job, assignment: Assignment
    ) -> Optional[Assignment]:
        """Last gate before ``_start``: fail, pin, or pass through."""
        sim = self.sim
        plan = self.plan
        failures = self._failures.get(job.job_id, 0)
        if (
            plan.dispatch_failure_rate > 0.0
            and failures < plan.dispatch_max_retries
            and self._dispatch_rng.random() < plan.dispatch_failure_rate
        ):
            failures += 1
            self._failures[job.job_id] = failures
            delay = min(
                plan.dispatch_retry_cap_cycles,
                plan.dispatch_retry_base_cycles * 2 ** (failures - 1),
            )
            self._retry_not_before[job.job_id] = sim.now + delay
            sim.engine.schedule_at(
                sim.now + delay,
                EventKind.GENERIC,
                payload=("retry", job.job_id),
            )
            self._count("sim.faults.dispatch_failures")
            self._emit(FaultInjected(
                cycle=sim.now,
                fault="dispatch_failure",
                site=f"core{assignment.core_index}",
                detail=f"attempt {failures}, retry in {delay} cycles",
                job_id=job.job_id,
                core_index=assignment.core_index,
            ))
            return None
        core = sim.cores[assignment.core_index]
        pinned = core.spec.reset_config
        if assignment.config != pinned and any(
            fault.kind == "reconfig_pin"
            and fault.core_index == assignment.core_index
            and fault.active(sim.now)
            for fault in plan.core_faults
        ):
            self._count("sim.faults.reconfig_pins")
            self._emit(FaultInjected(
                cycle=sim.now,
                fault="reconfig_pin",
                site=f"core{assignment.core_index}",
                detail=f"{assignment.config.name} -> {pinned.name}",
                job_id=job.job_id,
                core_index=assignment.core_index,
            ))
            return Assignment(
                core_index=assignment.core_index,
                config=pinned,
                profiling=assignment.profiling,
                tuning=False,
            )
        return assignment

    def scale_service(self, core_index: int, service: int, job: Job) -> int:
        """Dilate service cycles by active slowdown windows (composed)."""
        factor = 1.0
        for fault in self.plan.core_faults:
            if (
                fault.kind == "slowdown"
                and fault.core_index == core_index
                and fault.active(self.sim.now)
            ):
                factor *= fault.factor
        if factor == 1.0:
            return service
        scaled = max(1, int(round(service * factor)))
        self._count("sim.faults.slowdowns")
        self._emit(FaultInjected(
            cycle=self.sim.now,
            fault="core_slowdown",
            site=f"core{core_index}",
            detail=f"service {service} -> {scaled} (x{factor:g})",
            job_id=job.job_id,
            core_index=core_index,
        ))
        return scaled

    # -- completion checkpoints ----------------------------------------------

    def perturb_counters(
        self, benchmark: str, counters: HardwareCounters
    ) -> HardwareCounters:
        """Apply multiplicative per-counter noise (identity at rate 0)."""
        noise = self.plan.counter_noise
        if noise == 0.0:
            return counters
        rng = self._counter_rng
        values = {}
        for field in fields(HardwareCounters):
            value = getattr(counters, field.name)
            scaled = value * (1.0 + rng.uniform(-noise, noise))
            if field.name in _INT_COUNTER_FIELDS:
                scaled = max(0, int(round(scaled)))
            values[field.name] = scaled
        self._count("sim.faults.counter_noise")
        self._emit(FaultInjected(
            cycle=self.sim.now,
            fault="counter_noise",
            site=benchmark,
            detail=f"+/-{noise:g} multiplicative",
        ))
        return HardwareCounters(**values)

    def predictor_available(self) -> bool:
        """Whether the predictor is outside every outage window."""
        now = self.sim.now
        return not any(
            fault.kind == "outage" and fault.active(now)
            for fault in self.plan.predictor_faults
        )

    def fallback_prediction(self, job: Job, core_index: int) -> int:
        """Base-configuration size heuristic used during an outage."""
        from repro.cache.config import BASE_CONFIG

        self._count("sim.faults.predictor_outages")
        self._emit(FallbackDecision(
            cycle=self.sim.now,
            job_id=job.job_id,
            benchmark=job.benchmark,
            reason="predictor_outage",
            core_index=core_index,
        ))
        return BASE_CONFIG.size_kb

    def perturb_prediction(self, job: Job, core_index: int, size_kb: int) -> int:
        """Shift a prediction along the size ladder inside spike windows."""
        now = self.sim.now
        offset = 0
        for fault in self.plan.predictor_faults:
            if fault.kind == "misprediction" and fault.active(now):
                offset = max(offset, fault.offset)
        if offset == 0:
            return size_kb
        sizes = sorted(CACHE_SIZES_KB)
        index = min(
            range(len(sizes)), key=lambda i: abs(sizes[i] - size_kb)
        )
        direction = self._mispredict_rng.choice((-1, 1))
        shifted = min(len(sizes) - 1, max(0, index + direction * offset))
        if sizes[shifted] == size_kb:
            return size_kb
        self._count("sim.faults.mispredictions")
        self._emit(FaultInjected(
            cycle=now,
            fault="misprediction",
            site=job.benchmark,
            detail=f"{size_kb}KB -> {sizes[shifted]}KB",
            job_id=job.job_id,
            core_index=core_index,
        ))
        return sizes[shifted]

    def after_completion(self, benchmark: str) -> None:
        """Profiling-table eviction/corruption draws (one per completion)."""
        plan = self.plan
        sim = self.sim
        rng = self._table_rng
        if plan.table_eviction_rate > 0.0 and (
            rng.random() < plan.table_eviction_rate
        ):
            targets = sorted(sim.table.benchmarks())
            if targets:
                target = rng.choice(targets)
                profile = sim.table.profile(target)
                sizes = sorted({c.size_kb for c in profile.executions})
                if sizes and rng.random() < 0.5:
                    size_kb = rng.choice(sizes)
                    sim.table.evict_size(target, size_kb)
                    # The tuning state machine must restart too, so a
                    # "done" session never points at evicted records.
                    sim.heuristic.invalidate(target, size_kb)
                    detail = f"evicted {size_kb}KB records of {target}"
                else:
                    sim.table.evict_counters(target)
                    detail = f"evicted counters of {target}"
                self._count("sim.faults.table_evictions")
                self._emit(FaultInjected(
                    cycle=sim.now,
                    fault="table_eviction",
                    site=target,
                    detail=detail,
                ))
        if plan.table_corruption_rate > 0.0 and (
            rng.random() < plan.table_corruption_rate
        ):
            targets = [
                name for name in sorted(sim.table.benchmarks())
                if sim.table.profile(name).executions
            ]
            if targets:
                target = rng.choice(targets)
                configs = sorted(sim.table.profile(target).executions)
                config = rng.choice(configs)
                factor = rng.uniform(0.5, 2.0)
                sim.table.corrupt_execution(target, config, factor)
                self._count("sim.faults.table_corruptions")
                self._emit(FaultInjected(
                    cycle=sim.now,
                    fault="table_corruption",
                    site=target,
                    detail=f"{config.name} energy x{factor:.3f}",
                ))

    # -- termination guarantee -----------------------------------------------

    def break_deadlock(self) -> Optional[Tuple[Job, Assignment]]:
        """Force-dispatch when nothing else can ever happen.

        Fires only when jobs are queued, no execution is in flight and
        the event heap is empty — without intervention the run would
        drain with jobs stranded.  Backed-off jobs always have a retry
        wakeup in the heap, so a firing breaker implies every queued job
        is dispatch-eligible.
        """
        sim = self.sim
        if not sim.queue or sim._pending or sim.engine.pending:
            return None
        idle = [core for core in sim.cores if core.is_idle(sim.now)]
        if not idle:
            raise RuntimeError(
                f"fault plan {self.plan.name!r} leaves every core down at "
                f"cycle {sim.now} with {len(sim.queue)} jobs queued and no "
                "recovery scheduled"
            )
        job = sim._queue_view()[0]
        core = min(idle, key=lambda c: c.index)
        self._count("sim.faults.forced_dispatches")
        self._emit(FallbackDecision(
            cycle=sim.now,
            job_id=job.job_id,
            benchmark=job.benchmark,
            reason="forced_dispatch",
            core_index=core.index,
        ))
        return job, Assignment(
            core_index=core.index, config=core.current_config
        )
