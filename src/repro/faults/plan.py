"""Deterministic fault plans (pure data, JSON-serialisable).

A :class:`FaultPlan` describes *what goes wrong and when* during one
scheduler simulation — independently of any simulation state, so the
same plan can be replayed, shipped to campaign workers, or stored next
to a results directory.  The plan is pure data: windowed faults are
frozen dataclasses, rates are floats, and every random draw the
injection layer makes comes from a seeded per-site stream
(:meth:`FaultPlan.rng`), keyed by ``f"{seed}:{site}"`` so streams are
independent of each other, of process start-up order and of
``PYTHONHASHSEED``.

Fault classes
-------------
* ``core_failure`` — a core goes down for a window (its occupant is
  requeued with a pro-rata energy refund) and comes back up;
* ``core_slowdown`` — executions dispatched on a core during the window
  take ``factor`` times as long;
* ``reconfig_pin`` — the cache tuner cannot reconfigure the core during
  the window; dispatches are pinned to the core's base (reset)
  configuration;
* ``predictor_outage`` — the best-core predictor is unavailable; the
  scheduler falls back to the base-configuration size heuristic;
* ``misprediction`` — predictions made during the window are perturbed
  by a seeded size-class offset;
* ``counter_noise`` — multiplicative per-counter noise on profiling
  counters;
* ``table_eviction`` / ``table_corruption`` — profiling-table entries
  are evicted (forcing re-profiling / re-tuning) or their recorded
  energies scaled by a random factor, at job-completion checkpoints;
* ``dispatch_failure`` — dispatches fail with a given probability and
  retry with capped exponential backoff before surrendering to any
  idle core.

An empty plan (:meth:`FaultPlan.is_empty`) injects nothing; a
simulation run with an empty plan is bit-identical to a run without a
plan at all (asserted by the property suite in ``tests/faults``).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Optional, Sequence, Tuple

__all__ = [
    "CoreFault",
    "PredictorFault",
    "FaultPlan",
    "FAULT_CLASSES",
    "CORE_FAULT_KINDS",
    "PREDICTOR_FAULT_KINDS",
    "generate_plan",
    "load_plan",
]

#: Windowed per-core fault kinds.
CORE_FAULT_KINDS = ("failure", "slowdown", "reconfig_pin")

#: Windowed predictor fault kinds.
PREDICTOR_FAULT_KINDS = ("outage", "misprediction")

#: Every fault class a plan can schedule (the chaos grid iterates this).
FAULT_CLASSES = (
    "core_failure",
    "core_slowdown",
    "reconfig_pin",
    "predictor_outage",
    "misprediction",
    "counter_noise",
    "table_eviction",
    "table_corruption",
    "dispatch_failure",
)


def _check_window(start_cycle: int, end_cycle: Optional[int]) -> None:
    if start_cycle < 0:
        raise ValueError("start_cycle must be non-negative")
    if end_cycle is not None and end_cycle <= start_cycle:
        raise ValueError("end_cycle must exceed start_cycle")


@dataclass(frozen=True)
class CoreFault:
    """One windowed fault on one core.

    ``end_cycle=None`` means the fault lasts to the end of the run.
    ``factor`` is only meaningful for ``slowdown`` (service-time
    multiplier, >= 1).
    """

    kind: str
    core_index: int
    start_cycle: int
    end_cycle: Optional[int] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in CORE_FAULT_KINDS:
            raise ValueError(
                f"unknown core fault kind {self.kind!r}; "
                f"choose from {CORE_FAULT_KINDS}"
            )
        if self.core_index < 0:
            raise ValueError("core_index must be non-negative")
        _check_window(self.start_cycle, self.end_cycle)
        if self.kind == "slowdown" and self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")

    def active(self, cycle: int) -> bool:
        """Whether the window covers ``cycle``."""
        return self.start_cycle <= cycle and (
            self.end_cycle is None or cycle < self.end_cycle
        )


@dataclass(frozen=True)
class PredictorFault:
    """One windowed predictor fault (outage or misprediction spike).

    ``offset`` is the misprediction size-class shift magnitude (how many
    steps up or down the cache-size ladder a prediction is moved; the
    direction is drawn from the plan's ``mispredict`` stream).
    """

    kind: str
    start_cycle: int
    end_cycle: Optional[int] = None
    offset: int = 1

    def __post_init__(self) -> None:
        if self.kind not in PREDICTOR_FAULT_KINDS:
            raise ValueError(
                f"unknown predictor fault kind {self.kind!r}; "
                f"choose from {PREDICTOR_FAULT_KINDS}"
            )
        _check_window(self.start_cycle, self.end_cycle)
        if self.kind == "misprediction" and self.offset < 1:
            raise ValueError("misprediction offset must be >= 1")

    def active(self, cycle: int) -> bool:
        """Whether the window covers ``cycle``."""
        return self.start_cycle <= cycle and (
            self.end_cycle is None or cycle < self.end_cycle
        )


def _rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one simulation run.

    Hashable and picklable (tuples only), so it can ride inside a frozen
    :class:`~repro.campaign.ReplicationSpec` across a process pool.
    """

    name: str = "plan"
    seed: int = 0
    core_faults: Tuple[CoreFault, ...] = ()
    predictor_faults: Tuple[PredictorFault, ...] = ()
    #: Multiplicative half-width of per-counter profiling noise (0.1 =
    #: each counter scaled by a uniform factor in [0.9, 1.1]).
    counter_noise: float = 0.0
    #: Per-completion probability of evicting a profiling-table entry.
    table_eviction_rate: float = 0.0
    #: Per-completion probability of corrupting a recorded energy.
    table_corruption_rate: float = 0.0
    #: Per-attempt probability that a dispatch fails and must retry.
    dispatch_failure_rate: float = 0.0
    #: First retry delay; doubles per consecutive failure of the job.
    dispatch_retry_base_cycles: int = 2_000
    #: Backoff ceiling.
    dispatch_retry_cap_cycles: int = 64_000
    #: Failures after which the job surrenders to any idle core.
    dispatch_max_retries: int = 4

    def __post_init__(self) -> None:
        # Normalise sequences (e.g. lists from JSON) to tuples so the
        # plan stays hashable.
        object.__setattr__(self, "core_faults", tuple(self.core_faults))
        object.__setattr__(
            self, "predictor_faults", tuple(self.predictor_faults)
        )
        if not self.name:
            raise ValueError("plan name must be non-empty")
        if self.counter_noise < 0:
            raise ValueError("counter_noise must be >= 0")
        _rate("table_eviction_rate", self.table_eviction_rate)
        _rate("table_corruption_rate", self.table_corruption_rate)
        _rate("dispatch_failure_rate", self.dispatch_failure_rate)
        if self.dispatch_retry_base_cycles <= 0:
            raise ValueError("dispatch_retry_base_cycles must be positive")
        if self.dispatch_retry_cap_cycles < self.dispatch_retry_base_cycles:
            raise ValueError(
                "dispatch_retry_cap_cycles must be >= the base delay"
            )
        if self.dispatch_max_retries < 0:
            raise ValueError("dispatch_max_retries must be >= 0")

    # -- behaviour queries ---------------------------------------------------

    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return (
            not self.core_faults
            and not self.predictor_faults
            and self.counter_noise == 0.0
            and self.table_eviction_rate == 0.0
            and self.table_corruption_rate == 0.0
            and self.dispatch_failure_rate == 0.0
        )

    def classes(self) -> Tuple[str, ...]:
        """The fault classes this plan actually schedules."""
        present = []
        kinds = {f.kind for f in self.core_faults}
        if "failure" in kinds:
            present.append("core_failure")
        if "slowdown" in kinds:
            present.append("core_slowdown")
        if "reconfig_pin" in kinds:
            present.append("reconfig_pin")
        pkinds = {f.kind for f in self.predictor_faults}
        if "outage" in pkinds:
            present.append("predictor_outage")
        if "misprediction" in pkinds:
            present.append("misprediction")
        if self.counter_noise:
            present.append("counter_noise")
        if self.table_eviction_rate:
            present.append("table_eviction")
        if self.table_corruption_rate:
            present.append("table_corruption")
        if self.dispatch_failure_rate:
            present.append("dispatch_failure")
        return tuple(present)

    def rng(self, site: str) -> random.Random:
        """A dedicated deterministic stream for one fault site.

        String seeding makes the stream independent of
        ``PYTHONHASHSEED`` and identical across worker processes.
        """
        return random.Random(f"{self.seed}:{site}")

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable payload (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Reconstruct a plan from a :meth:`to_dict` payload."""
        data = dict(payload)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fault-plan fields {unknown}")
        data["core_faults"] = tuple(
            CoreFault(**entry) for entry in data.get("core_faults", ())
        )
        data["predictor_faults"] = tuple(
            PredictorFault(**entry)
            for entry in data.get("predictor_faults", ())
        )
        return cls(**data)

    def to_json(self, path) -> None:
        """Write the plan as a deterministic JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def describe(self) -> str:
        """Human-readable multi-line plan summary."""
        lines = [f"fault plan {self.name!r} (seed {self.seed})"]
        classes = self.classes()
        if not classes:
            lines.append("  empty: injects nothing")
            return "\n".join(lines)
        for fault in self.core_faults:
            end = "end-of-run" if fault.end_cycle is None else fault.end_cycle
            extra = (
                f" x{fault.factor:g}" if fault.kind == "slowdown" else ""
            )
            lines.append(
                f"  core {fault.core_index}: {fault.kind}{extra} "
                f"[{fault.start_cycle}, {end})"
            )
        for fault in self.predictor_faults:
            end = "end-of-run" if fault.end_cycle is None else fault.end_cycle
            extra = (
                f" offset {fault.offset}"
                if fault.kind == "misprediction"
                else ""
            )
            lines.append(
                f"  predictor: {fault.kind}{extra} "
                f"[{fault.start_cycle}, {end})"
            )
        if self.counter_noise:
            lines.append(
                f"  counter noise: +/-{self.counter_noise:.3f} per counter"
            )
        if self.table_eviction_rate:
            lines.append(
                f"  table eviction: p={self.table_eviction_rate:.3f} "
                "per completion"
            )
        if self.table_corruption_rate:
            lines.append(
                f"  table corruption: p={self.table_corruption_rate:.3f} "
                "per completion"
            )
        if self.dispatch_failure_rate:
            lines.append(
                f"  dispatch failure: p={self.dispatch_failure_rate:.3f}, "
                f"backoff {self.dispatch_retry_base_cycles}.."
                f"{self.dispatch_retry_cap_cycles} cycles, surrender after "
                f"{self.dispatch_max_retries} retries"
            )
        return "\n".join(lines)


def load_plan(path) -> FaultPlan:
    """Read a :meth:`FaultPlan.to_json` document back into a plan."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: fault plan must be a JSON object")
    return FaultPlan.from_dict(payload)


def generate_plan(
    seed: int,
    *,
    density: float = 0.25,
    horizon_cycles: int = 3_000_000,
    cores: int = 4,
    classes: Sequence[str] = FAULT_CLASSES,
    name: Optional[str] = None,
) -> FaultPlan:
    """Generate a mixed seeded plan (the CLI ``faults generate`` engine).

    ``density`` in [0, 1] scales window counts, window lengths and
    rates; the same ``(seed, density, horizon, cores, classes)`` always
    yields the same plan.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must lie in [0, 1]")
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    if cores <= 0:
        raise ValueError("cores must be positive")
    unknown = sorted(set(classes) - set(FAULT_CLASSES))
    if unknown:
        raise ValueError(
            f"unknown fault classes {unknown}; choose from {FAULT_CLASSES}"
        )
    rng = random.Random(f"{seed}:generate")
    chosen = set(classes)
    core_faults = []

    def window(max_share: float) -> Tuple[int, int]:
        start = rng.randrange(0, max(1, int(horizon_cycles * 0.7)))
        length = max(
            1, int(horizon_cycles * rng.uniform(0.05, max_share))
        )
        return start, start + length

    if "core_failure" in chosen:
        for _ in range(max(1, round(density * cores))):
            start, end = window(0.10 + 0.15 * density)
            core_faults.append(CoreFault(
                kind="failure",
                core_index=rng.randrange(cores),
                start_cycle=start,
                end_cycle=end,
            ))
    if "core_slowdown" in chosen:
        for _ in range(max(1, round(density * cores))):
            start, end = window(0.20 + 0.20 * density)
            core_faults.append(CoreFault(
                kind="slowdown",
                core_index=rng.randrange(cores),
                start_cycle=start,
                end_cycle=end,
                factor=round(rng.uniform(1.2, 1.2 + 2.8 * density), 3),
            ))
    if "reconfig_pin" in chosen:
        start, end = window(0.25 + 0.25 * density)
        core_faults.append(CoreFault(
            kind="reconfig_pin",
            core_index=rng.randrange(cores),
            start_cycle=start,
            end_cycle=end,
        ))
    predictor_faults = []
    if "predictor_outage" in chosen:
        start, end = window(0.10 + 0.30 * density)
        predictor_faults.append(PredictorFault(
            kind="outage", start_cycle=start, end_cycle=end,
        ))
    if "misprediction" in chosen:
        start, end = window(0.15 + 0.30 * density)
        predictor_faults.append(PredictorFault(
            kind="misprediction",
            start_cycle=start,
            end_cycle=end,
            offset=1 + (rng.random() < density),
        ))
    return FaultPlan(
        name=name if name is not None else f"generated-{seed}",
        seed=seed,
        core_faults=tuple(core_faults),
        predictor_faults=tuple(predictor_faults),
        counter_noise=(
            round(0.2 * density, 4) if "counter_noise" in chosen else 0.0
        ),
        table_eviction_rate=(
            round(0.15 * density, 4) if "table_eviction" in chosen else 0.0
        ),
        table_corruption_rate=(
            round(0.10 * density, 4) if "table_corruption" in chosen else 0.0
        ),
        dispatch_failure_rate=(
            round(0.20 * density, 4) if "dispatch_failure" in chosen else 0.0
        ),
        dispatch_max_retries=3,
    )
