"""Observability: event tracing, metrics and trace analysis.

Zero-dependency subsystem spanning every decision point of the
reproduction:

* :mod:`repro.obs.events` — typed trace events (arrival, profiling,
  prediction, stall/non-best decisions, tuning, reconfiguration,
  preemption, completion, energy attribution);
* :mod:`repro.obs.recorder` — recorder implementations; the default
  :data:`NULL_RECORDER` is near-zero overhead, and
  :class:`JsonlRecorder` streams byte-deterministic JSONL traces;
* :mod:`repro.obs.metrics` — counters, gauges and streaming-quantile
  histograms behind one :class:`MetricsRegistry` shared by sweeps,
  training, simulations and campaigns;
* :mod:`repro.obs.report` — per-core timeline and decision-breakdown
  reconstruction from a trace.

Observation never perturbs the simulation: recorders and registries
only ever *read* simulation state, and a traced run is bit-identical to
an untraced one.
"""

from .events import (
    EVENT_TYPES,
    ConfigInstalled,
    CoreDown,
    CoreUp,
    DeadlineMiss,
    EnergyAccrued,
    FallbackDecision,
    FaultInjected,
    InvariantViolation,
    JobArrived,
    JobCompleted,
    JobPreempted,
    NonBestDispatch,
    PowerThrottled,
    ProfilingCompleted,
    ProfilingStarted,
    SizePredicted,
    StallDecision,
    TaskReady,
    TokenGrant,
    TraceEvent,
    TuningStep,
    event_from_dict,
    validate_event_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile
from .recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    ListRecorder,
    NullRecorder,
    TraceRecorder,
    encode_event,
    iter_trace,
    read_trace,
    write_trace,
)
from .report import (
    ExecutionSegment,
    decision_breakdown,
    load_trace,
    per_core_timeline,
    render_trace_report,
    trace_summary,
)
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    Telemetry,
    read_telemetry,
    render_prometheus,
    render_telemetry_report,
)

__all__ = [
    "EVENT_TYPES",
    "NULL_RECORDER",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "ConfigInstalled",
    "CoreDown",
    "CoreUp",
    "Counter",
    "DeadlineMiss",
    "EnergyAccrued",
    "ExecutionSegment",
    "FallbackDecision",
    "FaultInjected",
    "Gauge",
    "Histogram",
    "InvariantViolation",
    "JobArrived",
    "JobCompleted",
    "JobPreempted",
    "JsonlRecorder",
    "ListRecorder",
    "MetricsRegistry",
    "NonBestDispatch",
    "NullRecorder",
    "P2Quantile",
    "PowerThrottled",
    "ProfilingCompleted",
    "ProfilingStarted",
    "SizePredicted",
    "StallDecision",
    "TaskReady",
    "TokenGrant",
    "TraceEvent",
    "TraceRecorder",
    "TuningStep",
    "decision_breakdown",
    "encode_event",
    "event_from_dict",
    "iter_trace",
    "load_trace",
    "per_core_timeline",
    "read_telemetry",
    "read_trace",
    "render_prometheus",
    "render_telemetry_report",
    "render_trace_report",
    "trace_summary",
    "validate_event_dict",
    "write_trace",
]
