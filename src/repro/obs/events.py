"""Typed trace events of the scheduler simulation.

Every run-time decision the paper's scheduler takes — profile, predict,
stall-vs-migrate, tune, reconfigure, preempt — has a corresponding event
type here.  Events are small frozen dataclasses; each carries the
simulation ``cycle`` it happened at plus the job id and core index where
those are meaningful (``None`` otherwise).  The stream a recorder
captures is fully determined by the simulation inputs, so a fixed
(policy, seed, load) cell always yields the same event sequence.

Serialisation is line-oriented JSON (one :meth:`TraceEvent.to_dict`
payload per line): ``kind`` selects the event class on the way back in
through :func:`event_from_dict`, and :func:`validate_event_dict` checks
a raw payload against the schema without constructing the event.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Type

__all__ = [
    "TraceEvent",
    "JobArrived",
    "ProfilingStarted",
    "ProfilingCompleted",
    "SizePredicted",
    "StallDecision",
    "NonBestDispatch",
    "TuningStep",
    "ConfigInstalled",
    "JobPreempted",
    "JobCompleted",
    "EnergyAccrued",
    "InvariantViolation",
    "FaultInjected",
    "CoreDown",
    "CoreUp",
    "FallbackDecision",
    "TaskReady",
    "DeadlineMiss",
    "TokenGrant",
    "PowerThrottled",
    "EVENT_TYPES",
    "event_from_dict",
    "validate_event_dict",
]

#: Execution categories used for energy attribution (see
#: :func:`repro.obs.report.decision_breakdown`).
CATEGORIES = ("profiling", "tuning", "non_best", "best")


class TraceEvent:
    """Base class of all trace events (serialisation mix-in)."""

    #: Stable wire name of the event (overridden per subclass).
    kind: str = "event"

    def to_dict(self) -> dict:
        """JSON-serialisable payload, ``kind`` included."""
        payload = {"kind": self.kind}
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        """Reconstruct the event from a :meth:`to_dict` payload.

        The ``sampled`` marker telemetry adds to re-emitted events (see
        :mod:`repro.obs.telemetry`) is envelope metadata, not an event
        field, so it is stripped here — sampled traces replay through
        the same classes as full-fidelity ones.
        """
        data = dict(payload)
        kind = data.pop("kind", None)
        data.pop("sampled", None)
        if kind != cls.kind:
            raise ValueError(f"payload kind {kind!r} is not {cls.kind!r}")
        return cls(**data)


@dataclass(frozen=True)
class JobArrived(TraceEvent):
    """A job entered the ready queue."""

    kind = "job_arrived"
    cycle: int
    job_id: int
    benchmark: str


@dataclass(frozen=True)
class ProfilingStarted(TraceEvent):
    """A profiling run began on a profiling core (base configuration)."""

    kind = "profiling_started"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str


@dataclass(frozen=True)
class ProfilingCompleted(TraceEvent):
    """A profiling run finished; counters entered the profiling table."""

    kind = "profiling_completed"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str


@dataclass(frozen=True)
class SizePredicted(TraceEvent):
    """The predictor mapped fresh counters to a best cache size.

    ``best_size_kb`` is the characterisation-store ground truth, carried
    so traces are self-contained for predictor hit-rate analysis.
    """

    kind = "size_predicted"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    size_kb: int
    best_size_kb: int


@dataclass(frozen=True)
class StallDecision(TraceEvent):
    """The policy explicitly chose to keep a job waiting (§IV.E)."""

    kind = "stall_decision"
    cycle: int
    job_id: int
    benchmark: str
    core_index: Optional[int] = None


@dataclass(frozen=True)
class NonBestDispatch(TraceEvent):
    """The policy explicitly ran a job on a non-best core (§IV.E)."""

    kind = "non_best_dispatch"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    config: str
    predicted_size_kb: int


@dataclass(frozen=True)
class TuningStep(TraceEvent):
    """One tuning-heuristic exploration execution (paper Figure 5)."""

    kind = "tuning_step"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    config: str
    #: 1-based exploration index within the (benchmark, size) session.
    step: int


@dataclass(frozen=True)
class ConfigInstalled(TraceEvent):
    """The cache tuner reconfigured a core's L1 (non-free switch)."""

    kind = "config_installed"
    cycle: int
    job_id: int
    core_index: int
    config: str
    cycles: int
    energy_nj: float


@dataclass(frozen=True)
class JobPreempted(TraceEvent):
    """A running job was halted; its unexecuted charges were refunded."""

    kind = "job_preempted"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    category: str
    #: Share of the scheduled service that executed before the halt.
    fraction_run: float
    refunded_dynamic_nj: float
    refunded_static_nj: float
    refunded_overhead_nj: float
    #: Why the job was requeued: a scheduler ``preemption`` (default)
    #: or a fault-injected ``core_failure``.  Both reasons share one
    #: requeue/refund code path, so the accounting semantics of this
    #: event are identical either way.
    reason: str = "preemption"


@dataclass(frozen=True)
class JobCompleted(TraceEvent):
    """An execution ran to completion on its core."""

    kind = "job_completed"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    config: str
    category: str
    energy_nj: float
    waiting_cycles: int


@dataclass(frozen=True)
class InvariantViolation(TraceEvent):
    """A validation invariant failed (``validate=True`` runs only).

    Emitted immediately before the
    :class:`~repro.validate.ledger.ValidationError` raise, so the trace
    of a failing run ends with the machine-readable reason.  ``check``
    is the dotted invariant name (e.g. ``invariant.queue``,
    ``ledger.total``); ``detail`` is the human-readable diagnosis.
    """

    kind = "invariant_violation"
    cycle: int
    check: str
    detail: str
    job_id: Optional[int] = None
    core_index: Optional[int] = None


@dataclass(frozen=True)
class EnergyAccrued(TraceEvent):
    """Energy charged when an execution starts (pro-rata for resumes).

    Emitted once per execution start; ``service_cycles`` is the planned
    occupancy, so (``cycle``, ``cycle + service_cycles``) is the
    execution's scheduled window — a later :class:`JobPreempted` on the
    same core truncates it.
    """

    kind = "energy_accrued"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    category: str
    dynamic_nj: float
    static_nj: float
    overhead_nj: float
    service_cycles: int


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """One fault fired from the active plan (see :mod:`repro.faults`).

    ``fault`` is the fault class (``dispatch_failure``,
    ``reconfig_pin``, ``core_slowdown``, ``misprediction``,
    ``counter_noise``, ``table_eviction``, ``table_corruption``);
    ``site`` names where it struck (a core, a benchmark); ``detail`` is
    the human-readable specifics.  Core failure/recovery edges have
    their own :class:`CoreDown`/:class:`CoreUp` events.
    """

    kind = "fault_injected"
    cycle: int
    fault: str
    site: str
    detail: str = ""
    job_id: Optional[int] = None
    core_index: Optional[int] = None


@dataclass(frozen=True)
class CoreDown(TraceEvent):
    """A core entered a fault-injected failure window."""

    kind = "core_down"
    cycle: int
    core_index: int


@dataclass(frozen=True)
class CoreUp(TraceEvent):
    """A core's failure window closed; it accepts dispatches again."""

    kind = "core_up"
    cycle: int
    core_index: int


@dataclass(frozen=True)
class FallbackDecision(TraceEvent):
    """The scheduler degraded gracefully instead of its normal path.

    ``reason`` is one of ``predictor_outage`` (base-config size
    heuristic used), ``retries_exhausted`` (dispatch surrendered to any
    idle core) or ``forced_dispatch`` (deadlock breaker placed a
    stranded job).
    """

    kind = "fallback_decision"
    cycle: int
    job_id: int
    benchmark: str
    reason: str
    core_index: Optional[int] = None


@dataclass(frozen=True)
class TaskReady(TraceEvent):
    """A DAG task's last predecessor completed; it entered the queue.

    Only emitted for *released* tasks (those with predecessors): root
    tasks of a graph arrive through the normal :class:`JobArrived`
    path, which keeps an edge-free DAG run's trace byte-identical to
    the equivalent plain-arrival run.  ``graph_id``/``task_id`` locate
    the task inside its :class:`~repro.workloads.dag.TaskGraph`.
    """

    kind = "task_ready"
    cycle: int
    job_id: int
    benchmark: str
    graph_id: int
    task_id: int


@dataclass(frozen=True)
class DeadlineMiss(TraceEvent):
    """A deadlined job completed after its deadline.

    ``miss_cycles`` is the (positive) overshoot:
    ``cycle - deadline_cycle``.  Jobs that meet their deadline emit no
    event — the slack histogram in the metrics registry covers them.
    """

    kind = "deadline_miss"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    deadline_cycle: int
    miss_cycles: int


@dataclass(frozen=True)
class TokenGrant(TraceEvent):
    """A dispatch spent power tokens from the budget pool.

    ``tokens_nj`` is the dispatch's dynamic+static charge at its
    operating point — exactly what returns through the refund path on
    preemption or settles on completion, so replaying a trace's grants
    against its charges balances bit-for-bit.  ``dvfs`` is the
    operating-point name (empty when no DVFS table is configured).
    """

    kind = "token_grant"
    cycle: int
    job_id: int
    core_index: int
    benchmark: str
    config: str
    dvfs: str
    tokens_nj: float


@dataclass(frozen=True)
class PowerThrottled(TraceEvent):
    """The power gate intervened in a dispatch.

    ``reason`` is ``wait`` (the job stays queued until tokens free up),
    ``degraded`` (a cheaper config/operating point was substituted
    within the slack), or ``overdraft`` (nothing was affordable but no
    tokens were held anywhere, so the preferred dispatch proceeded —
    the progress guarantee).  ``price_nj`` is the preferred option's
    token price.
    """

    kind = "power_throttled"
    cycle: int
    job_id: int
    benchmark: str
    reason: str
    price_nj: float


#: Wire name → event class, for deserialisation and schema validation.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        JobArrived,
        ProfilingStarted,
        ProfilingCompleted,
        SizePredicted,
        StallDecision,
        NonBestDispatch,
        TuningStep,
        ConfigInstalled,
        JobPreempted,
        JobCompleted,
        EnergyAccrued,
        InvariantViolation,
        FaultInjected,
        CoreDown,
        CoreUp,
        FallbackDecision,
        TaskReady,
        DeadlineMiss,
        TokenGrant,
        PowerThrottled,
    )
}


def event_from_dict(payload: dict) -> TraceEvent:
    """Reconstruct any event from its :meth:`TraceEvent.to_dict` payload."""
    kind = payload.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    return cls.from_dict(payload)


#: Lenient runtime type buckets for schema validation.  ``float`` fields
#: accept ints (JSON round-trips 1.0 → 1.0 but sources may emit 0).
_TYPE_CHECKS = {
    int: lambda v: isinstance(v, int) and not isinstance(v, bool),
    float: lambda v: (
        isinstance(v, (int, float)) and not isinstance(v, bool)
    ),
    str: lambda v: isinstance(v, str),
    Optional[int]: lambda v: v is None
    or (isinstance(v, int) and not isinstance(v, bool)),
}


def validate_event_dict(payload: dict) -> None:
    """Raise ``ValueError`` if a raw payload violates the event schema.

    Checks: known ``kind``, exactly the declared field set, and
    per-field value types.  Used by the golden-trace CI validation.
    """
    kind = payload.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    declared = {f.name: f.type for f in fields(cls)}
    if "sampled" in payload and not isinstance(payload["sampled"], bool):
        raise ValueError(f"{kind}.sampled: expected bool")
    present = set(payload) - {"kind", "sampled"}
    missing = [
        name
        for name, type_ in declared.items()
        if name not in present and not str(type_).startswith("Optional")
    ]
    unknown = sorted(present - set(declared))
    if missing:
        raise ValueError(f"{kind}: missing fields {missing}")
    if unknown:
        raise ValueError(f"{kind}: unknown fields {unknown}")
    hints = {
        "cycle": int,
        "job_id": int,
        "core_index": int,
        "step": int,
        "cycles": int,
        "size_kb": int,
        "best_size_kb": int,
        "predicted_size_kb": int,
        "waiting_cycles": int,
        "service_cycles": int,
        "graph_id": int,
        "task_id": int,
        "deadline_cycle": int,
        "miss_cycles": int,
    }
    for name in present:
        value = payload[name]
        if name in ("benchmark", "config", "category", "kind", "check",
                    "detail", "reason", "fault", "site", "dvfs"):
            if not isinstance(value, str):
                raise ValueError(f"{kind}.{name}: expected str")
        elif value is None and str(declared[name]).startswith("Optional"):
            continue  # e.g. StallDecision / InvariantViolation core/job
        elif name in hints:
            if not _TYPE_CHECKS[int](value):
                raise ValueError(f"{kind}.{name}: expected int")
        else:  # energies / fractions
            if not _TYPE_CHECKS[float](value):
                raise ValueError(f"{kind}.{name}: expected number")
    if payload["cycle"] < 0:
        raise ValueError(f"{kind}.cycle: negative")
