"""Metrics registry: counters, gauges and streaming histograms.

One API for every stage of the reproduction — the scheduler simulation,
the characterisation sweeps, predictor training and replication
campaigns all report through a :class:`MetricsRegistry`.  Instruments
are created on first use and live for the registry's lifetime:

* :class:`Counter` — monotonically increasing event counts;
* :class:`Gauge` — last-written point-in-time values;
* :class:`Histogram` — running count/sum/min/max plus streaming
  quantile estimates (p50/p90/p99 by default) via the P² algorithm
  [Jain & Chlamtac 1985], so no samples are stored regardless of how
  many observations arrive.

:meth:`MetricsRegistry.snapshot` returns a nested plain-dict view;
:meth:`MetricsRegistry.scalars` flattens it to ``name -> float`` (with
``histogram.field`` keys), which is what campaign workers ship back
across the fork pool for per-cell aggregation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


class P2Quantile:
    """Streaming estimate of one quantile (the P² algorithm).

    Keeps five markers instead of the sample set; the estimate converges
    to the true quantile as observations accumulate and is exact while
    fewer than five samples have been seen.  Fully deterministic for a
    fixed observation sequence.
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = p
        self._heights: List[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
        self._increments = [0.0, p / 2, p, (1 + p) / 2, 1.0]

    def observe(self, x: float) -> None:
        """Feed one observation."""
        q = self._heights
        if len(q) < 5:
            q.append(x)
            q.sort()
            return
        n = self._positions
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= q[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]
        for i in (1, 2, 3):
            d = desired[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (
                d <= -1 and n[i - 1] - n[i] < -1
            ):
                step = 1 if d >= 0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._heights, self._positions
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (0.0 before any observation)."""
        q = self._heights
        if not q:
            return 0.0
        if len(q) < 5:
            # Exact linear-interpolated quantile of the few samples.
            rank = self.p * (len(q) - 1)
            low = int(rank)
            high = min(low + 1, len(q) - 1)
            return q[low] + (q[high] - q[low]) * (rank - low)
        return q[2]

    @property
    def count(self) -> int:
        """Observations fed so far."""
        q = self._heights
        return len(q) if len(q) < 5 else self._positions[4]

    def snapshot(self) -> Dict[str, float]:
        """Cheap point-in-time view: ``{p, count, value}``.

        Reads the current marker state without merging, copying or
        touching the estimator, so periodic window reporting can call
        it at any cadence with O(1) cost and zero perturbation of the
        stream.
        """
        return {
            "p": self.p,
            "count": float(self.count),
            "value": self.value,
        }

    def state_dict(self) -> dict:
        """Full estimator state, JSON-serialisable and exact.

        Every field (marker heights, integer positions, fractional
        desired positions) round-trips bit-exactly through
        :meth:`load_state`, so a checkpointed estimator continues the
        stream as if never interrupted.
        """
        return {
            "p": self.p,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
        }

    def load_state(self, state: dict) -> None:
        """Restore the exact state captured by :meth:`state_dict`."""
        if state["p"] != self.p:
            raise ValueError(
                f"state is for p={state['p']}, estimator tracks p={self.p}"
            )
        self._heights = [float(x) for x in state["heights"]]
        self._positions = [int(x) for x in state["positions"]]
        self._desired = [float(x) for x in state["desired"]]


#: Default histogram quantiles (reported as p50 / p90 / p99).
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


def _quantile_key(p: float) -> str:
    return f"p{p * 100:g}".replace(".", "_")


class Histogram:
    """Streaming distribution summary: count/sum/min/max + quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_estimators")

    def __init__(
        self, name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._estimators = tuple(P2Quantile(p) for p in quantiles)

    def observe(self, value: float) -> None:
        """Feed one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._estimators:
            estimator.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> float:
        """Current estimate for one of the configured quantiles."""
        for estimator in self._estimators:
            if estimator.p == p:
                return estimator.value
        raise KeyError(f"histogram {self.name!r} does not track p={p}")

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict summary of the distribution so far."""
        empty = self.count == 0
        summary: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
        }
        for estimator in self._estimators:
            summary[_quantile_key(estimator.p)] = estimator.value
        return summary

    def state_dict(self) -> dict:
        """Exact JSON-serialisable state (for checkpoint/resume)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "estimators": [e.state_dict() for e in self._estimators],
        }

    def load_state(self, state: dict) -> None:
        """Restore the exact state captured by :meth:`state_dict`."""
        estimators = state["estimators"]
        if len(estimators) != len(self._estimators):
            raise ValueError(
                f"state has {len(estimators)} estimators, histogram "
                f"{self.name!r} tracks {len(self._estimators)}"
            )
        self.count = int(state["count"])
        self.total = float(state["total"])
        self.min = float(state["min"])
        self.max = float(state["max"])
        for estimator, sub in zip(self._estimators, estimators):
            estimator.load_state(sub)


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at zero on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> Histogram:
        """The histogram called ``name`` (created empty on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, quantiles)
        return instrument

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the ``<name>_seconds`` histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(f"{name}_seconds").observe(
                time.perf_counter() - start
            )

    # -- views ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Nested plain-dict view of every instrument (sorted names)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def scalars(self) -> Dict[str, float]:
        """Flat ``name -> value`` view (histogram fields dot-suffixed).

        This is the exchange format campaign workers return across the
        process pool; every value is a plain float, so the dict pickles
        cheaply and aggregates uniformly.
        """
        flat: Dict[str, float] = {}
        for name in sorted(self._counters):
            flat[name] = float(self._counters[name].value)
        for name in sorted(self._gauges):
            flat[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            for field, value in self._histograms[name].snapshot().items():
                flat[f"{name}.{field}"] = value
        return flat
