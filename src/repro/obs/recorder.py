"""Trace recorders: where the simulation's event stream goes.

The simulation takes any object with the :class:`TraceRecorder`
interface.  The default :data:`NULL_RECORDER` advertises
``enabled = False`` so every emission site can skip even *constructing*
the event (the observation layer costs one attribute load and branch
per hook when off — observation never perturbs the simulation either
way, it only reads).

* :class:`ListRecorder` keeps events in memory (tests, analysis);
* :class:`JsonlRecorder` streams them to a JSONL file with a canonical
  encoding (sorted keys, compact separators), so two runs of the same
  deterministic scenario produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from .events import TraceEvent, event_from_dict

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "ListRecorder",
    "JsonlRecorder",
    "encode_event",
    "write_trace",
    "iter_trace",
    "read_trace",
]


def encode_event(event: TraceEvent) -> str:
    """Canonical one-line JSON encoding of an event (no newline)."""
    return json.dumps(
        event.to_dict(), sort_keys=True, separators=(",", ":")
    )


class TraceRecorder:
    """Interface the simulation emits events through.

    ``enabled`` lets hot paths skip event construction entirely; a
    recorder that is not enabled never receives events.
    """

    #: Whether emission sites should build and send events.
    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        """Record one event (events arrive in simulation order)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""


class NullRecorder(TraceRecorder):
    """Discards everything; the zero-overhead default."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - skipped
        pass


#: Shared default recorder instance (stateless, safe to share).
NULL_RECORDER = NullRecorder()


class ListRecorder(TraceRecorder):
    """Accumulates events in an in-memory list."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlRecorder(TraceRecorder):
    """Streams events to a JSONL file (one canonical JSON line each).

    Usable as a context manager; :meth:`close` is idempotent and also
    runs on ``with`` exit.  Pass an open text handle instead of a path
    to write into an existing stream (the handle is then *not* closed).
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: IO[str] = target
            self._owns_handle = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8", newline="\n")
            self._owns_handle = True
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(encode_event(event))
        self._handle.write("\n")
        self.count += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_trace(
    events: Iterable[TraceEvent], path: Union[str, Path]
) -> int:
    """Write a finished event list as a JSONL trace; returns the count."""
    with JsonlRecorder(path) as recorder:
        for event in events:
            recorder.emit(event)
        return recorder.count


def iter_trace(path: Union[str, Path]) -> Iterator[TraceEvent]:
    """Lazily parse a JSONL trace back into typed events."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from None
            yield event_from_dict(payload)


def read_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Parse a whole JSONL trace into a list of typed events."""
    return list(iter_trace(path))
