"""Trace analysis: per-core timelines and decision breakdowns.

A JSONL trace (see :mod:`repro.obs.recorder`) fully describes one
simulation run; this module reconstructs from it

* the **per-core timeline** — every execution window on every core,
  with its category (profiling / tuning / non-best / best) and whether
  it completed or was preempted;
* the **decision breakdown** — energy attributed to each dispatch
  category, preemption refunds applied, plus the explicit stall count;
* a human-readable **report** combining both.

Everything here is a pure function of the event list, so
``emit → parse → report`` round-trips without touching the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .events import (
    CATEGORIES,
    ConfigInstalled,
    EnergyAccrued,
    JobArrived,
    JobCompleted,
    JobPreempted,
    ProfilingCompleted,
    SizePredicted,
    StallDecision,
    TraceEvent,
)
from .recorder import read_trace

__all__ = [
    "ExecutionSegment",
    "load_trace",
    "per_core_timeline",
    "decision_breakdown",
    "trace_summary",
    "render_trace_report",
]


@dataclass(frozen=True)
class ExecutionSegment:
    """One execution window on one core, reconstructed from a trace."""

    core_index: int
    job_id: int
    benchmark: str
    category: str
    start_cycle: int
    #: Actual end: completion or preemption cycle (scheduled end when
    #: the trace stops mid-execution).
    end_cycle: int
    #: False when the window was cut short by a preemption.
    completed: bool

    @property
    def cycles(self) -> int:
        """Occupied cycles of the window."""
        return self.end_cycle - self.start_cycle


def load_trace(path: Union[str, Path]) -> List[TraceEvent]:
    """Parse a JSONL trace file into typed events (alias of read_trace)."""
    return read_trace(path)


def per_core_timeline(
    events: Sequence[TraceEvent],
    *,
    lenient: bool = False,
) -> Dict[int, List[ExecutionSegment]]:
    """Reconstruct every core's execution windows, in start order.

    :class:`~repro.obs.events.EnergyAccrued` opens a window (it is
    emitted exactly once per execution start and carries the scheduled
    service); :class:`~repro.obs.events.JobCompleted` /
    :class:`~repro.obs.events.JobPreempted` close it.

    ``lenient`` accepts *sampled* traces (``--sampled-trace``), where
    most starts and completions lack their counterpart: an unmatched
    start closes at its scheduled end, and an unmatched completion is
    skipped (its start cycle is unknowable).  A full trace should keep
    the default strict pairing, which flags malformed traces.
    """
    open_windows: Dict[int, EnergyAccrued] = {}
    timeline: Dict[int, List[ExecutionSegment]] = {}

    def flush(core: int) -> None:
        started = open_windows.pop(core)
        timeline.setdefault(core, []).append(
            ExecutionSegment(
                core_index=core,
                job_id=started.job_id,
                benchmark=started.benchmark,
                category=started.category,
                start_cycle=started.cycle,
                end_cycle=started.cycle + started.service_cycles,
                completed=False,
            )
        )

    def close(core: int, job_id: int, end_cycle: int,
              completed: bool) -> None:
        started = open_windows.get(core)
        if lenient and (started is None or started.job_id != job_id):
            # Sampled trace: this completion's start was not sampled.
            # A stale window on the core still closes at its own
            # scheduled end so it is not silently dropped.
            if started is not None and started.cycle + \
                    started.service_cycles <= end_cycle:
                flush(core)
            return
        started = open_windows.pop(core)
        timeline.setdefault(core, []).append(
            ExecutionSegment(
                core_index=core,
                job_id=started.job_id,
                benchmark=started.benchmark,
                category=started.category,
                start_cycle=started.cycle,
                end_cycle=end_cycle,
                completed=completed,
            )
        )

    for event in events:
        if isinstance(event, EnergyAccrued):
            if event.core_index in open_windows:
                if not lenient:
                    raise ValueError(
                        f"core {event.core_index} started job "
                        f"{event.job_id} at {event.cycle} while "
                        "already occupied"
                    )
                flush(event.core_index)
            open_windows[event.core_index] = event
        elif isinstance(event, JobCompleted):
            close(event.core_index, event.job_id, event.cycle,
                  completed=True)
        elif isinstance(event, JobPreempted):
            close(event.core_index, event.job_id, event.cycle,
                  completed=False)
    # Truncated trace: close what is still running at its scheduled end.
    for core, started in sorted(open_windows.items()):
        timeline.setdefault(core, []).append(
            ExecutionSegment(
                core_index=core,
                job_id=started.job_id,
                benchmark=started.benchmark,
                category=started.category,
                start_cycle=started.cycle,
                end_cycle=started.cycle + started.service_cycles,
                completed=False,
            )
        )
    return {core: timeline[core] for core in sorted(timeline)}


def decision_breakdown(
    events: Sequence[TraceEvent],
) -> Dict[str, Dict[str, float]]:
    """Energy attributed to each dispatch category, refunds applied.

    Returns ``category -> {executions, completions, preemptions,
    dynamic_nj, static_nj, overhead_nj, total_nj}`` for the categories
    in :data:`~repro.obs.events.CATEGORIES`, plus a ``"stall"`` row
    carrying only the explicit stall-decision count.
    """
    breakdown: Dict[str, Dict[str, float]] = {
        category: {
            "executions": 0.0,
            "completions": 0.0,
            "preemptions": 0.0,
            "dynamic_nj": 0.0,
            "static_nj": 0.0,
            "overhead_nj": 0.0,
        }
        for category in CATEGORIES
    }
    stalls = 0
    for event in events:
        if isinstance(event, EnergyAccrued):
            row = breakdown[event.category]
            row["executions"] += 1
            row["dynamic_nj"] += event.dynamic_nj
            row["static_nj"] += event.static_nj
            row["overhead_nj"] += event.overhead_nj
        elif isinstance(event, JobCompleted):
            breakdown[event.category]["completions"] += 1
        elif isinstance(event, JobPreempted):
            row = breakdown[event.category]
            row["preemptions"] += 1
            row["dynamic_nj"] -= event.refunded_dynamic_nj
            row["static_nj"] -= event.refunded_static_nj
            row["overhead_nj"] -= event.refunded_overhead_nj
        elif isinstance(event, StallDecision):
            stalls += 1
    for row in breakdown.values():
        row["total_nj"] = (
            row["dynamic_nj"] + row["static_nj"] + row["overhead_nj"]
        )
    breakdown["stall"] = {"decisions": float(stalls)}
    return breakdown


def trace_summary(events: Sequence[TraceEvent]) -> Dict[str, int]:
    """Headline counts of a trace (event totals by meaning)."""
    kinds: Dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    last_cycle = max((e.cycle for e in events), default=0)
    predictions = [e for e in events if isinstance(e, SizePredicted)]
    hits = sum(1 for e in predictions if e.size_kb == e.best_size_kb)
    return {
        "events": len(events),
        "jobs_arrived": kinds.get(JobArrived.kind, 0),
        "jobs_completed": kinds.get(JobCompleted.kind, 0),
        "profiling_runs": kinds.get(ProfilingCompleted.kind, 0),
        "predictions": len(predictions),
        "prediction_hits": hits,
        "stall_decisions": kinds.get(StallDecision.kind, 0),
        "non_best_dispatches": kinds.get("non_best_dispatch", 0),
        "tuning_steps": kinds.get("tuning_step", 0),
        "reconfigurations": kinds.get(ConfigInstalled.kind, 0),
        "preemptions": kinds.get(JobPreempted.kind, 0),
        "last_cycle": last_cycle,
    }


def render_trace_report(
    events: Sequence[TraceEvent], *, lenient: bool = False
) -> str:
    """Human-readable report: summary, decision breakdown, timelines.

    Pass ``lenient=True`` for sampled traces (see
    :func:`per_core_timeline`); the report header then marks the
    counts as sampled lower bounds.
    """
    from repro.analysis.report import format_table

    summary = trace_summary(events)
    lines = [
        ("sampled " if lenient else "")
        + f"trace: {summary['events']} events, "
        f"{summary['jobs_arrived']} arrivals, "
        f"{summary['jobs_completed']} completions, "
        f"last cycle {summary['last_cycle']:,}",
        f"decisions: {summary['stall_decisions']} stalls, "
        f"{summary['non_best_dispatches']} non-best dispatches, "
        f"{summary['tuning_steps']} tuning steps, "
        f"{summary['preemptions']} preemptions",
    ]
    if summary["predictions"]:
        rate = summary["prediction_hits"] / summary["predictions"]
        lines.append(
            f"predictor: {summary['prediction_hits']}/"
            f"{summary['predictions']} best-size hits "
            f"({rate * 100:.1f}% vs characterisation ground truth)"
        )

    breakdown = decision_breakdown(events)
    rows = []
    for category in CATEGORIES:
        row = breakdown[category]
        rows.append(
            (
                category,
                int(row["executions"]),
                int(row["preemptions"]),
                f"{row['dynamic_nj'] / 1e3:.1f}",
                f"{row['static_nj'] / 1e3:.1f}",
                f"{row['total_nj'] / 1e3:.1f}",
            )
        )
    rows.append(
        ("stall", int(breakdown["stall"]["decisions"]), 0, "-", "-", "-")
    )
    lines.append("")
    lines.append("decision breakdown (energy attributed per dispatch kind):")
    lines.append(
        format_table(
            (
                "decision",
                "executions",
                "preempted",
                "dynamic uJ",
                "static uJ",
                "total uJ",
            ),
            rows,
        )
    )

    timeline = per_core_timeline(events, lenient=lenient)
    if timeline:
        span = max(summary["last_cycle"], 1)
        core_rows = []
        for core, segments in timeline.items():
            busy = sum(s.cycles for s in segments)
            categories = {}
            for segment in segments:
                categories[segment.category] = (
                    categories.get(segment.category, 0) + 1
                )
            mix = ", ".join(
                f"{count}x {name}"
                for name, count in sorted(categories.items())
            )
            core_rows.append(
                (
                    f"core {core}",
                    len(segments),
                    f"{busy:,}",
                    f"{busy / span * 100:.1f}%",
                    mix,
                )
            )
        lines.append("")
        lines.append("per-core timeline:")
        lines.append(
            format_table(
                ("core", "executions", "busy cycles", "utilisation", "mix"),
                core_rows,
            )
        )
    return "\n".join(lines)
