"""Low-overhead sampled telemetry for the fast and streaming engines.

The fast and streaming engines (:mod:`repro.sim.fast`,
:mod:`repro.sim.stream`) compile the per-event observability hooks out
of their hot loops — that is what makes them fast — so a run at the
scale the ROADMAP cares about (millions of jobs, sustained load) used
to be a black box until the final result.  :class:`Telemetry` closes
that gap without reopening the hot path: the engines feed it only at
**chunk boundaries** (every arrival-buffer refill for the streaming
engine, every ``sample_every`` completions for the closed-batch fast
engine), where it *reads* engine state — queue depth, per-core busy
cycles and cache configuration, jobs done, windowed P² wait quantiles,
energy accrued, throughput — and appends one versioned JSONL sample.

Three invariants make it safe and resumable:

* **Non-perturbation** — telemetry only reads state the engine already
  maintains; a telemetry-on run is bit-identical (results and post-run
  state) to a telemetry-off run.  The engines guard every telemetry
  touch point with a single integer compare against a sentinel, so the
  telemetry-off cost is one compare per completion.
* **Determinism** — JSONL samples carry only simulation-derived fields
  (no wall-clock timestamps), canonically encoded (sorted keys, compact
  separators, ASCII), so a fixed run always produces byte-identical
  telemetry files.  Wall-clock rates appear only on the ephemeral
  ``--progress`` stderr line.
* **Resumability** — :meth:`Telemetry.state_dict` records the sample
  count and exact byte offsets of both output files; the streaming
  checkpoint folds that in, and :meth:`Telemetry.load_state` truncates
  the files back to the recorded offsets on resume, so a killed and
  resumed stream reproduces byte-identical telemetry JSONL.

On top of the samples, every ``trace_every``-th dispatch/completion is
re-emitted through the typed :mod:`repro.obs.events` schema (marked
``"sampled": true``) so the ``repro trace`` / replay tooling keeps
working on fast-engine runs, and :func:`render_prometheus` turns the
latest sample into a Prometheus-style text exposition.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, TextIO, Tuple, Union

from .events import EnergyAccrued, JobCompleted
from .metrics import Histogram

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "read_telemetry",
    "render_prometheus",
    "render_telemetry_report",
]

#: Version of the JSONL sample schema (header line + sample lines).
TELEMETRY_SCHEMA_VERSION = 1

#: Default completions between fast-engine samples.
DEFAULT_SAMPLE_EVERY = 1000


def _encode(payload: dict) -> str:
    """Canonical one-line JSON: sorted keys, compact, pure ASCII.

    ASCII output means ``len(str) == len(bytes)`` for offset tracking.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class Telemetry:
    """Chunk-boundary telemetry sink for the fast/streaming engines.

    Parameters
    ----------
    out:
        JSONL time-series destination — a path or an open text handle
        (``None`` disables the file; progress/trace still work).
    trace_out:
        Sampled-trace destination (typed events, ``sampled=true``).
        Requires ``trace_every >= 1``.
    sample_every:
        Completions between samples on the closed-batch fast engine
        (the streaming engine samples at every arrival-buffer refill).
    trace_every:
        Re-emit every Nth dispatch and completion as a typed event;
        ``0`` disables sampled tracing entirely.
    progress:
        Writable stream for the live one-line progress display
        (typically ``sys.stderr``); ``None`` disables it.
    progress_interval:
        Minimum wall-clock seconds between progress repaints.
    label:
        Prefix for the progress line (e.g. ``"compare:proposed"``).
    """

    def __init__(
        self,
        *,
        out: Union[str, os.PathLike, TextIO, None] = None,
        trace_out: Union[str, os.PathLike, TextIO, None] = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        trace_every: int = 0,
        progress: Optional[TextIO] = None,
        progress_interval: float = 0.5,
        label: str = "",
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if trace_every < 0:
            raise ValueError("trace_every must be >= 0")
        if trace_every > 0 and trace_out is None:
            raise ValueError("trace_every > 0 needs a trace_out destination")
        if trace_out is not None and trace_every == 0:
            raise ValueError(
                "trace_out needs trace_every >= 1 (0 disables sampling)"
            )
        self.sample_every = sample_every
        self.trace_every = trace_every
        self.label = label
        self.progress_interval = progress_interval

        self._out, self._out_path = self._split_target(out)
        self._trace, self._trace_path = self._split_target(trace_out)
        self._owns_out = False
        self._owns_trace = False

        #: Samples emitted so far (the ``i`` field of the next sample).
        self.samples = 0
        #: Exact byte offsets of the two output files (resume points).
        self.out_bytes = 0
        self.trace_bytes = 0
        #: Sampled trace events emitted so far.
        self.trace_events = 0
        #: The last sample payload (what ``render_prometheus`` exposes).
        self.last_sample: Optional[dict] = None
        #: Set once the final sample of a run has been written.
        self.finalized = False
        #: Wait-time window the *fast* engine feeds at sample time (the
        #: streaming engine passes its own histogram snapshot instead).
        self.wait_hist = Histogram("telemetry.waiting_cycles")

        self._progress = progress
        self._progress_len = 0
        self._progress_written = False
        self._progress_base: Optional[Tuple[float, int]] = None
        self._last_progress_t = float("-inf")
        self._t0: Optional[float] = None

    @staticmethod
    def _split_target(target):
        """``(handle, path)`` — exactly one is set for a live target."""
        if target is None:
            return None, None
        if hasattr(target, "write"):
            return target, None
        return None, os.fspath(target)

    # -- run lifecycle -------------------------------------------------------

    def begin(self, header: Optional[dict] = None) -> None:
        """Open outputs and write the versioned header line (once).

        Engines call this at run start (and again on resume, where the
        already-nonzero byte offset suppresses a second header).  The
        header must only carry deterministic run metadata — never
        wall-clock values — so reruns stay byte-identical.
        """
        if self._t0 is None:
            self._t0 = time.perf_counter()
        if self._out is None and self._out_path is not None:
            self._out = open(
                self._out_path, "w", encoding="utf-8", newline="\n"
            )
            self._owns_out = True
        if self._trace is None and self._trace_path is not None:
            self._trace = open(
                self._trace_path, "w", encoding="utf-8", newline="\n"
            )
            self._owns_trace = True
        if self._out is not None and self.out_bytes == 0:
            payload = {
                "kind": "telemetry",
                "schema": TELEMETRY_SCHEMA_VERSION,
                "sample_every": self.sample_every,
                "trace_every": self.trace_every,
            }
            if header:
                payload.update(header)
            line = _encode(payload) + "\n"
            self._out.write(line)
            self._out.flush()
            self.out_bytes += len(line)

    def close(self) -> None:
        """Close owned file handles; finish the progress line if shown."""
        if (
            self._progress is not None
            and self._progress_written
            and not self.finalized
        ):
            self._progress.write("\n")
            self._progress.flush()
            self._progress_written = False
        if self._owns_out and self._out is not None:
            self._out.close()
            self._out = None
            self._owns_out = False
        if self._owns_trace and self._trace is not None:
            self._trace.close()
            self._trace = None
            self._owns_trace = False

    # -- samples -------------------------------------------------------------

    def sample(self, *, final: bool = False, **fields) -> None:
        """Append one JSONL sample built from engine-state ``fields``.

        Every value must be simulation-derived (deterministic); the
        sink adds only the ``kind``/``i`` envelope and the ``final``
        marker.  Each line is flushed immediately so the file on disk
        is never behind the byte offset a checkpoint records.
        """
        if self.finalized:
            return
        payload = dict(fields)
        payload["kind"] = "sample"
        payload["i"] = self.samples
        if final:
            payload["final"] = True
            self.finalized = True
        if self._out is not None:
            line = _encode(payload) + "\n"
            self._out.write(line)
            self._out.flush()
            self.out_bytes += len(line)
        self.samples += 1
        self.last_sample = payload
        self._repaint_progress(payload, final=final)

    # -- sampled trace events ------------------------------------------------

    def emit_completion(
        self,
        *,
        cycle: int,
        job_id: int,
        core_index: int,
        benchmark: str,
        config: str,
        category: str,
        energy_nj: float,
        waiting_cycles: int,
    ) -> None:
        """Re-emit one completion through the typed-event schema."""
        self._emit(JobCompleted(
            cycle=cycle, job_id=job_id, core_index=core_index,
            benchmark=benchmark, config=config, category=category,
            energy_nj=energy_nj, waiting_cycles=waiting_cycles,
        ))

    def emit_dispatch(
        self,
        *,
        cycle: int,
        job_id: int,
        core_index: int,
        benchmark: str,
        category: str,
        dynamic_nj: float,
        static_nj: float,
        overhead_nj: float,
        service_cycles: int,
    ) -> None:
        """Re-emit one execution start through the typed-event schema."""
        self._emit(EnergyAccrued(
            cycle=cycle, job_id=job_id, core_index=core_index,
            benchmark=benchmark, category=category,
            dynamic_nj=dynamic_nj, static_nj=static_nj,
            overhead_nj=overhead_nj, service_cycles=service_cycles,
        ))

    def _emit(self, event) -> None:
        if self._trace is None:
            return
        payload = event.to_dict()
        payload["sampled"] = True
        line = _encode(payload) + "\n"
        self._trace.write(line)
        self._trace.flush()
        self.trace_bytes += len(line)
        self.trace_events += 1

    # -- checkpoint/resume ---------------------------------------------------

    def state_dict(self) -> dict:
        """Resume state: sample count plus exact output byte offsets.

        Every write is flushed before a checkpoint can observe the
        offsets, so the files on disk are always at least this long;
        :meth:`load_state` truncates back to exactly these offsets.
        """
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "samples": self.samples,
            "out_bytes": self.out_bytes,
            "trace_events": self.trace_events,
            "trace_bytes": self.trace_bytes,
            # A checkpoint taken after the final sample must not emit
            # a second one on resume.
            "finalized": self.finalized,
        }

    def load_state(self, state: dict) -> None:
        """Restore a checkpointed sink into this (fresh) ``Telemetry``.

        Reopens the configured output paths in append mode after
        truncating them to the recorded byte offsets, discarding any
        samples written after the checkpoint was taken — that is what
        makes kill/resume byte-identical to an uninterrupted run.
        """
        if self.samples or self.out_bytes or self.trace_bytes:
            raise RuntimeError(
                "telemetry state must be loaded into a fresh Telemetry"
            )
        schema = state.get("schema")
        if schema != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported telemetry schema {schema!r}; this build "
                f"reads version {TELEMETRY_SCHEMA_VERSION}"
            )
        self.samples = int(state["samples"])
        self.out_bytes = int(state["out_bytes"])
        self.trace_events = int(state["trace_events"])
        self.trace_bytes = int(state["trace_bytes"])
        self.finalized = bool(state.get("finalized", False))
        handle = self._resume_file(
            self._out, self._out_path, self.out_bytes, "--telemetry-out"
        )
        if handle is not None:
            self._out = handle
            self._owns_out = True
        handle = self._resume_file(
            self._trace, self._trace_path, self.trace_bytes,
            "--sampled-trace",
        )
        if handle is not None:
            self._trace = handle
            self._owns_trace = True

    @staticmethod
    def _resume_file(handle, path, offset, flag):
        """Truncate ``path`` to ``offset`` and reopen it for append."""
        if offset == 0:
            return None  # nothing was written; begin() starts fresh
        if path is None:
            if handle is not None:
                raise ValueError(
                    "cannot resume telemetry into an open handle; pass "
                    f"a file path ({flag}) instead"
                )
            raise ValueError(
                f"the checkpoint recorded {offset} telemetry bytes but "
                f"no matching output is configured; pass {flag}"
            )
        size = os.path.getsize(path) if os.path.exists(path) else -1
        if size < offset:
            raise ValueError(
                f"telemetry file {path!r} holds {max(size, 0)} bytes "
                f"but the checkpoint expects at least {offset}; it is "
                "not the file this checkpoint was writing"
            )
        with open(path, "rb+") as raw:
            raw.truncate(offset)
        return open(path, "a", encoding="utf-8", newline="\n")

    # -- live progress -------------------------------------------------------

    def _repaint_progress(self, payload: dict, final: bool) -> None:
        stream = self._progress
        if stream is None:
            return
        t = time.perf_counter()
        if not final and t - self._last_progress_t < self.progress_interval:
            return
        self._last_progress_t = t
        done = payload.get("done", 0)
        if self._progress_base is None:
            base_t = self._t0 if self._t0 is not None else t
            self._progress_base = (base_t, 0)
        base_t, base_done = self._progress_base
        rate = (done - base_done) / (t - base_t) if t > base_t else 0.0
        parts = []
        if self.label:
            parts.append(self.label)
        total = payload.get("total")
        if total:
            pct = 100.0 * done / total
            parts.append(f"{done:,}/{total:,} jobs ({pct:.0f}%)")
        else:
            parts.append(f"{done:,} jobs")
        parts.append(f"{rate:,.0f} jobs/s")
        parts.append(f"t={payload.get('now', 0) / 1e6:.1f} Mcyc")
        waiting = payload.get("waiting") or {}
        if waiting.get("count"):
            parts.append(f"p99 wait {waiting.get('p99', 0.0) / 1e3:.0f} kcyc")
        parts.append(f"queue {payload.get('queue', 0)}")
        line = "  ".join(parts)
        pad = max(0, self._progress_len - len(line))
        stream.write("\r" + line + " " * pad)
        if final:
            stream.write("\n")
            self._progress_written = False
        else:
            self._progress_written = True
        stream.flush()
        self._progress_len = len(line)


# -- file readers and renderers ----------------------------------------------


def read_telemetry(path) -> Tuple[dict, List[dict]]:
    """Parse a telemetry JSONL file into ``(header, samples)``.

    Validates the header kind and schema version; unknown line kinds
    raise so schema drift is caught instead of silently skipped.
    """
    header: Optional[dict] = None
    samples: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("kind")
            if lineno == 1:
                if kind != "telemetry":
                    raise ValueError(
                        f"{path}: first line is {kind!r}, expected the "
                        "'telemetry' header"
                    )
                schema = payload.get("schema")
                if schema != TELEMETRY_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: unsupported telemetry schema "
                        f"{schema!r}; this build reads version "
                        f"{TELEMETRY_SCHEMA_VERSION}"
                    )
                header = payload
            elif kind == "sample":
                samples.append(payload)
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown telemetry line kind "
                    f"{kind!r}"
                )
    if header is None:
        raise ValueError(f"{path}: empty telemetry file")
    return header, samples


def render_prometheus(sample: dict, *, prefix: str = "repro") -> str:
    """One sample as a Prometheus-style text exposition.

    Flat numeric fields become ``<prefix>_<name>`` counters/gauges,
    per-core state becomes ``core="<i>"``-labelled series, and the
    waiting-time window becomes a summary (quantile-labelled series
    plus ``_count``/``_sum``).
    """
    counters = {
        "done": "jobs completed",
        "generated": "jobs generated by the arrival process",
        "admitted": "jobs admitted past the queue-capacity guard",
        "dropped": "jobs dropped at admission",
        "shed": "queued jobs shed by load control",
        "stalls": "explicit stall decisions",
        "non_best": "explicit non-best dispatches",
        "preemptions": "preemptions",
        "dynamic_nj": "dynamic energy accrued (nJ)",
        "busy_static_nj": "busy static energy accrued (nJ)",
        "reconfig_nj": "reconfiguration energy accrued (nJ)",
        "profiling_overhead_nj": "profiling overhead energy (nJ)",
    }
    gauges = {
        "now": "simulation time (cycles)",
        "queue": "ready-queue depth",
        "busy": "busy cores",
        "total": "total jobs in the run (when known)",
        "jobs_per_mcycle": "completions per million simulated cycles",
    }
    lines: List[str] = []

    def _series(name, kind, help_text, value, labels=""):
        metric = f"{prefix}_{name}"
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric}{labels} {value:g}")

    for name, help_text in counters.items():
        if isinstance(sample.get(name), (int, float)):
            _series(name, "counter", help_text, sample[name])
    for name, help_text in gauges.items():
        if isinstance(sample.get(name), (int, float)):
            _series(name, "gauge", help_text, sample[name])
    cores = sample.get("cores")
    if cores:
        metric = f"{prefix}_core_busy_cycles"
        lines.append(f"# HELP {metric} per-core busy cycles")
        lines.append(f"# TYPE {metric} counter")
        for index, (busy_cycles, _) in enumerate(cores):
            lines.append(f'{metric}{{core="{index}"}} {busy_cycles:g}')
        metric = f"{prefix}_core_config"
        lines.append(
            f"# HELP {metric} current cache configuration (1 == active)"
        )
        lines.append(f"# TYPE {metric} gauge")
        for index, (_, config) in enumerate(cores):
            lines.append(
                f'{metric}{{core="{index}",config="{config}"}} 1'
            )
    waiting = sample.get("waiting")
    if waiting:
        metric = f"{prefix}_waiting_cycles"
        lines.append(f"# HELP {metric} job waiting time (cycles)")
        lines.append(f"# TYPE {metric} summary")
        for key, quantile in (("p50", "0.5"), ("p90", "0.9"),
                              ("p99", "0.99")):
            if key in waiting:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f'{waiting[key]:g}'
                )
        lines.append(f"{metric}_count {waiting.get('count', 0):g}")
        lines.append(f"{metric}_sum {waiting.get('sum', 0.0):g}")
    return "\n".join(lines) + "\n"


def render_telemetry_report(
    header: dict, samples: List[dict], *, max_rows: int = 12
) -> str:
    """Human-readable time-series summary of one telemetry file.

    Shows the run metadata, up to ``max_rows`` evenly spaced samples
    (first and last always included) and an end-of-run summary line.
    """
    from repro.analysis import format_table

    meta_keys = ("engine", "policy", "discipline", "preemptive",
                 "sample_every", "trace_every")
    meta = ", ".join(
        f"{key}={header[key]}" for key in meta_keys if key in header
    )
    lines = [f"telemetry schema v{header.get('schema')}  {meta}".rstrip()]
    if not samples:
        lines.append("(no samples)")
        return "\n".join(lines)

    if len(samples) <= max_rows:
        picked = list(samples)
    else:
        step = (len(samples) - 1) / (max_rows - 1)
        indexes = sorted({round(i * step) for i in range(max_rows)})
        picked = [samples[i] for i in indexes]

    def _row(sample):
        waiting = sample.get("waiting") or {}
        energy_mj = sum(
            sample.get(key, 0.0)
            for key in ("dynamic_nj", "busy_static_nj", "reconfig_nj",
                        "profiling_overhead_nj")
        ) / 1e6
        return (
            f"{sample.get('i', 0)}",
            f"{sample.get('now', 0) / 1e6:.2f}",
            f"{sample.get('done', 0):,}",
            f"{sample.get('queue', 0)}",
            f"{sample.get('busy', 0)}",
            f"{waiting.get('p99', 0.0) / 1e3:.1f}",
            f"{energy_mj:.3f}",
            f"{sample.get('jobs_per_mcycle', 0.0):.2f}",
        )

    lines.append(format_table(
        ("#", "Mcycle", "done", "queue", "busy", "p99 wait kcyc",
         "energy mJ", "jobs/Mcyc"),
        tuple(_row(sample) for sample in picked),
    ))
    last = samples[-1]
    waiting = last.get("waiting") or {}
    summary = (
        f"{len(samples)} samples over {last.get('now', 0) / 1e6:.2f} "
        f"Mcycles; {last.get('done', 0):,} jobs done"
    )
    if waiting.get("count"):
        summary += (
            f"; wait p50/p90/p99 = {waiting.get('p50', 0.0):,.0f}/"
            f"{waiting.get('p90', 0.0):,.0f}/"
            f"{waiting.get('p99', 0.0):,.0f} cycles"
        )
    if not last.get("final"):
        summary += " (run still in flight or interrupted)"
    lines.append(summary)
    return "\n".join(lines)
