"""Power-token budgets and DVFS operating points (ROADMAP item 4).

See ``docs/power.md`` for the token model, the DVFS scaling rules and
the frontier workflow.
"""

from .budget import (
    PowerConfig,
    TokenPool,
    normalize_power,
    pick_degraded,
    slack_admissible,
)
from .dvfs import DEFAULT_DVFS_TABLE, NOMINAL_NAME, DvfsPoint, DvfsTable

__all__ = [
    "PowerConfig",
    "TokenPool",
    "normalize_power",
    "pick_degraded",
    "slack_admissible",
    "DvfsPoint",
    "DvfsTable",
    "DEFAULT_DVFS_TABLE",
    "NOMINAL_NAME",
]
