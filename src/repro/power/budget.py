"""Power-token budget: configuration, pool accounting, dispatch gate.

The scheduler spends *power tokens* (denominated in nJ, priced from the
energy tables) on every dispatch and gets them back when the execution
completes or is preempted.  A :class:`PowerConfig` sets the global cap,
optional per-cluster caps (clusters are the cache-size groups of
:meth:`repro.core.system.SystemConfig.cores_with_size`), the
slack percentage used when degrading deadline-carrying jobs, and the
optional DVFS table.

The :class:`TokenPool` is the runtime account.  It is deliberately
engine-agnostic: the reference, fast and streaming engines all drive the
same pool through ``affordable`` / ``grant`` / ``refund`` / ``consume``,
and its :meth:`TokenPool.state_dict` round-trips through streaming
checkpoints.  Outstanding tokens are tracked per held grant (bounded by
the core count), so availability checks are exact — no drift from
running-sum accumulation.

The rigorous conservation *check* (granted − refunded equals the
ledger's net dispatch charges at ``2**-40`` relative tolerance) lives in
:mod:`repro.validate.ledger`, which keeps full entry lists and sums with
``math.fsum``; the pool's ``granted_nj``/``refunded_nj`` running totals
are reporting gauges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .dvfs import DvfsTable

__all__ = [
    "PowerConfig",
    "TokenPool",
    "normalize_power",
    "slack_admissible",
    "pick_degraded",
]

_INF = float("inf")


@dataclass(frozen=True)
class PowerConfig:
    """Everything the power axis can vary, hashable for campaign specs."""

    #: Global token cap in nJ; ``None`` (or ``inf``) means unlimited.
    cap_nj: Optional[float] = None
    #: Optional per-cluster caps as sorted ``(cache_size_kb, cap_nj)``.
    cluster_caps_nj: Tuple[Tuple[int, float], ...] = ()
    #: STOMP-style slack percentage: a degraded dispatch of a
    #: deadline-carrying job is admitted while it still finishes within
    #: ``deadline + slack_pct/100 * (deadline - arrival)``.
    slack_pct: float = 0.0
    #: Optional DVFS operating points (nominal first).
    dvfs: Optional[DvfsTable] = None

    def __post_init__(self) -> None:
        if self.cap_nj is not None and not self.cap_nj > 0.0:
            raise ValueError(f"cap_nj must be positive, got {self.cap_nj!r}")
        sizes = [size for size, _ in self.cluster_caps_nj]
        if sizes != sorted(set(sizes)):
            raise ValueError(
                "cluster_caps_nj must be sorted by size with unique sizes"
            )
        for size, cap in self.cluster_caps_nj:
            if size <= 0:
                raise ValueError(f"cluster size must be positive, got {size}")
            if not cap > 0.0:
                raise ValueError(
                    f"cluster cap must be positive, got {cap!r} for {size}KB"
                )
        if self.slack_pct < 0.0:
            raise ValueError(
                f"slack_pct must be non-negative, got {self.slack_pct!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this configuration changes anything at all."""
        has_cap = self.cap_nj is not None and self.cap_nj != _INF
        return has_cap or bool(self.cluster_caps_nj) or self.dvfs is not None

    @property
    def label(self) -> str:
        """Compact deterministic label for campaign cells and traces."""
        cap = "inf" if self.cap_nj is None else format(self.cap_nj, "g")
        parts = [f"cap={cap}"]
        for size, cluster_cap in self.cluster_caps_nj:
            parts.append(f"{size}kb={format(cluster_cap, 'g')}")
        if self.slack_pct:
            parts.append(f"slack={format(self.slack_pct, 'g')}")
        if self.dvfs is not None:
            parts.append("dvfs")
        return "~".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cap_nj": self.cap_nj,
            "cluster_caps_nj": [list(pair) for pair in self.cluster_caps_nj],
            "slack_pct": self.slack_pct,
            "dvfs": None if self.dvfs is None else self.dvfs.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PowerConfig":
        dvfs = payload.get("dvfs")
        return cls(
            cap_nj=(
                None if payload.get("cap_nj") is None
                else float(payload["cap_nj"])
            ),
            cluster_caps_nj=tuple(
                (int(size), float(cap))
                for size, cap in payload.get("cluster_caps_nj", ())
            ),
            slack_pct=float(payload.get("slack_pct", 0.0)),
            dvfs=None if dvfs is None else DvfsTable.from_dict(dvfs),
        )


def normalize_power(power: Optional[PowerConfig]) -> Optional[PowerConfig]:
    """``None`` when nothing is enabled, so engines keep their exact
    pre-power code paths (the empty-fault-plan precedent)."""
    if power is None:
        return None
    if not isinstance(power, PowerConfig):
        raise TypeError(
            f"power must be a PowerConfig or None, got {type(power).__name__}"
        )
    return power if power.enabled else None


def slack_admissible(
    now: int,
    work_cycles: int,
    arrival_cycle: int,
    deadline_cycle: Optional[int],
    slack_pct: float,
) -> bool:
    """Whether a *degraded* dispatch may still start.

    Deadline-free jobs degrade freely.  Deadline-carrying jobs accept a
    degraded (cheaper, slower) option only while it can still finish by
    ``deadline + slack_pct/100 * (deadline - arrival)`` — STOMP's
    ``SLACK_PERC`` contract.
    """
    if deadline_cycle is None:
        return True
    budget = deadline_cycle - arrival_cycle
    limit = deadline_cycle + slack_pct / 100.0 * budget
    return now + work_cycles <= limit


def pick_degraded(
    pool: "TokenPool",
    size_kb: int,
    preferred_price_nj: float,
    candidates: Iterable[Tuple[float, int, int, object]],
    *,
    now: int,
    arrival_cycle: int,
    deadline_cycle: Optional[int],
    slack_pct: float,
) -> Optional[object]:
    """Pick the least-degraded affordable candidate, or ``None``.

    ``candidates`` are ``(price_nj, work_cycles, rank, payload)`` tuples;
    ``rank`` is the engine's deterministic enumeration index (configs in
    natural ascending order × operating points in table order), shared by
    the reference and fast engines so ties break identically.  Only
    candidates strictly cheaper than the preferred price are considered,
    most expensive (least degraded) first.
    """
    best = None
    for price, work, rank, payload in candidates:
        if not price < preferred_price_nj:
            continue
        key = (-price, rank)
        if best is not None and key >= best[0]:
            continue
        if not slack_admissible(
            now, work, arrival_cycle, deadline_cycle, slack_pct
        ):
            continue
        if not pool.affordable(price, size_kb):
            continue
        best = (key, payload)
    return None if best is None else best[1]


class TokenPool:
    """Runtime token account for one simulation run."""

    def __init__(self, config: PowerConfig) -> None:
        self.config = config
        self._cap = _INF if config.cap_nj is None else config.cap_nj
        self._cluster_caps: Dict[int, float] = dict(config.cluster_caps_nj)
        #: job id → (grant_nj, size_kb); bounded by the core count.
        self._held: Dict[int, Tuple[float, int]] = {}
        self.granted_nj = 0.0
        self.refunded_nj = 0.0
        self.grants = 0
        self.refunds = 0
        self.throttled = 0
        self.degraded = 0
        self.overdrafts = 0

    # -- availability -------------------------------------------------

    @property
    def outstanding_nj(self) -> float:
        """Tokens currently held by running executions (exact)."""
        if not self._held:
            return 0.0
        return math.fsum(grant for grant, _ in self._held.values())

    def cluster_outstanding_nj(self, size_kb: int) -> float:
        held = [g for g, size in self._held.values() if size == size_kb]
        return math.fsum(held) if held else 0.0

    @property
    def consumed_nj(self) -> float:
        """granted − refunded − outstanding, exact by construction."""
        return self.granted_nj - self.refunded_nj - self.outstanding_nj

    def idle(self) -> bool:
        """No grants held anywhere — the progress-guarantee condition."""
        return not self._held

    def affordable(self, price_nj: float, size_kb: int) -> bool:
        if price_nj > self._cap - self.outstanding_nj:
            return False
        cluster_cap = self._cluster_caps.get(size_kb)
        if cluster_cap is None:
            return True
        return price_nj <= cluster_cap - self.cluster_outstanding_nj(size_kb)

    # -- mutation -----------------------------------------------------

    def grant(self, job_id: int, price_nj: float, size_kb: int) -> None:
        if job_id in self._held:
            raise RuntimeError(f"job {job_id} already holds a token grant")
        self._held[job_id] = (price_nj, size_kb)
        self.granted_nj += price_nj
        self.grants += 1

    def refund(self, job_id: int, refund_nj: float) -> float:
        """Return tokens on preemption; the unrefunded remainder is
        consumed.  Returns the grant that was released."""
        grant, _ = self._held.pop(job_id)
        self.refunded_nj += refund_nj
        self.refunds += 1
        return grant

    def consume(self, job_id: int) -> float:
        """Settle a grant on completion; returns the grant amount."""
        grant, _ = self._held.pop(job_id)
        return grant

    def release_all(self) -> None:
        """Forget every held grant (terminal cleanup only)."""
        self._held.clear()

    # -- checkpoint ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "held": [
                [job_id, grant, size]
                for job_id, (grant, size) in sorted(self._held.items())
            ],
            "granted_nj": self.granted_nj,
            "refunded_nj": self.refunded_nj,
            "grants": self.grants,
            "refunds": self.refunds,
            "throttled": self.throttled,
            "degraded": self.degraded,
            "overdrafts": self.overdrafts,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        self._held = {
            int(job_id): (float(grant), int(size))
            for job_id, grant, size in state["held"]
        }
        self.granted_nj = float(state["granted_nj"])
        self.refunded_nj = float(state["refunded_nj"])
        self.grants = int(state["grants"])
        self.refunds = int(state["refunds"])
        self.throttled = int(state["throttled"])
        self.degraded = int(state["degraded"])
        self.overdrafts = int(state["overdrafts"])
