"""Per-core DVFS operating points.

A :class:`DvfsPoint` is a (frequency, voltage) pair expressed as scales
of the nominal operating point.  Scaling follows the usual first-order
CMOS model:

- execution *cycles* stretch by ``1 / freq_scale`` (the work takes the
  same number of nominal cycles, delivered at a slower clock);
- *dynamic* energy scales by ``volt_scale ** 2`` (E ~ C V^2);
- *busy static* energy scales by ``volt_scale / freq_scale`` (leakage
  power ~ V, integrated over the stretched runtime).

Idle leakage is deliberately left unscaled — idle cores are not running
a dispatch, so they have no operating point to attribute — and DVFS
transitions cost zero cycles/energy.  Both simplifications are
documented in ``docs/power.md``.

A :class:`DvfsTable` is an ordered set of points.  The first point must
be the nominal one so that an enabled table with no policy/ladder
intervention charges exactly what a DVFS-free run charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

__all__ = ["DvfsPoint", "DvfsTable", "DEFAULT_DVFS_TABLE", "NOMINAL_NAME"]

#: Name of the nominal operating point in the default table.
NOMINAL_NAME = "nominal"


@dataclass(frozen=True)
class DvfsPoint:
    """One (frequency, voltage) operating point, as scales of nominal."""

    name: str
    freq_scale: float
    volt_scale: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operating point needs a name")
        if not 0.0 < self.freq_scale <= 1.0:
            raise ValueError(
                f"freq_scale must be in (0, 1], got {self.freq_scale!r}"
            )
        if not 0.0 < self.volt_scale <= 1.0:
            raise ValueError(
                f"volt_scale must be in (0, 1], got {self.volt_scale!r}"
            )

    @property
    def is_nominal(self) -> bool:
        """Whether this point leaves cycles and energy untouched."""
        return self.freq_scale == 1.0 and self.volt_scale == 1.0

    @property
    def dyn_factor(self) -> float:
        """Dynamic-energy scale: E(dyn) ~ V^2."""
        return self.volt_scale * self.volt_scale

    @property
    def static_factor(self) -> float:
        """Busy-static-energy scale: leakage ~ V over 1/f longer runtime."""
        return self.volt_scale / self.freq_scale

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "freq_scale": self.freq_scale,
            "volt_scale": self.volt_scale,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DvfsPoint":
        return cls(
            name=str(payload["name"]),
            freq_scale=float(payload["freq_scale"]),
            volt_scale=float(payload["volt_scale"]),
        )


@dataclass(frozen=True)
class DvfsTable:
    """Ordered operating points, nominal first, descending frequency."""

    points: Tuple[DvfsPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a DVFS table needs at least one point")
        names = [p.name for p in self.points]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate operating point names in {names}")
        if not self.points[0].is_nominal:
            raise ValueError(
                "the first operating point must be nominal "
                "(freq_scale == volt_scale == 1.0) so an untouched table "
                "charges exactly what a DVFS-free run charges"
            )
        keys = [(p.freq_scale, p.volt_scale) for p in self.points]
        if any(later >= earlier for later, earlier in zip(keys[1:], keys)):
            raise ValueError(
                "operating points must descend strictly in "
                "(freq_scale, volt_scale) order"
            )

    @property
    def default(self) -> DvfsPoint:
        """The nominal point every dispatch starts from."""
        return self.points[0]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[DvfsPoint]:
        return iter(self.points)

    def get(self, name: str) -> DvfsPoint:
        for point in self.points:
            if point.name == name:
                return point
        raise ValueError(
            f"unknown operating point {name!r}; choose from {self.names}"
        )

    def index(self, name: str) -> int:
        for i, point in enumerate(self.points):
            if point.name == name:
                return i
        raise ValueError(
            f"unknown operating point {name!r}; choose from {self.names}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"points": [p.to_dict() for p in self.points]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DvfsTable":
        return cls(
            points=tuple(
                DvfsPoint.from_dict(entry) for entry in payload["points"]
            )
        )

    def spec(self) -> str:
        """Inverse of :meth:`from_spec`."""
        return ",".join(
            f"{p.name}:{p.freq_scale:g}:{p.volt_scale:g}" for p in self.points
        )

    @classmethod
    def from_spec(cls, spec: str) -> "DvfsTable":
        """Parse ``name:freq:volt,name:freq:volt,...`` (CLI format)."""
        points = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) != 3:
                raise ValueError(
                    f"bad operating point {chunk!r}; expected name:freq:volt"
                )
            points.append(
                DvfsPoint(
                    name=parts[0],
                    freq_scale=float(parts[1]),
                    volt_scale=float(parts[2]),
                )
            )
        return cls(points=tuple(points))


#: Three-point default ladder used by ``--dvfs`` without an explicit spec.
DEFAULT_DVFS_TABLE = DvfsTable(
    points=(
        DvfsPoint(NOMINAL_NAME, 1.0, 1.0),
        DvfsPoint("eco", 0.8, 0.9),
        DvfsPoint("slow", 0.6, 0.8),
    )
)
