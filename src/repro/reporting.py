"""One-call reproduction report.

:func:`write_report` regenerates the paper's evaluation (Figures 6/7,
the ANN-accuracy, profiling-overhead and tuning-efficiency claims) and
writes a markdown report plus machine-readable exports into a
directory.  Used by ``examples/reproduce_paper.py`` and
``python -m repro reproduce``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.analysis import (
    format_table,
    jobs_to_csv,
    normalize_results,
    percent_change,
    render_figure6,
    render_figure7,
    results_to_csv,
    results_to_json,
)
from repro.cache import CACHE_SIZES_KB
from repro.core.tuning import TuningSession
from repro.experiment import default_predictor, default_store, run_four_systems
from repro.workloads import eembc_suite, uniform_arrivals

__all__ = ["write_report"]


def _ann_accuracy_section(store, predictor, lines) -> None:
    lines.append("\n## ANN prediction quality (paper §IV.D: < 2 %)\n")
    rows = []
    degradations = []
    for spec in eembc_suite():
        char = store.get(spec.name)
        predicted = predictor.predict_size_kb(spec.name, char.counters)
        degradation = char.energy_degradation(
            char.best_config_for_size(predicted)
        )
        degradations.append(degradation)
        rows.append((spec.name, char.best_size_kb(), predicted,
                     f"{degradation * 100:.2f}%"))
    lines.append("```")
    lines.append(format_table(
        ("benchmark", "true best (KB)", "predicted (KB)", "degradation"),
        rows,
    ))
    lines.append("```")
    lines.append(
        f"\nmean energy degradation: {np.mean(degradations) * 100:.2f}% "
        f"(paper claim: < 2%)"
    )


def _tuning_section(store, lines) -> None:
    lines.append("\n## Tuning-heuristic efficiency (paper §VI)\n")
    counts = []
    hits = 0
    pairs = 0
    for spec in eembc_suite():
        char = store.get(spec.name)
        for size in CACHE_SIZES_KB:
            session = TuningSession(size_kb=size)
            while not session.done:
                config = session.next_config()
                session.record(config, char.result(config).total_energy_nj)
            counts.append(session.exploration_count)
            hits += session.best_config == char.best_config_for_size(size)
            pairs += 1
    lines.append(
        f"per-core-size explorations: min {min(counts)}, max {max(counts)} "
        f"(paper: 3-9 of 18); true best found in {hits}/{pairs} sweeps"
    )


def write_report(
    output_dir: Union[str, Path] = "results",
    *,
    n_jobs: int = 5000,
    seed: int = 1,
    progress=print,
) -> Path:
    """Regenerate the evaluation into ``output_dir``; returns its path.

    Writes ``REPORT.md``, ``summary.csv``, ``results.json`` (with
    per-job records) and ``jobs_proposed.csv``.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    started = time.time()

    progress("1/4 characterising the suite...")
    store = default_store()
    progress("2/4 training the bagged-ANN predictor...")
    predictor = default_predictor(store, seed=seed)
    progress(f"3/4 simulating the four systems ({n_jobs} jobs)...")
    arrivals = uniform_arrivals(eembc_suite(), count=n_jobs, seed=seed)
    results = run_four_systems(arrivals, store, predictor)
    progress("4/4 writing the report...")

    lines = [
        "# Reproduction report — Dynamic Scheduling on Heterogeneous "
        "Multicores (DATE 2019)",
        f"\n{n_jobs} uniform arrivals, seed {seed}; see EXPERIMENTS.md for "
        "paper-vs-measured discussion.\n",
        "## Figure 6 (energy vs base system)\n",
        "```",
        render_figure6(results),
        "```",
        "\n## Figure 7 (cycles and energy vs optimal system)\n",
        "```",
        render_figure7(results),
        "```",
    ]

    normalized = normalize_results(results, "base")
    saving = -percent_change(normalized["proposed"]["total_energy"])
    lines.append(
        f"\n**Headline**: the proposed system reduces total energy by "
        f"{saving:.1f}% vs the base system (paper: ~28-29%)."
    )

    _ann_accuracy_section(store, predictor, lines)
    _tuning_section(store, lines)

    proposed = results["proposed"]
    lines.append("\n## Profiling overhead (paper §VI: < 0.5 %)\n")
    lines.append(
        f"counter overhead: "
        f"{proposed.profiling_overhead_nj / proposed.total_energy_nj * 100:.4f}% "
        f"of total energy over {proposed.profiling_executions} profiling runs"
    )

    (out / "REPORT.md").write_text("\n".join(lines) + "\n")
    results_to_csv(results, out / "summary.csv")
    results_to_json(results, out / "results.json", include_jobs=True)
    jobs_to_csv(proposed, out / "jobs_proposed.csv")

    progress(
        f"wrote {out}/REPORT.md, summary.csv, results.json, "
        f"jobs_proposed.csv in {time.time() - started:.0f}s"
    )
    return out
