"""Discrete-event simulation substrate: events, a deterministic event
engine, the FIFO ready queue and the struct-of-arrays fast engine.
"""

from .engine import EventEngine
from .events import Event, EventKind
from .fast import FastSimulation
from .queueing import ReadyQueue

__all__ = [
    "Event",
    "EventEngine",
    "EventKind",
    "FastSimulation",
    "ReadyQueue",
]
