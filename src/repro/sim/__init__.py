"""Discrete-event simulation substrate: events, a deterministic event
engine and the FIFO ready queue.
"""

from .engine import EventEngine
from .events import Event, EventKind
from .queueing import ReadyQueue

__all__ = ["Event", "EventEngine", "EventKind", "ReadyQueue"]
