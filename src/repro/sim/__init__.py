"""Discrete-event simulation substrate: events, a deterministic event
engine, the FIFO ready queue, the struct-of-arrays fast engine and the
open-system streaming engine built on top of it.
"""

from .engine import EventEngine
from .events import Event, EventKind
from .fast import FastSimulation
from .queueing import ReadyQueue
from .stream import (
    ADMISSION_POLICIES,
    STREAM_SNAPSHOT_VERSION,
    StreamConfig,
    StreamingSimulation,
    StreamResult,
    read_checkpoint,
)

__all__ = [
    "ADMISSION_POLICIES",
    "Event",
    "EventEngine",
    "EventKind",
    "FastSimulation",
    "ReadyQueue",
    "STREAM_SNAPSHOT_VERSION",
    "StreamConfig",
    "StreamResult",
    "StreamingSimulation",
    "read_checkpoint",
]
