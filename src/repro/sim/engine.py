"""Deterministic discrete-event engine.

A thin priority-queue loop: events are popped in ``(time, kind,
insertion order)`` order and dispatched to a handler.  Time never moves
backwards; scheduling an event in the past raises.  The engine is
deliberately free of any scheduler policy — the core package builds the
paper's systems on top of it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .events import Event, EventKind

__all__ = ["EventEngine"]


class EventEngine:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[tuple, Event]] = []
        self._sequence = 0
        self._now = 0
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet dispatched."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events dispatched so far."""
        return self._processed

    def schedule(self, event: Event) -> None:
        """Enqueue an event; its time must not precede the current time."""
        if event.time < self._now:
            raise ValueError(
                f"cannot schedule event at {event.time} before now={self._now}"
            )
        heapq.heappush(self._heap, (event.sort_key(self._sequence), event))
        self._sequence += 1

    def schedule_at(
        self, time: int, kind: EventKind, payload=None
    ) -> Event:
        """Convenience constructor + :meth:`schedule`; returns the event."""
        event = Event(time=time, kind=kind, payload=payload)
        self.schedule(event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next event, advancing the clock."""
        if not self._heap:
            return None
        _, event = heapq.heappop(self._heap)
        self._now = event.time
        self._processed += 1
        return event

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next event, or ``None`` when idle."""
        if not self._heap:
            return None
        return self._heap[0][1].time

    def run(
        self,
        handler: Callable[[Event], None],
        *,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Dispatch events until the queue drains (or a bound is hit).

        Parameters
        ----------
        handler:
            Called with each event; may schedule further events.
        until:
            Stop once the next event's time would exceed this.
        max_events:
            Safety bound on dispatched events.

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._heap:
            if until is not None and self._heap[0][1].time > until:
                break
            if max_events is not None and dispatched >= max_events:
                break
            event = self.pop()
            handler(event)
            dispatched += 1
        return dispatched
