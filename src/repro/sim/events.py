"""Event types for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``: earlier time first,
then lower priority value, then insertion order.  The fixed sequence
component makes every simulation run fully deterministic even when many
events share a timestamp.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EventKind", "Event"]


class EventKind(enum.IntEnum):
    """What happened.  The integer value doubles as the tie-break
    priority at equal timestamps: completions free cores before new
    arrivals are considered, matching a scheduler invoked "each time a
    benchmark arrived or when a core became idle"."""

    COMPLETION = 0
    ARRIVAL = 1
    GENERIC = 2


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    Attributes
    ----------
    time:
        Simulation time in cycles.
    kind:
        Event type (also the equal-time priority).
    payload:
        Arbitrary data for the handler (job, core index, ...).
    """

    time: int
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")

    def sort_key(self, sequence: int) -> tuple:
        """Total ordering key given the engine-assigned sequence number."""
        return (self.time, int(self.kind), sequence)
