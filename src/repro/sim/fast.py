"""Struct-of-arrays fast simulation engine (the reference loop's twin).

:class:`FastSimulation` replays exactly the semantics of
:class:`~repro.core.simulation.SchedulerSimulation` — same four
policies, same arrival streams, same event ordering, same floating-point
operation order — but on flat data:

* **jobs** live in preallocated NumPy ``int64``/``float64`` arrays
  (arrival/start/completion cycles, priorities, labels) whose working
  copies are plain Python lists indexed by job slot (NumPy scalar reads
  box on every access; list reads do not);
* the **event schedule** is a flat arrival array stable-sorted once by
  ``numpy.argsort`` plus a small tuple heap for completions, instead of
  one heapq ``Event`` object per occurrence;
* **characterisation and energy lookups** are precomputed once into
  (benchmark × config) matrices — total cycles, dynamic/static/total
  energy, per-config static leakage and reconfiguration costs — so the
  hot loop never walks ``store.get(name).result(config).estimate``
  chains;
* the **obs/validate/faults hooks are compiled out**: there is no
  recorder, metrics registry, validator or injector branch anywhere in
  the loop.  Engine selection in
  :class:`~repro.core.simulation.SchedulerSimulation` guarantees this
  engine only ever runs when all of those are off, and PRs 3–5 proved
  the hooks are observation-only (traced/validated/empty-fault runs are
  bit-identical to plain ones), so skipping them cannot change results.

Event batching happens *between* scheduler decision points: arrivals and
completions are drained from flat arrays, but a full dispatch round runs
after every event — including stale (preempted-epoch) completions — so
stall/non-best decision counts match the reference exactly.

Bit-identity with the reference engine across the policy × discipline ×
preemption grid is enforced by
``tests/sim/test_fast_engine_equivalence.py`` and the
``simulation-speed`` CI job.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cache.config import BASE_CONFIG, CacheConfig
from repro.cache.tuner import TunerCostModel
from repro.characterization.store import CharacterizationStore
from repro.core.policies import SchedulingPolicy
from repro.core.predictor import BestCorePredictor
from repro.core.results import JobRecord, SimulationResult
from repro.core.tuning import TuningSession
from repro.energy.tables import EnergyTable
from repro.obs.events import CATEGORIES as _CATEGORIES
from repro.power.budget import TokenPool, normalize_power, pick_degraded
from repro.workloads.arrivals import JobArrival

__all__ = ["FastSimulation"]

_NEG_INF = float("-inf")
_INF = float("inf")


class FastSimulation:
    """One fast simulation run of one policy on one system.

    Construction mirrors
    :class:`~repro.core.simulation.SchedulerSimulation` (same defaults,
    same validation errors); :meth:`run` returns a bit-identical
    :class:`~repro.core.results.SimulationResult`.  The observability /
    validation / fault hooks are deliberately absent — use the reference
    engine when any of them is needed.  The one observability surface
    this engine does carry is the sampled
    :class:`~repro.obs.telemetry.Telemetry` sink, fed every
    ``sample_every`` completions (never per event) from state the loop
    already maintains, so results stay bit-identical telemetry-on vs
    telemetry-off.

    After :meth:`run`, :attr:`final_state` holds the reference-shaped
    end-of-run state (engine counters, per-core occupancy and residency,
    profiling-table knowledge, tuning sessions) so the glue layer can
    write it back into a :class:`SchedulerSimulation` and keep its
    post-run introspection surface intact.
    """

    DISCIPLINES = ("fifo", "priority", "edf")

    def __init__(
        self,
        system,
        policy: SchedulingPolicy,
        store: CharacterizationStore,
        *,
        predictor: Optional[BestCorePredictor] = None,
        energy_table: Optional[EnergyTable] = None,
        tuner_costs: TunerCostModel = TunerCostModel(),
        profiling_overhead_fraction: float = 0.003,
        discipline: str = "fifo",
        preemptive: bool = False,
        preemption_quantum_cycles: int = 10_000,
        preload_profiles: bool = False,
        telemetry=None,
        power=None,
    ) -> None:
        if policy.uses_predictor and predictor is None:
            raise ValueError(f"policy {policy.name!r} needs a predictor")
        if profiling_overhead_fraction < 0:
            raise ValueError("profiling_overhead_fraction must be >= 0")
        if discipline not in self.DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; "
                f"choose from {self.DISCIPLINES}"
            )
        if preemptive and discipline == "fifo":
            raise ValueError(
                "preemption needs an urgency order; use the 'priority' "
                "or 'edf' discipline"
            )
        if preemption_quantum_cycles < 0:
            raise ValueError("preemption_quantum_cycles must be >= 0")
        self.system = system
        self.policy = policy
        self.store = store
        self.predictor = predictor
        self.energy_table = (
            energy_table if energy_table is not None else EnergyTable()
        )
        self.profiling_overhead_fraction = profiling_overhead_fraction
        self.discipline = discipline
        self.preemptive = preemptive
        self.preemption_quantum_cycles = preemption_quantum_cycles
        # Sampled telemetry sink (repro.obs.telemetry).  Unlike the
        # per-event hooks this engine compiles out, telemetry fires on
        # completion-count thresholds only, so attaching it keeps the
        # fast path fast and the results bit-identical.
        self.telemetry = telemetry
        # Power axis (cap + DVFS).  Engine selection only routes a
        # powered run here when the policy does not override
        # ``choose_dvfs``, so the preferred operating point is always
        # the table's nominal one; the gate can still *degrade* to a
        # lower point.  ``None`` keeps the loop's pre-power code paths
        # byte-for-byte.
        self.power = normalize_power(power)
        self._power_pool = (
            TokenPool(self.power) if self.power is not None else None
        )
        self.final_state: Optional[dict] = None

        # -- configuration interning ------------------------------------
        # Config ids ascend in CacheConfig's natural (size, assoc, line)
        # order so integer comparisons reproduce config tie-breaks.
        # spec.configs materialises fresh CacheConfig objects on every
        # access; read it once per core.
        spec_configs = [list(spec.configs) for spec in system.cores]
        cfg_set = {BASE_CONFIG}
        for spec, configs in zip(system.cores, spec_configs):
            cfg_set.update(configs)
            cfg_set.add(spec.reset_config)
        self.cfg_objs: List[CacheConfig] = sorted(cfg_set)
        self.cfg_ids: Dict[CacheConfig, int] = {
            cfg: i for i, cfg in enumerate(self.cfg_objs)
        }
        K = len(self.cfg_objs)
        self.cfg_sizes = [cfg.size_kb for cfg in self.cfg_objs]
        # CacheConfig.name formats a string on every access; the result
        # assembly needs one per job record.
        self.cfg_names = [cfg.name for cfg in self.cfg_objs]
        self.cfg_static_nj = [
            self.energy_table.get(cfg).static_per_cycle_nj
            for cfg in self.cfg_objs
        ]
        # Reconfiguration cost depends only on the *outgoing* config
        # (its line count is what gets flushed).
        self.recfg_cycles_from = [
            tuner_costs.control_cycles
            + tuner_costs.flush_cycles_per_line * cfg.num_lines
            for cfg in self.cfg_objs
        ]
        self.recfg_nj_from = [
            tuner_costs.control_energy_nj
            + tuner_costs.flush_energy_per_line_nj * cfg.num_lines
            for cfg in self.cfg_objs
        ]

        # -- benchmark interning + estimate matrices --------------------
        self.bench_names: List[str] = list(store.names())
        self.bids: Dict[str, int] = {
            name: i for i, name in enumerate(self.bench_names)
        }
        B = len(self.bench_names)
        # The (benchmark × config) characterisation table, one row of
        # (cycles, dynamic_nj, static_nj, total_nj) scalars per
        # benchmark (None = the store was never characterised for that
        # config).  Total uses the same addition order as
        # EnergyBreakdown.total_nj.  The NumPy matrix views of this
        # table (est_cycles & co) are materialised lazily on first
        # access — nothing in the hot loop reads them.
        cfg_ids_get = self.cfg_ids.get
        rows: List[List[Optional[tuple]]] = []
        for name in self.bench_names:
            row: List[Optional[tuple]] = [None] * K
            for cfg, res in store.get(name).results.items():
                k = cfg_ids_get(cfg)
                if k is None:
                    continue
                estimate = res.estimate
                energy = estimate.energy
                row[k] = (
                    estimate.total_cycles,
                    energy.dynamic_nj,
                    energy.static_nj,
                    energy.static_nj + energy.dynamic_nj,
                )
            rows.append(row)
        self._est = rows
        self._est_matrices: Optional[tuple] = None

        # -- system layout ----------------------------------------------
        cores = system.cores
        self.n_cores = len(cores)
        self.core_sizes = [spec.cache_size_kb for spec in cores]
        # Sorted ascending so "first unexplored" == min(unexplored).
        self.core_cfg_ids = [
            sorted(self.cfg_ids[c] for c in configs)
            for configs in spec_configs
        ]
        self.core_reset_cid = [
            self.cfg_ids[spec.reset_config] for spec in cores
        ]
        self.core_names = [spec.name for spec in cores]
        self.base_cid = self.cfg_ids[BASE_CONFIG]
        # Profiling cores primary-first, with their BASE support flag.
        self.profiling_order = [
            (spec.index, spec.supports(BASE_CONFIG))
            for spec in system.profiling_cores
        ]
        self.cores_by_size: Dict[int, List[int]] = {}
        for spec in cores:
            self.cores_by_size.setdefault(spec.cache_size_kb, []).append(
                spec.index
            )
        self.sizes_kb = list(system.cache_sizes_kb)
        self._nearest: Dict[int, int] = {}

        # -- knowledge state (profiling table + tuning heuristic) -------
        self.profiled = [False] * B
        self.pred_raw: List[Optional[int]] = [None] * B
        #: Nearest machine size for the raw prediction (pure function of
        #: ``pred_raw``; cached at prediction time, read on every choose).
        self.pred_size: List[Optional[int]] = [None] * B
        #: Explored config ids per benchmark; dict for O(1) membership
        #: with stable insertion order.
        self.executed: List[Dict[int, bool]] = [dict() for _ in range(B)]
        #: Incremental min-by-(energy, config) per (benchmark, size).
        self.best_known: List[Dict[int, tuple]] = [dict() for _ in range(B)]
        self.tuned: List[set] = [set() for _ in range(B)]
        self.touched = [False] * B
        self.touch_order: List[int] = []
        self.sessions: Dict[tuple, TuningSession] = {}

        if preload_profiles:
            self._preload_profiles()

    # -- characterisation matrix views ---------------------------------------

    def _matrices(self) -> tuple:
        cached = self._est_matrices
        if cached is None:
            rows = self._est
            cached = (
                np.array(
                    [[r[0] if r else 0 for r in row] for row in rows],
                    dtype=np.int64,
                ),
                np.array(
                    [[r[1] if r else 0.0 for r in row] for row in rows],
                    dtype=np.float64,
                ),
                np.array(
                    [[r[2] if r else 0.0 for r in row] for row in rows],
                    dtype=np.float64,
                ),
                np.array(
                    [[r[3] if r else 0.0 for r in row] for row in rows],
                    dtype=np.float64,
                ),
                np.array(
                    [[r is not None for r in row] for row in rows],
                    dtype=bool,
                ),
            )
            self._est_matrices = cached
        return cached

    @property
    def est_cycles(self) -> np.ndarray:
        """(benchmark × config) total-cycle matrix."""
        return self._matrices()[0]

    @property
    def est_dynamic(self) -> np.ndarray:
        """(benchmark × config) dynamic-energy matrix (nJ)."""
        return self._matrices()[1]

    @property
    def est_static(self) -> np.ndarray:
        """(benchmark × config) static-energy matrix (nJ)."""
        return self._matrices()[2]

    @property
    def est_total(self) -> np.ndarray:
        """(benchmark × config) total-energy matrix (nJ)."""
        return self._matrices()[3]

    @property
    def est_valid(self) -> np.ndarray:
        """(benchmark × config) characterised-at-all mask."""
        return self._matrices()[4]

    # -- helpers -------------------------------------------------------------

    def _nearest_size(self, size_kb: int) -> int:
        cached = self._nearest.get(size_kb)
        if cached is None:
            cached = self.system.nearest_size_kb(size_kb)
            self._nearest[size_kb] = cached
        return cached

    def _touch(self, b: int) -> None:
        if not self.touched[b]:
            self.touched[b] = True
            self.touch_order.append(b)

    def _session(self, b: int, size_kb: int) -> TuningSession:
        key = (b, size_kb)
        session = self.sessions.get(key)
        if session is None:
            session = TuningSession(size_kb=size_kb)
            self.sessions[key] = session
        return session

    def _record_execution(self, b: int, cid: int, tot_energy: float) -> None:
        """Mirror ``ProfilingTable.record_execution`` on flat state.

        Re-executions overwrite with identical deterministic values, so
        only the first insertion can move the best-known minimum.
        """
        self._touch(b)
        ex = self.executed[b]
        if cid not in ex:
            ex[cid] = True
            size = self.cfg_sizes[cid]
            best = self.best_known[b].get(size)
            if (
                best is None
                or tot_energy < best[0]
                or (tot_energy == best[0] and cid < best[1])
            ):
                self.best_known[b][size] = (tot_energy, cid)

    def _preload_profiles(self) -> None:
        """Mirror of ``SchedulerSimulation._preload_profiles`` (§IV.B)."""
        store = self.store
        uses_predictor = self.policy.uses_predictor
        for name in store.names():
            b = self.bids[name]
            counters = store.counters(name)
            self._touch(b)
            self.profiled[b] = True
            if not uses_predictor:
                continue
            size = self.predictor.predict_size_kb(name, counters)
            if size <= 0:
                raise ValueError("predicted size must be positive")
            self.pred_raw[b] = size
            self.pred_size[b] = self._nearest_size(size)
            for size_kb in self.sizes_kb:
                session = self._session(b, size_kb)
                while not session.done:
                    config = session.next_config()
                    cid = self.cfg_ids.get(config)
                    est = self._est[b][cid] if cid is not None else None
                    if est is None:
                        # Surface the same KeyError the reference raises.
                        self.store.estimate(name, config)
                    self._record_execution(b, cid, est[3])
                    session.record(config, est[3])
                self.tuned[b].add(size_kb)
                self._touch(b)

    # -- main loop -----------------------------------------------------------

    def run(self, arrivals: Sequence[JobArrival]) -> SimulationResult:
        """Simulate the full arrival stream to completion."""
        if self.final_state is not None:
            raise RuntimeError("a FastSimulation runs exactly once")
        if not arrivals:
            raise ValueError("need at least one arrival")

        n = len(arrivals)
        # Job arrays (struct-of-arrays).  NumPy holds the canonical
        # copies, built in one conversion each; the loop reads plain
        # Python lists because scalar indexing into ndarrays boxes on
        # every access.
        bids_get = self.bids.get
        jbid = []
        for arrival in arrivals:
            b = bids_get(arrival.benchmark)
            if b is None:
                raise KeyError(
                    f"benchmark {arrival.benchmark!r} missing from the "
                    "characterisation store"
                )
            jbid.append(b)
        jlab = [a.job_id for a in arrivals]
        jarr = [a.arrival_cycle for a in arrivals]
        jprio = [a.priority for a in arrivals]
        jdl: List[Optional[int]] = [a.deadline_cycle for a in arrivals]
        label_np = np.array(jlab, dtype=np.int64)
        arr_np = np.array(jarr, dtype=np.int64)
        prio_np = np.array(jprio, dtype=np.int64)
        # The flat sorted event schedule: arrival slots in stable
        # (cycle, input order) order — the exact order the reference
        # heap pops equal-time arrivals (kind ties break on sequence).
        order = np.argsort(arr_np, kind="stable")
        self.arrival_schedule = arr_np[order]
        sched_time = self.arrival_schedule.tolist()
        order = order.tolist()

        jstart: List[Optional[int]] = [None] * n
        jcomp = [0] * n
        remaining = [1.0] * n
        jpre = [0] * n
        last_enq: List[Optional[int]] = [None] * n
        waiting = [0] * n
        charged = [0.0] * n

        # Per-job urgency for the preemption comparison, precomputed
        # (priority/deadline are immutable).
        discipline = self.discipline
        if discipline == "priority":
            urgency = [float(p) for p in jprio]
            sort_key: Optional[list] = [-p for p in jprio]
        elif discipline == "edf":
            urgency = [
                _NEG_INF if d is None else -float(d) for d in jdl
            ]
            sort_key = [_INF if d is None else d for d in jdl]
        else:
            urgency = [0.0] * n
            sort_key = None

        # Per-core state (parallel lists indexed by core).
        C = self.n_cores
        cur_job = [-1] * C
        busy_until = [0] * C
        busy_cycles = [0] * C
        run_started = [0] * C
        epoch = [0] * C
        execs = [0] * C
        cur_cfg = list(self.core_reset_cid)
        recfg_count = [0] * C
        recfg_cycles_core = [0] * C
        recfg_nj_core = [0.0] * C
        res_closed: List[list] = [[] for _ in range(C)]
        res_start = [0] * C
        res_busy = [0] * C
        pending: List[Optional[tuple]] = [None] * C

        # Local aliases for the hot loop.
        est = self._est
        executed = self.executed
        best_known = self.best_known
        profiled = self.profiled
        pred_raw = self.pred_raw
        pred_size = self.pred_size
        tuned = self.tuned
        cfg_sizes = self.cfg_sizes
        cfg_static = self.cfg_static_nj
        cfg_objs = self.cfg_objs
        cfg_ids = self.cfg_ids
        recfg_cycles_from = self.recfg_cycles_from
        recfg_nj_from = self.recfg_nj_from
        cfg_names = self.cfg_names
        core_sizes = self.core_sizes
        core_cfg_ids = self.core_cfg_ids
        cores_by_size = self.cores_by_size
        profiling_order = self.profiling_order
        base_cid = self.base_cid
        bench_names = self.bench_names
        store = self.store
        predictor = self.predictor
        pof = self.profiling_overhead_fraction
        policy = self.policy
        requires_profiling = policy.requires_profiling
        uses_predictor = policy.uses_predictor
        pol = {"base": 0, "optimal": 1, "energy_centric": 2}.get(
            policy.name, 3
        )
        preemptive = self.preemptive
        quantum = self.preemption_quantum_cycles
        touched = self.touched
        touch_order = self.touch_order
        nearest_size = self._nearest_size
        core_range = range(C)
        sessions = self.sessions

        # Power axis locals.  ``pool is None`` is the only extra branch
        # the power-off loop pays.
        pool = self._power_pool
        if pool is None:
            dvfs_points: Optional[tuple] = None
            nominal_point = None
            n_points = 1
            slack_pct = 0.0
        else:
            table = self.power.dvfs
            dvfs_points = None if table is None else tuple(table)
            nominal_point = None if table is None else table.default
            n_points = 1 if dvfs_points is None else len(dvfs_points)
            slack_pct = self.power.slack_pct
        core_dvfs: List[Optional[str]] = [None] * C

        # Per-(benchmark, size) tuning-session state cache:
        # ``(done, cid, config)`` where ``cid`` is the interned id of the
        # best config (done) or the next sweep config (in progress), or
        # -1 when that config is not in this system's design space.  The
        # steady state (every session done) then costs two int-keyed
        # dict reads per decision instead of a session-object attribute
        # chain plus a CacheConfig hash.
        sess_state: List[Dict[int, tuple]] = [
            {} for _ in self.bench_names
        ]

        def sess(b: int, size_kb: int) -> tuple:
            state = sess_state[b].get(size_kb)
            if state is None:
                key = (b, size_kb)
                session = sessions.get(key)
                if session is None:
                    session = TuningSession(size_kb=size_kb)
                    sessions[key] = session
                cfg = (
                    session.best_config
                    if session.done
                    else session.next_config()
                )
                state = (session.done, cfg_ids.get(cfg, -1), cfg)
                sess_state[b][size_kb] = state
            return state

        # Event and queue state.
        queue: Dict[int, bool] = {}
        view: Optional[list] = None
        comp_heap: List[tuple] = []
        # Occupied-core count: a core with no job always has
        # ``busy_until <= now`` (completions fire at busy_until,
        # preemption rewinds it to now), so ``n_busy < C`` is exactly
        # "some core is idle" without a per-round scan.
        n_busy = 0
        seq = n  # arrivals consumed sequence numbers 0..n-1
        processed = 0
        now = 0
        enqueued_total = 0
        max_queue_len = 0

        # Accounting accumulators (same op order as the reference).
        dynamic_nj = 0.0
        busy_static_nj = 0.0
        reconfig_nj = 0.0
        reconfig_cycles = 0
        profiling_overhead_nj = 0.0
        stall_decisions = 0
        non_best_decisions = 0
        tuning_executions = 0
        profiling_executions = 0
        preemption_count = 0
        non_best_pending = False
        preempted_now: set = set()
        preempted_now_cycle = -1

        records: List[tuple] = []

        # Telemetry thresholds.  Telemetry-off parks the sample
        # threshold past the run and the trace thresholds at -1, so the
        # only hot-loop cost is one integer compare per completion (plus
        # one per start while sampled tracing is on).  Everything the
        # sample reads is state the loop already maintains — no extra
        # accounting, which is what keeps telemetry-on bit-identical.
        tel = self.telemetry
        done_ct = 0
        rec_i = 0  # completions already fed into the waiting window
        if tel is None:
            tel_every = tr_every = 0
            tel_next = n + 1
            tr_comp_next = tr_start_next = -1
        else:
            tel_every = tel.sample_every
            tel_next = tel_every
            tr_every = tel.trace_every
            if tr_every > 0:
                tr_comp_next = tr_every
                tr_start_next = n + tr_every  # seq starts at n
            else:
                tr_comp_next = tr_start_next = -1
            tel.begin({
                "engine": "fast",
                "policy": policy.name,
                "discipline": discipline,
                "preemptive": preemptive,
                "jobs": n,
            })

        fifo = sort_key is None

        # -- the event loop ----------------------------------------------
        # The per-decision helpers (choose/start/complete/try_preempt/
        # dispatch) are inlined into this single loop body: in CPython a
        # variable captured by any nested function becomes a closure
        # cell everywhere in the frame, so keeping hot state out of
        # every closure (only the cold-path ``sess`` remains) turns
        # each access into a plain local load.
        #
        # A dispatch round is skipped when every core is occupied and
        # preemption is off: the reference's dispatch scans for an idle
        # core before consulting the policy, so an all-busy round has no
        # observable effect (no decisions, no counters).
        ai = 0
        while ai < n or comp_heap:
            if comp_heap and not (
                ai < n and sched_time[ai] < comp_heap[0][0]
            ):
                now, _, ci, cepoch = heappop(comp_heap)
                if cepoch == epoch[ci]:
                    # ---- job completion ----------------------------
                    (jid, cid, prof, tun, fraction_at_start,
                     _, _, _, _, e_tot, cat) = pending[ci]
                    pending[ci] = None
                    cur_job[ci] = -1
                    n_busy -= 1
                    jcomp[jid] = now
                    remaining[jid] = 0.0
                    if pool is not None:
                        pool.consume(jlab[jid])
                    b = jbid[jid]
                    full = fraction_at_start == 1.0
                    if full:
                        # Execution-record bookkeeping (every full run).
                        if not touched[b]:
                            touched[b] = True
                            touch_order.append(b)
                        ex = executed[b]
                        if cid not in ex:
                            ex[cid] = True
                            size = cfg_sizes[cid]
                            bk = best_known[b]
                            best = bk.get(size)
                            if (
                                best is None
                                or e_tot < best[0]
                                or (e_tot == best[0] and cid < best[1])
                            ):
                                bk[size] = (e_tot, cid)
                    if prof:
                        if not touched[b]:
                            touched[b] = True
                            touch_order.append(b)
                        profiled[b] = True
                        if uses_predictor:
                            size = predictor.predict_size_kb(
                                bench_names[b],
                                store.counters(bench_names[b]),
                            )
                            if size <= 0:
                                raise ValueError(
                                    "predicted size must be positive"
                                )
                            pred_raw[b] = size
                            pred_size[b] = nearest_size(size)
                    if full and tun and uses_predictor:
                        size_kb = cfg_sizes[cid]
                        done, next_cid, _ = sess(b, size_kb)
                        if not done and next_cid == cid:
                            session = sessions[(b, size_kb)]
                            session.record(cfg_objs[cid], e_tot)
                            if session.done:
                                best = session.best_config
                                sess_state[b][size_kb] = (
                                    True, cfg_ids.get(best, -1), best,
                                )
                                if not touched[b]:
                                    touched[b] = True
                                    touch_order.append(b)
                                tuned[b].add(size_kb)
                            else:
                                nxt = session.next_config()
                                sess_state[b][size_kb] = (
                                    False, cfg_ids.get(nxt, -1), nxt,
                                )
                    records.append((jid, ci, cid, prof, tun))
                    done_ct += 1
                    if done_ct == tel_next:
                        # Chunk boundary: feed the completions since the
                        # last sample into the waiting window, then read
                        # the loop's own state into one JSONL sample.
                        tel_next += tel_every
                        ow = tel.wait_hist.observe
                        while rec_i < done_ct:
                            ow(waiting[records[rec_i][0]])
                            rec_i += 1
                        tel.sample(
                            engine="fast", now=now, done=done_ct,
                            total=n, queue=len(queue), busy=n_busy,
                            cores=[
                                [busy_cycles[i], cfg_names[cur_cfg[i]]]
                                for i in core_range
                            ],
                            dynamic_nj=dynamic_nj,
                            busy_static_nj=busy_static_nj,
                            reconfig_nj=reconfig_nj,
                            profiling_overhead_nj=profiling_overhead_nj,
                            stalls=stall_decisions,
                            non_best=non_best_decisions,
                            preemptions=preemption_count,
                            waiting=tel.wait_hist.snapshot(),
                            jobs_per_mcycle=(
                                done_ct * 1e6 / now if now else 0.0
                            ),
                        )
                    if done_ct == tr_comp_next:
                        tr_comp_next += tr_every
                        tel.emit_completion(
                            cycle=now, job_id=jlab[jid], core_index=ci,
                            benchmark=bench_names[b],
                            config=cfg_names[cid],
                            category=_CATEGORIES[cat],
                            energy_nj=charged[jid],
                            waiting_cycles=waiting[jid],
                        )
                # A stale completion (preempted epoch) still opens a
                # dispatch round, exactly like the reference.
            else:
                jid = order[ai]
                now = sched_time[ai]
                ai += 1
                last_enq[jid] = now
                queue[jid] = True
                view = None
                enqueued_total += 1
                if len(queue) > max_queue_len:
                    max_queue_len = len(queue)
            processed += 1
            if n_busy >= C and not preemptive:
                continue

            # ---- dispatch rounds --------------------------------------
            while True:
                if n_busy < C and queue:
                    # Under FIFO the dict's insertion order IS the
                    # view, so iterate it live (the only mutation —
                    # del on assignment — is immediately followed by
                    # a break).
                    if fifo:
                        v = queue
                    elif view is not None:
                        v = view
                    else:
                        v = view = sorted(
                            queue, key=sort_key.__getitem__
                        )
                    assigned = False
                    # Benchmarks that already stalled during THIS scan
                    # pass: the stall evaluation reads only core/now/
                    # session state, all of which is fixed until a
                    # start ends the pass, so a repeat evaluation for
                    # the same benchmark is deterministic — skip the
                    # arithmetic and repeat its counter increment.
                    scan_stalled = set()
                    for jid in v:
                        # ---- placement decision --------------------
                        # Idleness is just ``cur_job[ci] < 0``: an
                        # unoccupied core always has ``busy_until <=
                        # now`` (completions fire at ``busy_until``,
                        # preemption rewinds it to ``now``), so the
                        # reference's ``now >= busy_until`` conjunct
                        # is vacuous.  ``continue`` means this job
                        # waits; the scan moves to the next one.
                        b = jbid[jid]
                        assignment = None
                        if requires_profiling and not profiled[b]:
                            # Unprofiled: profiling core, base config.
                            for ci, supports_base in profiling_order:
                                if cur_job[ci] < 0 and supports_base:
                                    assignment = (
                                        ci, base_cid, True, False,
                                    )
                                    break
                            if assignment is None:
                                continue
                        elif pol == 0:  # base
                            for ci in core_range:
                                if cur_job[ci] < 0:
                                    assignment = (
                                        ci, cur_cfg[ci], False, False,
                                    )
                                    break
                            if assignment is None:
                                continue
                        elif pol == 1:  # optimal
                            idle = []
                            for ci in core_range:
                                if cur_job[ci] < 0:
                                    idle.append(ci)
                            if not idle:
                                continue
                            ex = executed[b]
                            for ci in idle:
                                for cid in core_cfg_ids[ci]:
                                    if cid not in ex:
                                        assignment = (
                                            ci, cid, False, True,
                                        )
                                        break
                                if assignment is not None:
                                    break
                            if assignment is None:
                                best_ci = -1
                                best_key = None
                                for ci in idle:
                                    key = (
                                        best_known[b][core_sizes[ci]][0],
                                        ci,
                                    )
                                    if best_key is None or key < best_key:
                                        best_key = key
                                        best_ci = ci
                                assignment = (
                                    best_ci,
                                    best_known[b][core_sizes[best_ci]][1],
                                    False,
                                    False,
                                )
                        else:
                            # Predictor-driven policies share the size
                            # lookup.
                            if pred_raw[b] is None:
                                raise RuntimeError(
                                    f"{bench_names[b]} has no "
                                    "prediction; profiling must "
                                    "precede prediction-based "
                                    "scheduling"
                                )
                            size_kb = pred_size[b]
                            if pol == 2:  # energy_centric
                                for ci in core_range:
                                    if (
                                        cur_job[ci] < 0
                                        and core_sizes[ci] == size_kb
                                    ):
                                        done, cid, cfg = (
                                            sess_state[b].get(size_kb)
                                            or sess(b, size_kb)
                                        )
                                        if cid < 0:
                                            raise KeyError(cfg)
                                        assignment = (
                                            ci, cid, False, not done,
                                        )
                                        break
                                if assignment is None:
                                    continue
                            else:
                                # proposed — a best-size match wins
                                # outright, so the scan can stop at
                                # the first one; idle_nb only matters
                                # when none exists.
                                if b in scan_stalled:
                                    stall_decisions += 1
                                    continue
                                best_size_ci = -1
                                idle_nb = []
                                for ci in core_range:
                                    if cur_job[ci] < 0:
                                        if core_sizes[ci] == size_kb:
                                            best_size_ci = ci
                                            break
                                        idle_nb.append(ci)
                                if best_size_ci >= 0:
                                    done, cid, cfg = (
                                        sess_state[b].get(size_kb)
                                        or sess(b, size_kb)
                                    )
                                    if cid < 0:
                                        raise KeyError(cfg)
                                    assignment = (
                                        best_size_ci, cid,
                                        False, not done,
                                    )
                                elif not idle_nb:
                                    continue
                                else:
                                    stb = sess_state[b]
                                    nb = []
                                    for ci in idle_nb:
                                        sz = core_sizes[ci]
                                        done, cid, cfg = (
                                            stb.get(sz) or sess(b, sz)
                                        )
                                        if not done:
                                            if cid < 0:
                                                raise KeyError(cfg)
                                            assignment = (
                                                ci, cid, False, True,
                                            )
                                            break
                                        nb.append((ci, cid, cfg))
                                    if assignment is None:
                                        best_done, best_cid, best_cfg = (
                                            stb.get(size_kb)
                                            or sess(b, size_kb)
                                        )
                                        if not best_done:
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        if best_cid < 0:
                                            raise KeyError(best_cfg)
                                        if best_cid not in executed[b]:
                                            # Parity with the
                                            # table-eviction guard
                                            # (fault-only).
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        eb = est[b]
                                        cand_ci = -1
                                        cand_cid = -1
                                        cand_key = None
                                        for ci, scid, scfg in nb:
                                            if scid < 0:
                                                raise KeyError(scfg)
                                            key = (eb[scid][3], ci)
                                            if (
                                                cand_key is None
                                                or key < cand_key
                                            ):
                                                cand_key = key
                                                cand_ci = ci
                                                cand_cid = scid
                                        wait_cycles = None
                                        for ci in cores_by_size[size_kb]:
                                            rem = (
                                                busy_until[ci] - now
                                                if cur_job[ci] >= 0
                                                else 0
                                            )
                                            if rem < 0:
                                                rem = 0
                                            if (
                                                wait_cycles is None
                                                or rem < wait_cycles
                                            ):
                                                wait_cycles = rem
                                        stall_energy = (
                                            eb[best_cid][3]
                                            + wait_cycles
                                            * cfg_static[cur_cfg[cand_ci]]
                                        )
                                        if stall_energy <= eb[cand_cid][3]:
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        non_best_decisions += 1
                                        non_best_pending = True
                                        assignment = (
                                            cand_ci, cand_cid,
                                            False, False,
                                        )

                        # ---- power gate ----------------------------
                        # Mirrors SchedulerSimulation._power_gate with
                        # the point pinned to nominal (engine selection
                        # keeps policies that override choose_dvfs on
                        # the reference engine).  All arithmetic repeats
                        # repro.energy.scaling.scaled_charges operation
                        # for operation.
                        dvfs_point = None
                        if pool is not None:
                            ci, cid, prof, tun = assignment
                            entry = est[b][cid]
                            if entry is None:
                                store.estimate(
                                    bench_names[b], cfg_objs[cid]
                                )
                            tot_cycles, dyn, sta, _ = entry
                            fraction = remaining[jid]
                            if fraction == 1.0:
                                g_dyn = dyn
                                g_sta = sta
                            else:
                                g_dyn = dyn * fraction
                                g_sta = sta * fraction
                            dvfs_point = nominal_point
                            price = g_dyn + g_sta
                            csize = core_sizes[ci]
                            if not pool.affordable(price, csize):
                                eb = est[b]
                                cfg_ladder = (
                                    (cid,) if prof or tun
                                    else core_cfg_ids[ci]
                                )
                                options = (
                                    (None,) if dvfs_points is None
                                    else dvfs_points
                                )
                                candidates = []
                                rank = 0
                                for ccid in cfg_ladder:
                                    centry = eb[ccid]
                                    if centry is None:
                                        rank += n_points
                                        continue
                                    ctot, cdyn, csta, _ = centry
                                    if fraction == 1.0:
                                        cwork0 = ctot
                                        cd0 = cdyn
                                        cs0 = csta
                                    else:
                                        cwork0 = int(
                                            round(ctot * fraction)
                                        )
                                        if cwork0 < 1:
                                            cwork0 = 1
                                        cd0 = cdyn * fraction
                                        cs0 = csta * fraction
                                    for option in options:
                                        if (
                                            option is None
                                            or option.is_nominal
                                        ):
                                            cwork = cwork0
                                            cd = cd0
                                            cs = cs0
                                        else:
                                            cwork = int(round(
                                                cwork0
                                                / option.freq_scale
                                            ))
                                            if cwork < 1:
                                                cwork = 1
                                            cd = cd0 * option.dyn_factor
                                            cs = (
                                                cs0
                                                * option.static_factor
                                            )
                                        candidates.append((
                                            cd + cs, cwork, rank,
                                            (ccid, option),
                                        ))
                                        rank += 1
                                chosen = pick_degraded(
                                    pool, csize, price, candidates,
                                    now=now,
                                    arrival_cycle=jarr[jid],
                                    deadline_cycle=jdl[jid],
                                    slack_pct=slack_pct,
                                )
                                if chosen is not None:
                                    dcid, option = chosen
                                    pool.degraded += 1
                                    dvfs_point = option
                                    assignment = (ci, dcid, prof, tun)
                                elif pool.idle():
                                    pool.overdrafts += 1
                                else:
                                    pool.throttled += 1
                                    continue

                        # ---- job start -----------------------------
                        del queue[jid]
                        view = None
                        ci, cid, prof, tun = assignment
                        prev = cur_cfg[ci]
                        if cid != prev:
                            cost_cyc = recfg_cycles_from[prev]
                            cost_nj = recfg_nj_from[prev]
                            res_closed[ci].append(
                                (res_start[ci], now, prev, res_busy[ci])
                            )
                            res_start[ci] = now
                            res_busy[ci] = 0
                            cur_cfg[ci] = cid
                            recfg_count[ci] += 1
                            recfg_cycles_core[ci] += cost_cyc
                            recfg_nj_core[ci] += cost_nj
                        else:
                            cost_cyc = 0
                            cost_nj = 0.0
                        reconfig_nj += cost_nj
                        reconfig_cycles += cost_cyc

                        entry = est[b][cid]
                        if entry is None:
                            # Raise the reference's KeyError at the
                            # same point.
                            store.estimate(bench_names[b], cfg_objs[cid])
                        tot_cycles, dyn, sta, tot = entry
                        fraction = remaining[jid]
                        if not 0.0 < fraction <= 1.0:
                            raise RuntimeError(
                                f"job {jlab[jid]} has invalid "
                                f"remaining fraction {fraction}"
                            )
                        overhead_cycles = 0
                        overhead_nj = 0.0
                        if prof:
                            overhead_cycles = int(round(tot_cycles * pof))
                            overhead_nj = tot * pof
                            profiling_overhead_nj += overhead_nj
                            profiling_executions += 1
                        if tun and fraction == 1.0:
                            tuning_executions += 1

                        if fraction == 1.0:
                            # IEEE multiplication by 1.0 is exact, so
                            # the common full-run case can skip the
                            # scaling bit-identically.
                            dynamic_charge = dyn
                            static_charge = sta
                            work = tot_cycles
                        else:
                            dynamic_charge = dyn * fraction
                            static_charge = sta * fraction
                            work = int(round(tot_cycles * fraction))
                            if work < 1:
                                work = 1
                        if pool is not None:
                            if (
                                dvfs_point is not None
                                and not dvfs_point.is_nominal
                            ):
                                work = int(round(
                                    work / dvfs_point.freq_scale
                                ))
                                if work < 1:
                                    work = 1
                                dynamic_charge = (
                                    dynamic_charge
                                    * dvfs_point.dyn_factor
                                )
                                static_charge = (
                                    static_charge
                                    * dvfs_point.static_factor
                                )
                            pool.grant(
                                jlab[jid],
                                dynamic_charge + static_charge,
                                core_sizes[ci],
                            )
                            core_dvfs[ci] = (
                                None if dvfs_point is None
                                else dvfs_point.name
                            )
                        dynamic_nj += dynamic_charge
                        busy_static_nj += static_charge
                        charged[jid] += dynamic_charge + static_charge
                        service = work + cost_cyc + overhead_cycles
                        if jstart[jid] is None:
                            jstart[jid] = now
                        enq = last_enq[jid]
                        waiting[jid] += now - (
                            enq if enq is not None else jarr[jid]
                        )
                        last_enq[jid] = None
                        cur_job[ci] = jid
                        n_busy += 1
                        run_started[ci] = now
                        busy_until[ci] = now + service
                        busy_cycles[ci] += service
                        res_busy[ci] += service
                        execs[ci] += 1
                        epoch[ci] += 1

                        if prof:
                            cat = 0
                        elif tun:
                            cat = 1
                        elif non_best_pending:
                            cat = 2
                        else:
                            cat = 3
                        non_best_pending = False

                        pending[ci] = (
                            jid, cid, prof, tun, fraction,
                            dynamic_charge, static_charge, overhead_nj,
                            tot_cycles, tot, cat,
                        )
                        heappush(
                            comp_heap,
                            (now + service, seq, ci, epoch[ci]),
                        )
                        seq += 1
                        if seq == tr_start_next:
                            tr_start_next += tr_every
                            tel.emit_dispatch(
                                cycle=now, job_id=jlab[jid],
                                core_index=ci,
                                benchmark=bench_names[b],
                                category=_CATEGORIES[cat],
                                dynamic_nj=dynamic_charge,
                                static_nj=static_charge,
                                overhead_nj=overhead_nj,
                                service_cycles=service,
                            )
                        assigned = True
                        break  # core states changed; rescan
                    if assigned:
                        continue

                # Nothing could be placed (or no core is idle): try a
                # preemption, otherwise the dispatch round is over.
                if not preemptive:
                    break
                if preempted_now_cycle != now:
                    preempted_now_cycle = now
                    preempted_now.clear()
                running = []
                for ci in core_range:
                    vj = cur_job[ci]
                    if (
                        vj >= 0
                        and jlab[vj] not in preempted_now
                        and not pending[ci][2]
                        and busy_until[ci] > now
                        and now - run_started[ci] >= quantum
                        and busy_until[ci] - now >= quantum
                    ):
                        running.append(ci)
                if not running:
                    break
                victim_ci = -1
                victim_urgency = 0.0
                for ci in running:
                    u = urgency[cur_job[ci]]
                    if victim_ci < 0 or u < victim_urgency:
                        victim_ci = ci
                        victim_urgency = u
                if fifo:
                    v = queue
                elif view is not None:
                    v = view
                else:
                    v = view = sorted(queue, key=sort_key.__getitem__)
                preempted = False
                for jid in v:
                    if urgency[jid] <= victim_urgency:
                        continue
                    # Preempt the victim core; requeue the remaining
                    # work.
                    (vjid, _, _, _, fraction_at_start, dync, stac,
                     ovhc, _, _, _) = pending[victim_ci]
                    pending[victim_ci] = None
                    service = (
                        busy_until[victim_ci] - run_started[victim_ci]
                    )
                    ran = now - run_started[victim_ci]
                    fraction_run = ran / service if service else 0.0
                    unused = busy_until[victim_ci] - now
                    busy_cycles[victim_ci] -= unused
                    res_busy[victim_ci] -= unused
                    cur_job[victim_ci] = -1
                    n_busy -= 1
                    busy_until[victim_ci] = now
                    epoch[victim_ci] += 1
                    preempted_now.add(jlab[vjid])
                    preemption_count += 1
                    refund = 1.0 - fraction_run
                    refund_dynamic = dync * refund
                    refund_static = stac * refund
                    refund_overhead = ovhc * refund
                    dynamic_nj -= refund_dynamic
                    busy_static_nj -= refund_static
                    profiling_overhead_nj -= refund_overhead
                    charged[vjid] -= refund_dynamic + refund_static
                    if pool is not None:
                        pool.refund(
                            jlab[vjid], refund_dynamic + refund_static
                        )
                    remaining[vjid] = (
                        fraction_at_start * (1.0 - fraction_run)
                    )
                    jpre[vjid] += 1
                    last_enq[vjid] = now
                    queue[vjid] = True
                    view = None
                    enqueued_total += 1
                    if len(queue) > max_queue_len:
                        max_queue_len = len(queue)
                    preempted = True
                    break
                if not preempted:
                    break

        if queue:  # pragma: no cover - unreachable without faults
            raise RuntimeError(
                f"simulation drained with {len(queue)} jobs still queued"
            )

        if tel is not None:
            # Final sample at drain time (marked ``final``), whether or
            # not the completion count landed on a threshold.
            ow = tel.wait_hist.observe
            while rec_i < done_ct:
                ow(waiting[records[rec_i][0]])
                rec_i += 1
            tel.sample(
                engine="fast", now=now, done=done_ct, total=n,
                queue=0, busy=n_busy,
                cores=[
                    [busy_cycles[i], cfg_names[cur_cfg[i]]]
                    for i in core_range
                ],
                dynamic_nj=dynamic_nj,
                busy_static_nj=busy_static_nj,
                reconfig_nj=reconfig_nj,
                profiling_overhead_nj=profiling_overhead_nj,
                stalls=stall_decisions,
                non_best=non_best_decisions,
                preemptions=preemption_count,
                waiting=tel.wait_hist.snapshot(),
                jobs_per_mcycle=done_ct * 1e6 / now if now else 0.0,
                final=True,
            )

        # -- result assembly ----------------------------------------------
        # JobRecord is a frozen dataclass: its generated __init__ routes
        # every field through object.__setattr__ and then validates
        # invariants the simulation already guarantees (arrival <= start
        # <= completion, waiting >= 0).  Building via __new__ + __dict__
        # skips that per-record overhead; the generated __eq__/__hash__
        # read attributes, so the records compare identically.
        new_record = JobRecord.__new__
        job_records = []
        for jid, ci, cid, prof, tun in records:
            record = new_record(JobRecord)
            record.__dict__.update({
                "job_id": jlab[jid],
                "benchmark": bench_names[jbid[jid]],
                "arrival_cycle": jarr[jid],
                "start_cycle": jstart[jid],
                "completion_cycle": jcomp[jid],
                "core_index": ci,
                "config_name": cfg_names[cid],
                "profiled": prof,
                "tuning": tun,
                "energy_nj": charged[jid],
                "priority": jprio[jid],
                "deadline_cycle": jdl[jid],
                "preemptions": jpre[jid],
                "waiting_cycles": waiting[jid],
            })
            job_records.append(record)
        makespan = max(
            (r.completion_cycle for r in job_records), default=0
        )
        idle_nj = 0.0
        for ci in core_range:
            per_power: Dict[float, int] = {}
            intervals = res_closed[ci] + [
                (res_start[ci], makespan, cur_cfg[ci], res_busy[ci])
            ]
            for interval_start, interval_end, icid, ibusy in intervals:
                idle_cycles = (interval_end - interval_start) - ibusy
                if idle_cycles < 0:  # pragma: no cover - invariant
                    raise RuntimeError(
                        f"{self.core_names[ci]} busy beyond the makespan"
                    )
                power = cfg_static[icid]
                per_power[power] = per_power.get(power, 0) + idle_cycles
            for power, cycles in per_power.items():
                idle_nj += cycles * power
        # Plain loops rather than comprehensions: on CPython < 3.12 a
        # comprehension body is a nested scope, so variables it reads
        # would become closure cells — slowing every access to them in
        # the hot loop above.
        predictions = {}
        exploration_counts = {}
        for b in self.touch_order:
            if pred_raw[b] is not None:
                predictions[bench_names[b]] = pred_raw[b]
            exploration_counts[bench_names[b]] = len(executed[b])
        core_busy = {}
        for ci in core_range:
            core_busy[ci] = busy_cycles[ci]
        result = SimulationResult(
            policy=policy.name,
            jobs_completed=len(job_records),
            makespan_cycles=makespan,
            idle_energy_nj=idle_nj,
            dynamic_energy_nj=(
                dynamic_nj + reconfig_nj + profiling_overhead_nj
            ),
            busy_static_energy_nj=busy_static_nj,
            reconfig_energy_nj=reconfig_nj,
            profiling_overhead_nj=profiling_overhead_nj,
            reconfig_cycles=reconfig_cycles,
            stall_decisions=stall_decisions,
            non_best_decisions=non_best_decisions,
            tuning_executions=tuning_executions,
            profiling_executions=profiling_executions,
            preemption_count=preemption_count,
            core_busy_cycles=core_busy,
            exploration_counts=exploration_counts,
            predictions_kb=predictions,
            jobs=job_records,
        )

        # Reference-shaped end-of-run state for the glue layer (plain
        # loops for the same closure-cell reason as above).
        core_snaps = []
        for ci in core_range:
            residency_closed = []
            for s, e, icid, ibusy in res_closed[ci]:
                residency_closed.append((s, e, cfg_objs[icid], ibusy))
            snap = {
                "busy_until": busy_until[ci],
                "busy_cycles": busy_cycles[ci],
                "executions": execs[ci],
                "epoch": epoch[ci],
                "run_started_at": run_started[ci],
                "config": cfg_objs[cur_cfg[ci]],
                "reconfigurations": recfg_count[ci],
                "reconfig_cycles": recfg_cycles_core[ci],
                "reconfig_energy_nj": recfg_nj_core[ci],
                "residency_closed": residency_closed,
                "residency_start": res_start[ci],
                "residency_busy": res_busy[ci],
            }
            if pool is not None:
                snap["dvfs"] = core_dvfs[ci]
            core_snaps.append(snap)
        self.final_state = {
            "now": now,
            "processed": processed,
            "sequence": seq,
            "enqueued_total": enqueued_total,
            "max_queue_len": max_queue_len,
            "cores": core_snaps,
            "accumulators": {
                "dynamic_nj": dynamic_nj,
                "busy_static_nj": busy_static_nj,
                "reconfig_nj": reconfig_nj,
                "reconfig_cycles": reconfig_cycles,
                "profiling_overhead_nj": profiling_overhead_nj,
                "stall_decisions": stall_decisions,
                "non_best_decisions": non_best_decisions,
                "tuning_executions": tuning_executions,
                "profiling_executions": profiling_executions,
                "preemption_count": preemption_count,
            },
        }
        if pool is not None:
            # The pool object itself is the live account; the snapshot
            # keeps final_state self-contained for the glue layer and
            # streaming checkpoints.
            self.final_state["power"] = pool.state_dict()
        return result
