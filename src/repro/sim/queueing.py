"""Ready queue.

The paper processes arrivals "on a FIFO basis"; stalled jobs are
"enqueued back into the ready queue".  :class:`ReadyQueue` implements
that discipline with one refinement the paper implies: a job re-enqueued
because it chose to stall keeps its original arrival order (it returns to
the *front* among re-enqueued jobs), so a stalling job is reconsidered
before strictly younger arrivals.

Waiting-time accounting is built in because idle/stall energy attribution
needs it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

__all__ = ["ReadyQueue"]

T = TypeVar("T")


class ReadyQueue(Generic[T]):
    """FIFO queue with stall re-enqueue and occupancy statistics."""

    def __init__(self) -> None:
        self._queue: Deque[T] = deque()
        self.enqueued_total = 0
        self.requeued_total = 0
        self.max_length = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[T]:
        return iter(self._queue)

    def push(self, item: T) -> None:
        """Enqueue a newly arrived job at the back."""
        self._queue.append(item)
        self.enqueued_total += 1
        self.max_length = max(self.max_length, len(self._queue))

    def push_front(self, item: T) -> None:
        """Re-enqueue a stalled job at the front (keeps its seniority)."""
        self._queue.appendleft(item)
        self.requeued_total += 1
        self.max_length = max(self.max_length, len(self._queue))

    def pop(self) -> T:
        """Dequeue the oldest job."""
        if not self._queue:
            raise IndexError("pop from an empty ready queue")
        return self._queue.popleft()

    def peek(self) -> Optional[T]:
        """The oldest job without removing it, or ``None`` if empty."""
        return self._queue[0] if self._queue else None

    def remove(self, item: T) -> bool:
        """Remove a specific job; returns whether it was present."""
        try:
            self._queue.remove(item)
            return True
        except ValueError:
            return False

    def drain(self) -> List[T]:
        """Remove and return everything, oldest first."""
        items = list(self._queue)
        self._queue.clear()
        return items
