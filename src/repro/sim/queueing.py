"""Ready queue.

The paper processes arrivals "on a FIFO basis"; stalled jobs are
"enqueued back into the ready queue".  :class:`ReadyQueue` implements
that discipline with one refinement the paper implies: a job re-enqueued
because it chose to stall keeps its original arrival order (it returns to
the *front* among re-enqueued jobs), so a stalling job is reconsidered
before strictly younger arrivals.

Waiting-time accounting is built in because idle/stall energy attribution
needs it.

Implementation: a flat list with tombstones and an identity index
instead of a deque.  The dispatcher's hot operation — remove a specific
job it just picked from the sorted queue view — is O(1) by object
identity (jobs are mutable dataclasses, so identity is the only stable
handle); removal by *value* of an object not present by identity falls
back to the deque-compatible first-equal linear scan.  The two differ
only when distinct-but-equal items coexist in the queue, which the
simulation never produces (queued jobs differ in id, arrival time or
mutable progress state).  The :attr:`mutations` counter increments on
every membership change so callers (the dispatcher's queue view) can
cache derived orderings and invalidate precisely.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, TypeVar

__all__ = ["ReadyQueue"]

T = TypeVar("T")

#: Tombstone threshold: compact once the dead slots outnumber both this
#: floor and the live items (amortised O(1) per operation).
_COMPACT_MIN_DEAD = 64


class ReadyQueue(Generic[T]):
    """FIFO queue with stall re-enqueue and occupancy statistics."""

    def __init__(self) -> None:
        self._items: List[Optional[T]] = []
        self._head = 0
        self._size = 0
        #: id(item) -> slot index (first occurrence wins).
        self._pos: Dict[int, int] = {}
        self.enqueued_total = 0
        self.requeued_total = 0
        self.max_length = 0
        #: Bumps on every membership change (push/pop/remove/drain).
        self.mutations = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[T]:
        items = self._items
        return (
            items[i]
            for i in range(self._head, len(items))
            if items[i] is not None
        )

    def push(self, item: T) -> None:
        """Enqueue a newly arrived job at the back."""
        self._pos.setdefault(id(item), len(self._items))
        self._items.append(item)
        self._size += 1
        self.enqueued_total += 1
        if self._size > self.max_length:
            self.max_length = self._size
        self.mutations += 1

    def push_front(self, item: T) -> None:
        """Re-enqueue a stalled job at the front (keeps its seniority)."""
        if self._head > 0:
            self._head -= 1
            self._items[self._head] = item
            self._pos.setdefault(id(item), self._head)
        else:
            self._items.insert(0, item)
            self._reindex()
        self._size += 1
        self.requeued_total += 1
        if self._size > self.max_length:
            self.max_length = self._size
        self.mutations += 1

    def pop(self) -> T:
        """Dequeue the oldest job."""
        items = self._items
        head = self._head
        n = len(items)
        while head < n and items[head] is None:
            head += 1
        if head >= n:
            self._head = head
            raise IndexError("pop from an empty ready queue")
        item = items[head]
        items[head] = None
        self._head = head + 1
        self._pos.pop(id(item), None)
        self._size -= 1
        self.mutations += 1
        return item

    def peek(self) -> Optional[T]:
        """The oldest job without removing it, or ``None`` if empty."""
        items = self._items
        head = self._head
        n = len(items)
        while head < n and items[head] is None:
            head += 1
        self._head = head  # skipping tombstones is not a mutation
        return items[head] if head < n else None

    def remove(self, item: T) -> bool:
        """Remove a specific job; returns whether it was present.

        O(1) when ``item`` itself is queued (the dispatcher's case);
        otherwise a first-equal linear scan, matching deque semantics.
        """
        index = self._pos.get(id(item))
        if index is not None and self._items[index] is item:
            self._items[index] = None
            del self._pos[id(item)]
        else:
            for i in range(self._head, len(self._items)):
                candidate = self._items[i]
                if candidate is not None and candidate == item:
                    self._items[i] = None
                    self._pos.pop(id(candidate), None)
                    break
            else:
                return False
        self._size -= 1
        self.mutations += 1
        if (
            len(self._items) - self._head - self._size > _COMPACT_MIN_DEAD
            and len(self._items) - self._head > 2 * self._size
        ):
            self._compact()
        return True

    def drain(self) -> List[T]:
        """Remove and return everything, oldest first."""
        items = [item for item in self._items if item is not None]
        self._items = []
        self._head = 0
        self._size = 0
        self._pos = {}
        self.mutations += 1
        return items

    def _compact(self) -> None:
        self._items = [item for item in self._items if item is not None]
        self._head = 0
        self._reindex()

    def _reindex(self) -> None:
        pos: Dict[int, int] = {}
        for i in range(self._head, len(self._items)):
            item = self._items[i]
            if item is not None:
                pos.setdefault(id(item), i)
        self._pos = pos
