"""Open-system streaming driver on top of the fast engine.

:class:`StreamingSimulation` runs the exact event loop of
:class:`~repro.sim.fast.FastSimulation` — same policies, same event
ordering, same floating-point operation order — against an *unbounded*
:class:`~repro.workloads.arrivals.ArrivalProcess` instead of a
materialised arrival list, in bounded memory:

* **chunked refill** — arrivals are pulled one fixed chunk at a time
  (O(chunk) arrival memory) and admitted in generation order, which the
  processes guarantee is non-decreasing in time;
* **job-slot recycling** — per-job struct-of-arrays slots are returned
  to a free list when a job completes (unless ``retain_jobs`` asks for
  the full closed-batch :class:`~repro.core.results.SimulationResult`),
  so job memory is O(in-flight jobs), not O(jobs ever);
* **streaming accumulation** — waiting/turnaround distributions flow
  into :class:`~repro.obs.metrics.Histogram` P² estimators
  (P50/P90/P99), energy into the same scalar accumulators the fast
  engine uses, and idle leakage into per-core per-power integer cycle
  counts folded incrementally at each reconfiguration.  The fold is
  bit-identical to the fast engine's end-of-run residency walk: integer
  cycle sums are exact and order-free, and dict key order (first-seen
  static power) is chronological in both engines, so the final
  ``cycles * power`` multiply-accumulate runs in the same order;
* **admission control** — an optional bounded ready queue with
  ``drop`` (reject the arrival), ``shed`` (evict the least-entitled
  queued job) or ``block`` (delay the arrival source) policies, so
  saturating loads degrade gracefully instead of growing the heap;
* **checkpoint/resume** — :meth:`StreamingSimulation.snapshot` captures
  a versioned, JSON-serialisable image of every piece of run state
  (job slots, queue, completion heap, RNG streams, knowledge state,
  accumulators, P² markers) such that restoring it into a fresh engine
  and finishing the run is bit-identical to never having stopped.

Bounded-queue and warm-up machinery never touches the arithmetic of
the simulation itself, so an unbounded-queue stream truncated to N
jobs is bit-identical to the closed-batch fast engine run on
``poisson_arrivals(count=N)`` — enforced by
``tests/sim/test_streaming.py``.
"""

from __future__ import annotations

import json
import math
import os

from dataclasses import asdict, dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.cache.config import CacheConfig
from repro.cache.tuner import TunerCostModel
from repro.core.results import JobRecord, SimulationResult
from repro.core.tuning import TuningSession
from repro.obs.events import CATEGORIES as _CATEGORIES
from repro.obs.metrics import Histogram
from repro.power.budget import pick_degraded
from repro.sim.fast import FastSimulation
from repro.workloads.arrivals import ArrivalProcess, JobArrival

__all__ = [
    "ADMISSION_POLICIES",
    "STREAM_SNAPSHOT_VERSION",
    "StreamConfig",
    "StreamResult",
    "StreamingSimulation",
    "read_checkpoint",
]

#: Snapshot schema version; bumped on any layout change.  Loading a
#: snapshot with a different version fails loudly.  v2 added the
#: ``telemetry`` section (sample count + output byte offsets); v3 added
#: the power axis (token-pool account + per-core DVFS points).
STREAM_SNAPSHOT_VERSION = 3

#: Bounded-queue admission policies.
ADMISSION_POLICIES = ("drop", "shed", "block")

_NEG_INF = float("-inf")
_INF = float("inf")


@dataclass(frozen=True)
class StreamConfig:
    """Shape of one open-system run.

    ``max_jobs`` / ``duration_cycles`` bound generation (at least one
    is required — the arrival processes are unbounded); ``duration``
    stops admitting jobs whose arrival cycle reaches the bound, then
    drains.  ``warmup_cycles`` excludes jobs arriving before the bound
    from the waiting/turnaround statistics (the run itself is
    untouched).  ``queue_capacity`` + ``admission`` bound the ready
    queue; ``retain_jobs`` keeps every per-job record and assembles a
    full closed-batch :class:`SimulationResult` (O(jobs) memory —
    intended for equivalence testing, off by default).
    """

    max_jobs: Optional[int] = None
    duration_cycles: Optional[int] = None
    warmup_cycles: int = 0
    queue_capacity: Optional[int] = None
    admission: str = "block"
    retain_jobs: bool = False

    def __post_init__(self) -> None:
        if self.max_jobs is None and self.duration_cycles is None:
            raise ValueError(
                "an open-system run needs a bound: set max_jobs and/or "
                "duration_cycles"
            )
        if self.max_jobs is not None and self.max_jobs <= 0:
            raise ValueError("max_jobs must be positive")
        if self.duration_cycles is not None and self.duration_cycles <= 0:
            raise ValueError("duration_cycles must be positive")
        if self.warmup_cycles < 0:
            raise ValueError("warmup_cycles must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )


@dataclass
class StreamResult:
    """Steady-state summary of one open-system run.

    Energy fields follow :class:`SimulationResult`'s conventions
    (``dynamic_energy_nj`` includes reconfiguration and profiling
    overhead).  ``waiting`` / ``turnaround`` are
    :meth:`~repro.obs.metrics.Histogram.snapshot` dicts over the
    post-warm-up jobs only.  ``sim_result`` is the full closed-batch
    result when ``retain_jobs`` was on, else ``None``.
    """

    policy: str
    discipline: str
    admission: str
    queue_capacity: Optional[int]
    warmup_cycles: int
    jobs_generated: int
    jobs_admitted: int
    jobs_completed: int
    jobs_dropped: int
    jobs_shed: int
    forced_admissions: int
    blocked_cycles: int
    observed_jobs: int
    makespan_cycles: int
    idle_energy_nj: float
    dynamic_energy_nj: float
    busy_static_energy_nj: float
    reconfig_energy_nj: float
    profiling_overhead_nj: float
    reconfig_cycles: int
    stall_decisions: int
    non_best_decisions: int
    tuning_executions: int
    profiling_executions: int
    preemption_count: int
    enqueued_total: int
    max_queue_len: int
    core_busy_cycles: Dict[int, int] = field(default_factory=dict)
    waiting: Dict[str, float] = field(default_factory=dict)
    turnaround: Dict[str, float] = field(default_factory=dict)
    sim_result: Optional[SimulationResult] = None
    #: Token-pool account gauges when the power axis was on, else None.
    power: Optional[Dict[str, object]] = None

    @property
    def total_energy_nj(self) -> float:
        """Idle + busy-static + dynamic (same terms as the batch result)."""
        return (
            self.idle_energy_nj
            + self.busy_static_energy_nj
            + self.dynamic_energy_nj
        )

    @property
    def throughput_jobs_per_mcycle(self) -> float:
        """Completed jobs per million cycles of makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.jobs_completed / self.makespan_cycles * 1e6

    @property
    def energy_rate_nj_per_cycle(self) -> float:
        """Total energy per cycle of makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_energy_nj / self.makespan_cycles

    @property
    def shed_rate(self) -> float:
        """Shed + dropped jobs as a fraction of generated jobs."""
        if self.jobs_generated == 0:
            return 0.0
        return (self.jobs_shed + self.jobs_dropped) / self.jobs_generated

    def utilisation(self) -> Dict[int, float]:
        """Busy fraction of the makespan per core."""
        span = self.makespan_cycles
        if span == 0:
            return {ci: 0.0 for ci in self.core_busy_cycles}
        return {
            ci: busy / span for ci, busy in self.core_busy_cycles.items()
        }


def read_checkpoint(path: str) -> dict:
    """Load a checkpoint file written by :meth:`write_checkpoint`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _arrival_to_list(arrival: JobArrival) -> list:
    return [
        arrival.job_id,
        arrival.benchmark,
        arrival.arrival_cycle,
        arrival.priority,
        arrival.deadline_cycle,
    ]


def _arrival_from_list(fields: list) -> JobArrival:
    job_id, benchmark, arrival_cycle, priority, deadline = fields
    return JobArrival(
        job_id=job_id,
        benchmark=benchmark,
        arrival_cycle=arrival_cycle,
        priority=priority,
        deadline_cycle=deadline,
    )


def _session_to_dict(session: TuningSession) -> dict:
    def cfg(config: Optional[CacheConfig]) -> Optional[list]:
        if config is None:
            return None
        return [config.size_kb, config.assoc, config.line_b]

    return {
        "size_kb": session.size_kb,
        "line_first": session.line_first,
        "phase": session.phase,
        "best_config": cfg(session.best_config),
        "best_energy_nj": session.best_energy_nj,
        "explored": [cfg(c) for c in session.explored],
        "first_index": session._first_index,
        "second_index": session._second_index,
        "chosen_first": session._chosen_first,
    }


def _session_from_dict(state: dict) -> TuningSession:
    def cfg(fields: Optional[list]) -> Optional[CacheConfig]:
        if fields is None:
            return None
        size_kb, assoc, line_b = fields
        return CacheConfig(size_kb=size_kb, assoc=assoc, line_b=line_b)

    session = TuningSession(
        size_kb=state["size_kb"],
        line_first=state["line_first"],
        phase=state["phase"],
    )
    session.best_config = cfg(state["best_config"])
    session.best_energy_nj = float(state["best_energy_nj"])
    session.explored = [cfg(c) for c in state["explored"]]
    session._first_index = int(state["first_index"])
    session._second_index = int(state["second_index"])
    session._chosen_first = (
        None
        if state["chosen_first"] is None
        else int(state["chosen_first"])
    )
    return session


class StreamingSimulation:
    """One open-system streaming run of one policy on one system.

    Construction mirrors :class:`FastSimulation` (same arguments, same
    validation) plus a :class:`StreamConfig`.  Drive it either with
    :meth:`run` (to completion, with optional periodic checkpoints) or
    with :meth:`start` + :meth:`advance` for stepwise control;
    :meth:`result` summarises a finished run.  :meth:`snapshot` /
    :meth:`restore` implement deterministic checkpoint/resume.
    """

    def __init__(
        self,
        system,
        policy,
        store,
        *,
        predictor=None,
        energy_table=None,
        tuner_costs: TunerCostModel = TunerCostModel(),
        profiling_overhead_fraction: float = 0.003,
        discipline: str = "fifo",
        preemptive: bool = False,
        preemption_quantum_cycles: int = 10_000,
        preload_profiles: bool = False,
        config: StreamConfig = None,
        telemetry=None,
        power=None,
    ) -> None:
        if config is None:
            raise ValueError("a StreamConfig is required")
        self.f = FastSimulation(
            system,
            policy,
            store,
            predictor=predictor,
            energy_table=energy_table,
            tuner_costs=tuner_costs,
            profiling_overhead_fraction=profiling_overhead_fraction,
            discipline=discipline,
            preemptive=preemptive,
            preemption_quantum_cycles=preemption_quantum_cycles,
            preload_profiles=preload_profiles,
            power=power,
        )
        self.config = config
        # Sampled telemetry sink (repro.obs.telemetry), fed once per
        # arrival-buffer refill — the stream's natural chunk boundary —
        # plus a final sample at drain.  Its byte offsets ride in the
        # checkpoint, so kill/resume reproduces byte-identical files.
        self.telemetry = telemetry
        self.process: Optional[ArrivalProcess] = None
        self._s: Optional[dict] = None
        self._wait_hist = Histogram("stream.waiting_cycles")
        self._turn_hist = Histogram("stream.turnaround_cycles")

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._s is not None

    @property
    def finished(self) -> bool:
        """No event left: generation done, buffers and heap drained."""
        s = self._s
        if s is None:
            return False
        return (
            s["gen_done"]
            and not s["abuf"]
            and not s["comp_heap"]
            and s["deferred"] is None
        )

    def start(self, process: ArrivalProcess) -> None:
        """Attach the arrival process and initialise fresh run state."""
        if self._s is not None:
            raise RuntimeError("a StreamingSimulation runs exactly once")
        self.process = process
        C = self.f.n_cores
        self._s = {
            # per-job slots (parallel lists, recycled via free_slots)
            "jbid": [], "jlab": [], "jarr": [], "jprio": [], "jdl": [],
            "jstart": [], "jcomp": [], "remaining": [], "jpre": [],
            "last_enq": [], "waiting": [], "charged": [],
            "urgency": [], "sortkey": [],
            "free_slots": [],
            "records": [],
            # event/queue state
            "queue": {},
            "comp_heap": [],
            "abuf": [],
            "atimes": [],
            "abuf_i": 0,
            "deferred": None,
            "gen_done": False,
            # per-core state
            "cur_job": [-1] * C,
            "busy_until": [0] * C,
            "busy_cycles": [0] * C,
            "run_started": [0] * C,
            "epoch": [0] * C,
            "execs": [0] * C,
            "cur_cfg": list(self.f.core_reset_cid),
            "recfg_count": [0] * C,
            "recfg_cycles_core": [0] * C,
            "recfg_nj_core": [0.0] * C,
            "res_start": [0] * C,
            "res_busy": [0] * C,
            "pending": [None] * C,
            "per_power": [dict() for _ in range(C)],
            "core_dvfs": [None] * C,
            # scalars
            "now": 0,
            "seq": 0,
            "processed": 0,
            "n_busy": 0,
            "enqueued_total": 0,
            "max_queue_len": 0,
            "dynamic_nj": 0.0,
            "busy_static_nj": 0.0,
            "reconfig_nj": 0.0,
            "reconfig_cycles": 0,
            "profiling_overhead_nj": 0.0,
            "stall_decisions": 0,
            "non_best_decisions": 0,
            "tuning_executions": 0,
            "profiling_executions": 0,
            "preemption_count": 0,
            "non_best_pending": False,
            "preempted_now": set(),
            "preempted_now_cycle": -1,
            "generated": 0,
            "admitted": 0,
            "completed": 0,
            "dropped": 0,
            "shed": 0,
            "forced": 0,
            "blocked_cycles": 0,
            "observed": 0,
            "makespan": 0,
            "last_arrival_cycle": 0,
            # per-(benchmark, size) session cache, rebuilt lazily
            "sess_state": [dict() for _ in self.f.bench_names],
        }
        if self.telemetry is not None:
            self.telemetry.begin(self._telemetry_header())

    def _telemetry_header(self) -> dict:
        """Deterministic run metadata for the telemetry header line."""
        f = self.f
        return {
            "engine": "stream",
            "policy": f.policy.name,
            "discipline": f.discipline,
            "preemptive": f.preemptive,
            "admission": self.config.admission,
            "max_jobs": self.config.max_jobs,
            "duration_cycles": self.config.duration_cycles,
        }

    def run(
        self,
        process: ArrivalProcess,
        *,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> StreamResult:
        """Drive the stream to completion and summarise it.

        With ``checkpoint_path`` set, a snapshot is written atomically
        every ``checkpoint_every`` completions (and once at the end),
        so a killed run can resume from the last file.
        """
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if checkpoint_path is not None and checkpoint_every is None:
            checkpoint_every = 100_000
        self.start(process)
        return self._drive(checkpoint_path, checkpoint_every)

    def resume(
        self,
        snapshot: dict,
        process: ArrivalProcess,
        *,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> StreamResult:
        """Restore a snapshot and drive the rest of the run."""
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if checkpoint_path is not None and checkpoint_every is None:
            checkpoint_every = 100_000
        self.restore(snapshot, process)
        return self._drive(checkpoint_path, checkpoint_every)

    def _drive(
        self,
        checkpoint_path: Optional[str],
        checkpoint_every: Optional[int],
    ) -> StreamResult:
        if checkpoint_path is None:
            while self.advance():
                pass
        else:
            while self.advance(max_completions=checkpoint_every):
                self.write_checkpoint(checkpoint_path)
            self.write_checkpoint(checkpoint_path)
        return self.result()

    # -- the event loop ------------------------------------------------------

    def advance(
        self,
        max_events: Optional[int] = None,
        max_completions: Optional[int] = None,
    ) -> bool:
        """Process events until a budget is hit or the stream drains.

        Returns ``True`` while events may remain (call again), ``False``
        once the run is finished.  The loop body is the fast engine's,
        inlined and closure-cell-free for the same CPython reasons
        (see :mod:`repro.sim.fast`); every state mutation lands in
        structures owned by ``self._s``, so stopping between any two
        events is exact.
        """
        s = self._s
        if s is None:
            raise RuntimeError("call start() or restore() first")
        process = self.process
        f = self.f
        config = self.config

        ev_budget = math.inf if max_events is None else max_events
        comp_budget = (
            math.inf if max_completions is None else max_completions
        )
        ev_done = 0
        comp_done = 0

        # -- configuration locals ---------------------------------------
        capacity = config.queue_capacity
        adm = ADMISSION_POLICIES.index(config.admission)
        max_jobs = config.max_jobs
        duration = config.duration_cycles
        warmup = config.warmup_cycles
        retain = config.retain_jobs
        recycle = not retain

        # -- knowledge-state locals (owned by the FastSimulation) -------
        est = f._est
        executed = f.executed
        best_known = f.best_known
        profiled = f.profiled
        pred_raw = f.pred_raw
        pred_size = f.pred_size
        tuned = f.tuned
        cfg_sizes = f.cfg_sizes
        cfg_static = f.cfg_static_nj
        cfg_objs = f.cfg_objs
        cfg_ids = f.cfg_ids
        cfg_names = f.cfg_names
        recfg_cycles_from = f.recfg_cycles_from
        recfg_nj_from = f.recfg_nj_from
        core_sizes = f.core_sizes
        core_cfg_ids = f.core_cfg_ids
        cores_by_size = f.cores_by_size
        profiling_order = f.profiling_order
        base_cid = f.base_cid
        bench_names = f.bench_names
        bids_get = f.bids.get
        store = f.store
        predictor = f.predictor
        pof = f.profiling_overhead_fraction
        policy = f.policy
        requires_profiling = policy.requires_profiling
        uses_predictor = policy.uses_predictor
        pol = {"base": 0, "optimal": 1, "energy_centric": 2}.get(
            policy.name, 3
        )
        preemptive = f.preemptive
        quantum = f.preemption_quantum_cycles
        touched = f.touched
        touch_order = f.touch_order
        nearest_size = f._nearest_size
        C = f.n_cores
        core_range = range(C)
        sessions = f.sessions
        disc = self.DISC_IDS[f.discipline]
        fifo = disc == 0

        # Power axis locals (the fast engine's, on the inner sim).
        pool = f._power_pool
        if pool is None:
            dvfs_points: Optional[tuple] = None
            nominal_point = None
            n_points = 1
            slack_pct = 0.0
        else:
            table = f.power.dvfs
            dvfs_points = None if table is None else tuple(table)
            nominal_point = None if table is None else table.default
            n_points = 1 if dvfs_points is None else len(dvfs_points)
            slack_pct = f.power.slack_pct

        # -- run-state locals (scalars written back on exit) ------------
        jbid = s["jbid"]
        jlab = s["jlab"]
        jarr = s["jarr"]
        jprio = s["jprio"]
        jdl = s["jdl"]
        jstart = s["jstart"]
        jcomp = s["jcomp"]
        remaining = s["remaining"]
        jpre = s["jpre"]
        last_enq = s["last_enq"]
        waiting = s["waiting"]
        charged = s["charged"]
        urgency = s["urgency"]
        sort_key = s["sortkey"]
        free_slots = s["free_slots"]
        records = s["records"]
        queue = s["queue"]
        comp_heap = s["comp_heap"]
        abuf = s["abuf"]
        atimes = s["atimes"]
        abuf_i = s["abuf_i"]
        deferred = s["deferred"]
        gen_done = s["gen_done"]
        cur_job = s["cur_job"]
        busy_until = s["busy_until"]
        busy_cycles = s["busy_cycles"]
        run_started = s["run_started"]
        epoch = s["epoch"]
        execs = s["execs"]
        cur_cfg = s["cur_cfg"]
        recfg_count = s["recfg_count"]
        recfg_cycles_core = s["recfg_cycles_core"]
        recfg_nj_core = s["recfg_nj_core"]
        res_start = s["res_start"]
        res_busy = s["res_busy"]
        pending = s["pending"]
        per_power = s["per_power"]
        core_dvfs = s["core_dvfs"]
        now = s["now"]
        seq = s["seq"]
        processed = s["processed"]
        n_busy = s["n_busy"]
        enqueued_total = s["enqueued_total"]
        max_queue_len = s["max_queue_len"]
        dynamic_nj = s["dynamic_nj"]
        busy_static_nj = s["busy_static_nj"]
        reconfig_nj = s["reconfig_nj"]
        reconfig_cycles = s["reconfig_cycles"]
        profiling_overhead_nj = s["profiling_overhead_nj"]
        stall_decisions = s["stall_decisions"]
        non_best_decisions = s["non_best_decisions"]
        tuning_executions = s["tuning_executions"]
        profiling_executions = s["profiling_executions"]
        preemption_count = s["preemption_count"]
        non_best_pending = s["non_best_pending"]
        preempted_now = s["preempted_now"]
        preempted_now_cycle = s["preempted_now_cycle"]
        generated = s["generated"]
        admitted = s["admitted"]
        completed = s["completed"]
        dropped = s["dropped"]
        shed = s["shed"]
        forced = s["forced"]
        blocked_cycles = s["blocked_cycles"]
        observed = s["observed"]
        makespan = s["makespan"]
        last_arrival_cycle = s["last_arrival_cycle"]
        sess_state = s["sess_state"]
        wait_observe = self._wait_hist.observe
        turn_observe = self._turn_hist.observe

        # Telemetry thresholds.  Samples fire only inside the chunked
        # refill (cold path); sampled-trace thresholds are recomputed
        # from the persisted ``completed``/``seq`` counters, so a
        # resumed run re-emits exactly the events an uninterrupted run
        # would, without checkpointing the thresholds themselves.
        # Telemetry-off parks both at -1: one int compare per
        # completion/start is the entire hot-loop cost.
        tel = self.telemetry
        if tel is None:
            tr_every = 0
            tr_comp_next = tr_start_next = -1
        else:
            tr_every = tel.trace_every
            if tr_every > 0:
                tr_comp_next = tr_every * (completed // tr_every) + tr_every
                tr_start_next = tr_every * (seq // tr_every) + tr_every
            else:
                tr_comp_next = tr_start_next = -1

        view: Optional[list] = None
        more = True

        def sess(b: int, size_kb: int) -> tuple:
            state = sess_state[b].get(size_kb)
            if state is None:
                key = (b, size_kb)
                session = sessions.get(key)
                if session is None:
                    session = TuningSession(size_kb=size_kb)
                    sessions[key] = session
                cfg = (
                    session.best_config
                    if session.done
                    else session.next_config()
                )
                state = (session.done, cfg_ids.get(cfg, -1), cfg)
                sess_state[b][size_kb] = state
            return state

        while True:
            if ev_done >= ev_budget or comp_done >= comp_budget:
                break

            # -- next event ---------------------------------------------
            # Admission of a blocked arrival takes priority the moment
            # space exists: it was the earliest unserved arrival, so
            # FIFO admission order is preserved.
            a_admit = None
            if deferred is not None and len(queue) < capacity:
                a_admit = deferred
                deferred = None
                blocked_cycles += now - a_admit.arrival_cycle
            else:
                if abuf_i >= len(abuf) and not gen_done:
                    # -- chunked refill ---------------------------------
                    raw = process.next_chunk()
                    take = len(raw)
                    if max_jobs is not None:
                        left = max_jobs - generated
                        if take >= left:
                            take = left
                            gen_done = True
                    if duration is not None:
                        for k in range(take):
                            if raw[k].arrival_cycle >= duration:
                                take = k
                                gen_done = True
                                break
                    if take < len(raw):
                        raw = raw[:take]
                    generated += take
                    abuf = raw
                    atimes = [x.arrival_cycle for x in raw]
                    abuf_i = 0
                    if tel is not None:
                        # Chunk boundary (cold path, once per refill):
                        # read the loop's own state into one sample.
                        tel.sample(
                            engine="stream", now=now, done=completed,
                            total=max_jobs, generated=generated,
                            admitted=admitted, dropped=dropped,
                            shed=shed, queue=len(queue), busy=n_busy,
                            cores=[
                                [busy_cycles[i],
                                 cfg_names[cur_cfg[i]]]
                                for i in core_range
                            ],
                            dynamic_nj=dynamic_nj,
                            busy_static_nj=busy_static_nj,
                            reconfig_nj=reconfig_nj,
                            profiling_overhead_nj=(
                                profiling_overhead_nj
                            ),
                            stalls=stall_decisions,
                            non_best=non_best_decisions,
                            preemptions=preemption_count,
                            waiting=self._wait_hist.snapshot(),
                            jobs_per_mcycle=(
                                completed * 1e6 / now if now else 0.0
                            ),
                        )
                have_arr = deferred is None and abuf_i < len(abuf)
                if comp_heap and not (
                    have_arr and atimes[abuf_i] < comp_heap[0][0]
                ):
                    now, _, ci, cepoch = heappop(comp_heap)
                    if cepoch == epoch[ci]:
                        # ---- job completion ------------------------
                        (jid, cid, prof, tun, fraction_at_start,
                         _, _, _, _, e_tot, cat) = pending[ci]
                        pending[ci] = None
                        cur_job[ci] = -1
                        n_busy -= 1
                        jcomp[jid] = now
                        remaining[jid] = 0.0
                        if pool is not None:
                            pool.consume(jlab[jid])
                        b = jbid[jid]
                        full = fraction_at_start == 1.0
                        if full:
                            if not touched[b]:
                                touched[b] = True
                                touch_order.append(b)
                            ex = executed[b]
                            if cid not in ex:
                                ex[cid] = True
                                size = cfg_sizes[cid]
                                bk = best_known[b]
                                best = bk.get(size)
                                if (
                                    best is None
                                    or e_tot < best[0]
                                    or (
                                        e_tot == best[0]
                                        and cid < best[1]
                                    )
                                ):
                                    bk[size] = (e_tot, cid)
                        if prof:
                            if not touched[b]:
                                touched[b] = True
                                touch_order.append(b)
                            profiled[b] = True
                            if uses_predictor:
                                size = predictor.predict_size_kb(
                                    bench_names[b],
                                    store.counters(bench_names[b]),
                                )
                                if size <= 0:
                                    raise ValueError(
                                        "predicted size must be positive"
                                    )
                                pred_raw[b] = size
                                pred_size[b] = nearest_size(size)
                        if full and tun and uses_predictor:
                            size_kb = cfg_sizes[cid]
                            done, next_cid, _ = sess(b, size_kb)
                            if not done and next_cid == cid:
                                session = sessions[(b, size_kb)]
                                session.record(cfg_objs[cid], e_tot)
                                if session.done:
                                    best = session.best_config
                                    sess_state[b][size_kb] = (
                                        True,
                                        cfg_ids.get(best, -1),
                                        best,
                                    )
                                    if not touched[b]:
                                        touched[b] = True
                                        touch_order.append(b)
                                    tuned[b].add(size_kb)
                                else:
                                    nxt = session.next_config()
                                    sess_state[b][size_kb] = (
                                        False,
                                        cfg_ids.get(nxt, -1),
                                        nxt,
                                    )
                        # ---- streaming accumulation ----------------
                        completed += 1
                        comp_done += 1
                        if now > makespan:
                            makespan = now
                        if retain:
                            records.append((jid, ci, cid, prof, tun))
                        if jarr[jid] >= warmup:
                            observed += 1
                            wait_observe(waiting[jid])
                            turn_observe(now - jarr[jid])
                        if completed == tr_comp_next:
                            tr_comp_next += tr_every
                            tel.emit_completion(
                                cycle=now, job_id=jlab[jid],
                                core_index=ci,
                                benchmark=bench_names[b],
                                config=cfg_names[cid],
                                category=_CATEGORIES[cat],
                                energy_nj=charged[jid],
                                waiting_cycles=waiting[jid],
                            )
                        if recycle:
                            free_slots.append(jid)
                    # A stale completion (preempted epoch) still opens
                    # a dispatch round, exactly like the fast engine.
                elif have_arr:
                    a = abuf[abuf_i]
                    t = atimes[abuf_i]
                    abuf_i += 1
                    if t < last_arrival_cycle:
                        raise ValueError(
                            "arrival process emitted decreasing times: "
                            f"{t} after {last_arrival_cycle}"
                        )
                    last_arrival_cycle = t
                    # Blocking backpressure can pause the source while
                    # completions advance the clock, so a resumed
                    # arrival may carry a timestamp in the simulated
                    # past; it is handled at the current instant.  In
                    # an unblocked run the merge order guarantees
                    # t >= now and this is the plain `now = t`.
                    if t > now:
                        now = t
                    if (
                        capacity is not None
                        and len(queue) >= capacity
                    ):
                        if adm == 0:  # drop: reject the arrival
                            dropped += 1
                            processed += 1
                            ev_done += 1
                            continue
                        if adm == 2:  # block: pause the source
                            deferred = a
                            processed += 1
                            ev_done += 1
                            continue
                        # shed: evict the least-entitled queued job
                        # (last in service order; under FIFO the
                        # youngest, otherwise the worst sort key with
                        # latest-arrival tie-break, which is exactly
                        # the last element of the stable-sorted view).
                        if fifo:
                            victim = next(reversed(queue))
                        else:
                            if view is None:
                                view = sorted(
                                    queue, key=sort_key.__getitem__
                                )
                            victim = view[-1]
                        del queue[victim]
                        view = None
                        shed += 1
                        if recycle:
                            free_slots.append(victim)
                        a_admit = a
                    else:
                        a_admit = a
                elif deferred is not None:
                    # Backpressure cannot progress (nothing running,
                    # nothing completing): admit over capacity rather
                    # than deadlock.
                    a_admit = deferred
                    deferred = None
                    forced += 1
                    blocked_cycles += now - a_admit.arrival_cycle
                else:
                    if tel is not None:
                        # Final sample at drain (idempotent: the sink
                        # ignores samples after the ``final`` one).
                        tel.sample(
                            engine="stream", now=now, done=completed,
                            total=max_jobs, generated=generated,
                            admitted=admitted, dropped=dropped,
                            shed=shed, queue=len(queue), busy=n_busy,
                            cores=[
                                [busy_cycles[i],
                                 cfg_names[cur_cfg[i]]]
                                for i in core_range
                            ],
                            dynamic_nj=dynamic_nj,
                            busy_static_nj=busy_static_nj,
                            reconfig_nj=reconfig_nj,
                            profiling_overhead_nj=(
                                profiling_overhead_nj
                            ),
                            stalls=stall_decisions,
                            non_best=non_best_decisions,
                            preemptions=preemption_count,
                            waiting=self._wait_hist.snapshot(),
                            jobs_per_mcycle=(
                                completed * 1e6 / now if now else 0.0
                            ),
                            final=True,
                        )
                    more = False
                    break

            # -- admission: allocate (or recycle) a job slot ------------
            if a_admit is not None:
                b = bids_get(a_admit.benchmark)
                if b is None:
                    raise KeyError(
                        f"benchmark {a_admit.benchmark!r} missing from "
                        "the characterisation store"
                    )
                prio = a_admit.priority
                dl = a_admit.deadline_cycle
                if free_slots:
                    jid = free_slots.pop()
                    jbid[jid] = b
                    jlab[jid] = a_admit.job_id
                    jarr[jid] = a_admit.arrival_cycle
                    jprio[jid] = prio
                    jdl[jid] = dl
                    jstart[jid] = None
                    jcomp[jid] = 0
                    remaining[jid] = 1.0
                    jpre[jid] = 0
                    last_enq[jid] = now
                    waiting[jid] = 0
                    charged[jid] = 0.0
                    if disc == 1:
                        urgency[jid] = float(prio)
                        sort_key[jid] = -prio
                    elif disc == 2:
                        urgency[jid] = (
                            _NEG_INF if dl is None else -float(dl)
                        )
                        sort_key[jid] = _INF if dl is None else dl
                    else:
                        urgency[jid] = 0.0
                        sort_key[jid] = 0
                else:
                    jid = len(jbid)
                    jbid.append(b)
                    jlab.append(a_admit.job_id)
                    jarr.append(a_admit.arrival_cycle)
                    jprio.append(prio)
                    jdl.append(dl)
                    jstart.append(None)
                    jcomp.append(0)
                    remaining.append(1.0)
                    jpre.append(0)
                    last_enq.append(now)
                    waiting.append(0)
                    charged.append(0.0)
                    if disc == 1:
                        urgency.append(float(prio))
                        sort_key.append(-prio)
                    elif disc == 2:
                        urgency.append(
                            _NEG_INF if dl is None else -float(dl)
                        )
                        sort_key.append(_INF if dl is None else dl)
                    else:
                        urgency.append(0.0)
                        sort_key.append(0)
                queue[jid] = True
                view = None
                enqueued_total += 1
                admitted += 1
                if len(queue) > max_queue_len:
                    max_queue_len = len(queue)
            processed += 1
            ev_done += 1
            if n_busy >= C and not preemptive:
                continue

            # ---- dispatch rounds (verbatim fast-engine semantics) -----
            while True:
                if n_busy < C and queue:
                    if fifo:
                        v = queue
                    elif view is not None:
                        v = view
                    else:
                        v = view = sorted(
                            queue, key=sort_key.__getitem__
                        )
                    assigned = False
                    scan_stalled = set()
                    for jid in v:
                        b = jbid[jid]
                        assignment = None
                        if requires_profiling and not profiled[b]:
                            for ci, supports_base in profiling_order:
                                if cur_job[ci] < 0 and supports_base:
                                    assignment = (
                                        ci, base_cid, True, False,
                                    )
                                    break
                            if assignment is None:
                                continue
                        elif pol == 0:  # base
                            for ci in core_range:
                                if cur_job[ci] < 0:
                                    assignment = (
                                        ci, cur_cfg[ci], False, False,
                                    )
                                    break
                            if assignment is None:
                                continue
                        elif pol == 1:  # optimal
                            idle = []
                            for ci in core_range:
                                if cur_job[ci] < 0:
                                    idle.append(ci)
                            if not idle:
                                continue
                            ex = executed[b]
                            for ci in idle:
                                for cid in core_cfg_ids[ci]:
                                    if cid not in ex:
                                        assignment = (
                                            ci, cid, False, True,
                                        )
                                        break
                                if assignment is not None:
                                    break
                            if assignment is None:
                                best_ci = -1
                                best_key = None
                                for ci in idle:
                                    key = (
                                        best_known[b][core_sizes[ci]][0],
                                        ci,
                                    )
                                    if best_key is None or key < best_key:
                                        best_key = key
                                        best_ci = ci
                                assignment = (
                                    best_ci,
                                    best_known[b][core_sizes[best_ci]][1],
                                    False,
                                    False,
                                )
                        else:
                            if pred_raw[b] is None:
                                raise RuntimeError(
                                    f"{bench_names[b]} has no "
                                    "prediction; profiling must "
                                    "precede prediction-based "
                                    "scheduling"
                                )
                            size_kb = pred_size[b]
                            if pol == 2:  # energy_centric
                                for ci in core_range:
                                    if (
                                        cur_job[ci] < 0
                                        and core_sizes[ci] == size_kb
                                    ):
                                        done, cid, cfg = (
                                            sess_state[b].get(size_kb)
                                            or sess(b, size_kb)
                                        )
                                        if cid < 0:
                                            raise KeyError(cfg)
                                        assignment = (
                                            ci, cid, False, not done,
                                        )
                                        break
                                if assignment is None:
                                    continue
                            else:
                                # proposed
                                if b in scan_stalled:
                                    stall_decisions += 1
                                    continue
                                best_size_ci = -1
                                idle_nb = []
                                for ci in core_range:
                                    if cur_job[ci] < 0:
                                        if core_sizes[ci] == size_kb:
                                            best_size_ci = ci
                                            break
                                        idle_nb.append(ci)
                                if best_size_ci >= 0:
                                    done, cid, cfg = (
                                        sess_state[b].get(size_kb)
                                        or sess(b, size_kb)
                                    )
                                    if cid < 0:
                                        raise KeyError(cfg)
                                    assignment = (
                                        best_size_ci, cid,
                                        False, not done,
                                    )
                                elif not idle_nb:
                                    continue
                                else:
                                    stb = sess_state[b]
                                    nb = []
                                    for ci in idle_nb:
                                        sz = core_sizes[ci]
                                        done, cid, cfg = (
                                            stb.get(sz) or sess(b, sz)
                                        )
                                        if not done:
                                            if cid < 0:
                                                raise KeyError(cfg)
                                            assignment = (
                                                ci, cid, False, True,
                                            )
                                            break
                                        nb.append((ci, cid, cfg))
                                    if assignment is None:
                                        best_done, best_cid, best_cfg = (
                                            stb.get(size_kb)
                                            or sess(b, size_kb)
                                        )
                                        if not best_done:
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        if best_cid < 0:
                                            raise KeyError(best_cfg)
                                        if best_cid not in executed[b]:
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        eb = est[b]
                                        cand_ci = -1
                                        cand_cid = -1
                                        cand_key = None
                                        for ci, scid, scfg in nb:
                                            if scid < 0:
                                                raise KeyError(scfg)
                                            key = (eb[scid][3], ci)
                                            if (
                                                cand_key is None
                                                or key < cand_key
                                            ):
                                                cand_key = key
                                                cand_ci = ci
                                                cand_cid = scid
                                        wait_cycles = None
                                        for ci in cores_by_size[size_kb]:
                                            rem = (
                                                busy_until[ci] - now
                                                if cur_job[ci] >= 0
                                                else 0
                                            )
                                            if rem < 0:
                                                rem = 0
                                            if (
                                                wait_cycles is None
                                                or rem < wait_cycles
                                            ):
                                                wait_cycles = rem
                                        stall_energy = (
                                            eb[best_cid][3]
                                            + wait_cycles
                                            * cfg_static[cur_cfg[cand_ci]]
                                        )
                                        if (
                                            stall_energy
                                            <= eb[cand_cid][3]
                                        ):
                                            stall_decisions += 1
                                            scan_stalled.add(b)
                                            continue
                                        non_best_decisions += 1
                                        non_best_pending = True
                                        assignment = (
                                            cand_ci, cand_cid,
                                            False, False,
                                        )

                        # ---- power gate ----------------------------
                        # Verbatim fast-engine gate (see repro.sim.fast
                        # for the arithmetic notes).
                        dvfs_point = None
                        if pool is not None:
                            ci, cid, prof, tun = assignment
                            entry = est[b][cid]
                            if entry is None:
                                store.estimate(
                                    bench_names[b], cfg_objs[cid]
                                )
                            tot_cycles, dyn, sta, _ = entry
                            fraction = remaining[jid]
                            if fraction == 1.0:
                                g_dyn = dyn
                                g_sta = sta
                            else:
                                g_dyn = dyn * fraction
                                g_sta = sta * fraction
                            dvfs_point = nominal_point
                            price = g_dyn + g_sta
                            csize = core_sizes[ci]
                            if not pool.affordable(price, csize):
                                eb = est[b]
                                cfg_ladder = (
                                    (cid,) if prof or tun
                                    else core_cfg_ids[ci]
                                )
                                options = (
                                    (None,) if dvfs_points is None
                                    else dvfs_points
                                )
                                candidates = []
                                rank = 0
                                for ccid in cfg_ladder:
                                    centry = eb[ccid]
                                    if centry is None:
                                        rank += n_points
                                        continue
                                    ctot, cdyn, csta, _ = centry
                                    if fraction == 1.0:
                                        cwork0 = ctot
                                        cd0 = cdyn
                                        cs0 = csta
                                    else:
                                        cwork0 = int(
                                            round(ctot * fraction)
                                        )
                                        if cwork0 < 1:
                                            cwork0 = 1
                                        cd0 = cdyn * fraction
                                        cs0 = csta * fraction
                                    for option in options:
                                        if (
                                            option is None
                                            or option.is_nominal
                                        ):
                                            cwork = cwork0
                                            cd = cd0
                                            cs = cs0
                                        else:
                                            cwork = int(round(
                                                cwork0
                                                / option.freq_scale
                                            ))
                                            if cwork < 1:
                                                cwork = 1
                                            cd = cd0 * option.dyn_factor
                                            cs = (
                                                cs0
                                                * option.static_factor
                                            )
                                        candidates.append((
                                            cd + cs, cwork, rank,
                                            (ccid, option),
                                        ))
                                        rank += 1
                                chosen = pick_degraded(
                                    pool, csize, price, candidates,
                                    now=now,
                                    arrival_cycle=jarr[jid],
                                    deadline_cycle=jdl[jid],
                                    slack_pct=slack_pct,
                                )
                                if chosen is not None:
                                    dcid, option = chosen
                                    pool.degraded += 1
                                    dvfs_point = option
                                    assignment = (ci, dcid, prof, tun)
                                elif pool.idle():
                                    pool.overdrafts += 1
                                else:
                                    pool.throttled += 1
                                    continue

                        # ---- job start -----------------------------
                        del queue[jid]
                        view = None
                        ci, cid, prof, tun = assignment
                        prev = cur_cfg[ci]
                        if cid != prev:
                            cost_cyc = recfg_cycles_from[prev]
                            cost_nj = recfg_nj_from[prev]
                            # Fold the closed residency interval into
                            # the per-power idle ledger right away
                            # (bit-identical to the batch engine's
                            # end-of-run walk: integer sums are exact,
                            # and first-seen power order is
                            # chronological in both).
                            idle_cycles = (
                                (now - res_start[ci]) - res_busy[ci]
                            )
                            if idle_cycles < 0:
                                raise RuntimeError(
                                    f"core {ci} busy beyond its "
                                    "residency interval"
                                )
                            power = cfg_static[prev]
                            pp = per_power[ci]
                            pp[power] = (
                                pp.get(power, 0) + idle_cycles
                            )
                            res_start[ci] = now
                            res_busy[ci] = 0
                            cur_cfg[ci] = cid
                            recfg_count[ci] += 1
                            recfg_cycles_core[ci] += cost_cyc
                            recfg_nj_core[ci] += cost_nj
                        else:
                            cost_cyc = 0
                            cost_nj = 0.0
                        reconfig_nj += cost_nj
                        reconfig_cycles += cost_cyc

                        entry = est[b][cid]
                        if entry is None:
                            store.estimate(
                                bench_names[b], cfg_objs[cid]
                            )
                        tot_cycles, dyn, sta, tot = entry
                        fraction = remaining[jid]
                        if not 0.0 < fraction <= 1.0:
                            raise RuntimeError(
                                f"job {jlab[jid]} has invalid "
                                f"remaining fraction {fraction}"
                            )
                        overhead_cycles = 0
                        overhead_nj = 0.0
                        if prof:
                            overhead_cycles = int(
                                round(tot_cycles * pof)
                            )
                            overhead_nj = tot * pof
                            profiling_overhead_nj += overhead_nj
                            profiling_executions += 1
                        if tun and fraction == 1.0:
                            tuning_executions += 1

                        if fraction == 1.0:
                            dynamic_charge = dyn
                            static_charge = sta
                            work = tot_cycles
                        else:
                            dynamic_charge = dyn * fraction
                            static_charge = sta * fraction
                            work = int(round(tot_cycles * fraction))
                            if work < 1:
                                work = 1
                        if pool is not None:
                            if (
                                dvfs_point is not None
                                and not dvfs_point.is_nominal
                            ):
                                work = int(round(
                                    work / dvfs_point.freq_scale
                                ))
                                if work < 1:
                                    work = 1
                                dynamic_charge = (
                                    dynamic_charge
                                    * dvfs_point.dyn_factor
                                )
                                static_charge = (
                                    static_charge
                                    * dvfs_point.static_factor
                                )
                            pool.grant(
                                jlab[jid],
                                dynamic_charge + static_charge,
                                core_sizes[ci],
                            )
                            core_dvfs[ci] = (
                                None if dvfs_point is None
                                else dvfs_point.name
                            )
                        dynamic_nj += dynamic_charge
                        busy_static_nj += static_charge
                        charged[jid] += dynamic_charge + static_charge
                        service = work + cost_cyc + overhead_cycles
                        if jstart[jid] is None:
                            jstart[jid] = now
                        enq = last_enq[jid]
                        waiting[jid] += now - (
                            enq if enq is not None else jarr[jid]
                        )
                        last_enq[jid] = None
                        cur_job[ci] = jid
                        n_busy += 1
                        run_started[ci] = now
                        busy_until[ci] = now + service
                        busy_cycles[ci] += service
                        res_busy[ci] += service
                        execs[ci] += 1
                        epoch[ci] += 1

                        if prof:
                            cat = 0
                        elif tun:
                            cat = 1
                        elif non_best_pending:
                            cat = 2
                        else:
                            cat = 3
                        non_best_pending = False

                        pending[ci] = (
                            jid, cid, prof, tun, fraction,
                            dynamic_charge, static_charge, overhead_nj,
                            tot_cycles, tot, cat,
                        )
                        heappush(
                            comp_heap,
                            (now + service, seq, ci, epoch[ci]),
                        )
                        seq += 1
                        if seq == tr_start_next:
                            tr_start_next += tr_every
                            tel.emit_dispatch(
                                cycle=now, job_id=jlab[jid],
                                core_index=ci,
                                benchmark=bench_names[b],
                                category=_CATEGORIES[cat],
                                dynamic_nj=dynamic_charge,
                                static_nj=static_charge,
                                overhead_nj=overhead_nj,
                                service_cycles=service,
                            )
                        assigned = True
                        break  # core states changed; rescan
                    if assigned:
                        continue

                if not preemptive:
                    break
                if preempted_now_cycle != now:
                    preempted_now_cycle = now
                    preempted_now.clear()
                running = []
                for ci in core_range:
                    vj = cur_job[ci]
                    if (
                        vj >= 0
                        and jlab[vj] not in preempted_now
                        and not pending[ci][2]
                        and busy_until[ci] > now
                        and now - run_started[ci] >= quantum
                        and busy_until[ci] - now >= quantum
                    ):
                        running.append(ci)
                if not running:
                    break
                victim_ci = -1
                victim_urgency = 0.0
                for ci in running:
                    u = urgency[cur_job[ci]]
                    if victim_ci < 0 or u < victim_urgency:
                        victim_ci = ci
                        victim_urgency = u
                if fifo:
                    v = queue
                elif view is not None:
                    v = view
                else:
                    v = view = sorted(queue, key=sort_key.__getitem__)
                preempted = False
                for jid in v:
                    if urgency[jid] <= victim_urgency:
                        continue
                    (vjid, _, _, _, fraction_at_start, dync, stac,
                     ovhc, _, _, _) = pending[victim_ci]
                    pending[victim_ci] = None
                    service = (
                        busy_until[victim_ci] - run_started[victim_ci]
                    )
                    ran = now - run_started[victim_ci]
                    fraction_run = ran / service if service else 0.0
                    unused = busy_until[victim_ci] - now
                    busy_cycles[victim_ci] -= unused
                    res_busy[victim_ci] -= unused
                    cur_job[victim_ci] = -1
                    n_busy -= 1
                    busy_until[victim_ci] = now
                    epoch[victim_ci] += 1
                    preempted_now.add(jlab[vjid])
                    preemption_count += 1
                    refund = 1.0 - fraction_run
                    refund_dynamic = dync * refund
                    refund_static = stac * refund
                    refund_overhead = ovhc * refund
                    dynamic_nj -= refund_dynamic
                    busy_static_nj -= refund_static
                    profiling_overhead_nj -= refund_overhead
                    charged[vjid] -= refund_dynamic + refund_static
                    if pool is not None:
                        pool.refund(
                            jlab[vjid], refund_dynamic + refund_static
                        )
                    remaining[vjid] = (
                        fraction_at_start * (1.0 - fraction_run)
                    )
                    jpre[vjid] += 1
                    last_enq[vjid] = now
                    queue[vjid] = True
                    view = None
                    enqueued_total += 1
                    if len(queue) > max_queue_len:
                        max_queue_len = len(queue)
                    preempted = True
                    break
                if not preempted:
                    break

        # -- write scalars (and rebound buffers) back -------------------
        if abuf_i:
            abuf = abuf[abuf_i:]
            atimes = atimes[abuf_i:]
        s["abuf"] = abuf
        s["atimes"] = atimes
        s["abuf_i"] = 0
        s["deferred"] = deferred
        s["gen_done"] = gen_done
        s["now"] = now
        s["seq"] = seq
        s["processed"] = processed
        s["n_busy"] = n_busy
        s["enqueued_total"] = enqueued_total
        s["max_queue_len"] = max_queue_len
        s["dynamic_nj"] = dynamic_nj
        s["busy_static_nj"] = busy_static_nj
        s["reconfig_nj"] = reconfig_nj
        s["reconfig_cycles"] = reconfig_cycles
        s["profiling_overhead_nj"] = profiling_overhead_nj
        s["stall_decisions"] = stall_decisions
        s["non_best_decisions"] = non_best_decisions
        s["tuning_executions"] = tuning_executions
        s["profiling_executions"] = profiling_executions
        s["preemption_count"] = preemption_count
        s["non_best_pending"] = non_best_pending
        s["preempted_now_cycle"] = preempted_now_cycle
        s["generated"] = generated
        s["admitted"] = admitted
        s["completed"] = completed
        s["dropped"] = dropped
        s["shed"] = shed
        s["forced"] = forced
        s["blocked_cycles"] = blocked_cycles
        s["observed"] = observed
        s["makespan"] = makespan
        s["last_arrival_cycle"] = last_arrival_cycle
        if not more and queue:
            raise RuntimeError(
                f"stream drained with {len(queue)} jobs still queued"
            )
        return more

    DISC_IDS = {"fifo": 0, "priority": 1, "edf": 2}

    # -- result assembly -----------------------------------------------------

    def result(self) -> StreamResult:
        """Summarise a finished run (raises while events remain)."""
        s = self._s
        if s is None:
            raise RuntimeError("call start() or restore() first")
        if not self.finished:
            raise RuntimeError(
                "the stream still has pending events; advance() to "
                "completion before asking for the result"
            )
        f = self.f
        cfg_static = f.cfg_static_nj
        makespan = s["makespan"]
        res_start = s["res_start"]
        res_busy = s["res_busy"]
        cur_cfg = s["cur_cfg"]
        # Close each core's open residency interval against the
        # makespan — on a (copied) ledger, so result() is idempotent —
        # then multiply-accumulate in first-seen power order, exactly
        # the batch engine's walk.
        idle_nj = 0.0
        for ci in range(f.n_cores):
            pp = dict(s["per_power"][ci])
            idle_cycles = (makespan - res_start[ci]) - res_busy[ci]
            if idle_cycles < 0:  # pragma: no cover - invariant
                raise RuntimeError(
                    f"{f.core_names[ci]} busy beyond the makespan"
                )
            power = cfg_static[cur_cfg[ci]]
            pp[power] = pp.get(power, 0) + idle_cycles
            for power, cycles in pp.items():
                idle_nj += cycles * power

        dynamic_total = (
            s["dynamic_nj"]
            + s["reconfig_nj"]
            + s["profiling_overhead_nj"]
        )
        core_busy = {}
        for ci in range(f.n_cores):
            core_busy[ci] = s["busy_cycles"][ci]

        sim_result = None
        if self.config.retain_jobs:
            sim_result = self._assemble_sim_result(idle_nj, core_busy)

        config = self.config
        return StreamResult(
            policy=f.policy.name,
            discipline=f.discipline,
            admission=config.admission,
            queue_capacity=config.queue_capacity,
            warmup_cycles=config.warmup_cycles,
            jobs_generated=s["generated"],
            jobs_admitted=s["admitted"],
            jobs_completed=s["completed"],
            jobs_dropped=s["dropped"],
            jobs_shed=s["shed"],
            forced_admissions=s["forced"],
            blocked_cycles=s["blocked_cycles"],
            observed_jobs=s["observed"],
            makespan_cycles=makespan,
            idle_energy_nj=idle_nj,
            dynamic_energy_nj=dynamic_total,
            busy_static_energy_nj=s["busy_static_nj"],
            reconfig_energy_nj=s["reconfig_nj"],
            profiling_overhead_nj=s["profiling_overhead_nj"],
            reconfig_cycles=s["reconfig_cycles"],
            stall_decisions=s["stall_decisions"],
            non_best_decisions=s["non_best_decisions"],
            tuning_executions=s["tuning_executions"],
            profiling_executions=s["profiling_executions"],
            preemption_count=s["preemption_count"],
            enqueued_total=s["enqueued_total"],
            max_queue_len=s["max_queue_len"],
            core_busy_cycles=core_busy,
            waiting=self._wait_hist.snapshot(),
            turnaround=self._turn_hist.snapshot(),
            sim_result=sim_result,
            power=(
                None
                if f._power_pool is None
                else {
                    "granted_nj": f._power_pool.granted_nj,
                    "refunded_nj": f._power_pool.refunded_nj,
                    "consumed_nj": f._power_pool.consumed_nj,
                    "grants": f._power_pool.grants,
                    "refunds": f._power_pool.refunds,
                    "throttled": f._power_pool.throttled,
                    "degraded": f._power_pool.degraded,
                    "overdrafts": f._power_pool.overdrafts,
                }
            ),
        )

    def _assemble_sim_result(
        self, idle_nj: float, core_busy: Dict[int, int]
    ) -> SimulationResult:
        """The closed-batch result (retain mode), fast-engine-shaped."""
        s = self._s
        f = self.f
        jlab = s["jlab"]
        jbid = s["jbid"]
        jarr = s["jarr"]
        jstart = s["jstart"]
        jcomp = s["jcomp"]
        jprio = s["jprio"]
        jdl = s["jdl"]
        jpre = s["jpre"]
        waiting = s["waiting"]
        charged = s["charged"]
        bench_names = f.bench_names
        cfg_names = f.cfg_names
        new_record = JobRecord.__new__
        job_records = []
        for jid, ci, cid, prof, tun in s["records"]:
            record = new_record(JobRecord)
            record.__dict__.update({
                "job_id": jlab[jid],
                "benchmark": bench_names[jbid[jid]],
                "arrival_cycle": jarr[jid],
                "start_cycle": jstart[jid],
                "completion_cycle": jcomp[jid],
                "core_index": ci,
                "config_name": cfg_names[cid],
                "profiled": prof,
                "tuning": tun,
                "energy_nj": charged[jid],
                "priority": jprio[jid],
                "deadline_cycle": jdl[jid],
                "preemptions": jpre[jid],
                "waiting_cycles": waiting[jid],
            })
            job_records.append(record)
        predictions = {}
        exploration_counts = {}
        pred_raw = f.pred_raw
        executed = f.executed
        for b in f.touch_order:
            if pred_raw[b] is not None:
                predictions[bench_names[b]] = pred_raw[b]
            exploration_counts[bench_names[b]] = len(executed[b])
        return SimulationResult(
            policy=f.policy.name,
            jobs_completed=len(job_records),
            makespan_cycles=s["makespan"],
            idle_energy_nj=idle_nj,
            dynamic_energy_nj=(
                s["dynamic_nj"]
                + s["reconfig_nj"]
                + s["profiling_overhead_nj"]
            ),
            busy_static_energy_nj=s["busy_static_nj"],
            reconfig_energy_nj=s["reconfig_nj"],
            profiling_overhead_nj=s["profiling_overhead_nj"],
            reconfig_cycles=s["reconfig_cycles"],
            stall_decisions=s["stall_decisions"],
            non_best_decisions=s["non_best_decisions"],
            tuning_executions=s["tuning_executions"],
            profiling_executions=s["profiling_executions"],
            preemption_count=s["preemption_count"],
            core_busy_cycles=core_busy,
            exploration_counts=exploration_counts,
            predictions_kb=predictions,
            jobs=job_records,
        )

    # -- checkpoint / resume -------------------------------------------------

    def _fingerprint(self) -> dict:
        """Compatibility key a snapshot embeds and restore() verifies."""
        f = self.f
        return {
            "policy": f.policy.name,
            "discipline": f.discipline,
            "preemptive": f.preemptive,
            "preemption_quantum_cycles": f.preemption_quantum_cycles,
            "profiling_overhead_fraction": f.profiling_overhead_fraction,
            "core_sizes": list(f.core_sizes),
            "benchmarks": list(f.bench_names),
            "config": asdict(self.config),
            "process": self.process.params(),
            "power": None if f.power is None else f.power.to_dict(),
        }

    def snapshot(self) -> dict:
        """Versioned, JSON-serialisable image of the entire run state.

        Everything the event loop reads is captured — job slots, queue
        order, the completion heap, buffered arrivals, the arrival
        process's RNG, per-core state, the idle-energy ledger,
        knowledge state (profiling table, tuning sessions) and the P²
        accumulators — so restoring into a freshly constructed engine
        continues bit-identically.  Floats survive the JSON round trip
        exactly (repr-based serialisation).
        """
        s = self._s
        if s is None:
            raise RuntimeError("call start() or restore() first")
        f = self.f
        abuf_i = s["abuf_i"]
        engine = {
            "jbid": list(s["jbid"]),
            "jlab": list(s["jlab"]),
            "jarr": list(s["jarr"]),
            "jprio": list(s["jprio"]),
            "jdl": list(s["jdl"]),
            "jstart": list(s["jstart"]),
            "jcomp": list(s["jcomp"]),
            "remaining": list(s["remaining"]),
            "jpre": list(s["jpre"]),
            "last_enq": list(s["last_enq"]),
            "waiting": list(s["waiting"]),
            "charged": list(s["charged"]),
            "urgency": list(s["urgency"]),
            "sortkey": list(s["sortkey"]),
            "free_slots": list(s["free_slots"]),
            "records": [list(r) for r in s["records"]],
            "queue": list(s["queue"]),
            "comp_heap": [list(e) for e in s["comp_heap"]],
            "abuf": [_arrival_to_list(a) for a in s["abuf"][abuf_i:]],
            "deferred": (
                None
                if s["deferred"] is None
                else _arrival_to_list(s["deferred"])
            ),
            "gen_done": s["gen_done"],
            "cur_job": list(s["cur_job"]),
            "busy_until": list(s["busy_until"]),
            "busy_cycles": list(s["busy_cycles"]),
            "run_started": list(s["run_started"]),
            "epoch": list(s["epoch"]),
            "execs": list(s["execs"]),
            "cur_cfg": list(s["cur_cfg"]),
            "recfg_count": list(s["recfg_count"]),
            "recfg_cycles_core": list(s["recfg_cycles_core"]),
            "recfg_nj_core": list(s["recfg_nj_core"]),
            "res_start": list(s["res_start"]),
            "res_busy": list(s["res_busy"]),
            "pending": [
                None if p is None else list(p) for p in s["pending"]
            ],
            "per_power": [
                [[power, cycles] for power, cycles in pp.items()]
                for pp in s["per_power"]
            ],
            "preempted_now": sorted(s["preempted_now"]),
            "core_dvfs": list(s["core_dvfs"]),
            "power": (
                None
                if f._power_pool is None
                else f._power_pool.state_dict()
            ),
        }
        for key in self._SCALAR_KEYS:
            engine[key] = s[key]
        knowledge = {
            "profiled": list(f.profiled),
            "pred_raw": list(f.pred_raw),
            "pred_size": list(f.pred_size),
            "executed": [list(d) for d in f.executed],
            "best_known": [
                [[size, e, cid] for size, (e, cid) in d.items()]
                for d in f.best_known
            ],
            "tuned": [sorted(sizes) for sizes in f.tuned],
            "touched": list(f.touched),
            "touch_order": list(f.touch_order),
            "sessions": [
                [b, size_kb, _session_to_dict(session)]
                for (b, size_kb), session in f.sessions.items()
            ],
        }
        return {
            "version": STREAM_SNAPSHOT_VERSION,
            "fingerprint": self._fingerprint(),
            "process": self.process.state_dict(),
            "engine": engine,
            "knowledge": knowledge,
            "stats": {
                "waiting": self._wait_hist.state_dict(),
                "turnaround": self._turn_hist.state_dict(),
            },
            "telemetry": (
                None
                if self.telemetry is None
                else self.telemetry.state_dict()
            ),
        }

    _SCALAR_KEYS = (
        "now", "seq", "processed", "n_busy", "enqueued_total",
        "max_queue_len", "dynamic_nj", "busy_static_nj", "reconfig_nj",
        "reconfig_cycles", "profiling_overhead_nj", "stall_decisions",
        "non_best_decisions", "tuning_executions",
        "profiling_executions", "preemption_count", "non_best_pending",
        "preempted_now_cycle", "generated", "admitted", "completed",
        "dropped", "shed", "forced", "blocked_cycles", "observed",
        "makespan", "last_arrival_cycle",
    )

    def restore(self, snapshot: dict, process: ArrivalProcess) -> None:
        """Load a snapshot into this (freshly constructed) engine.

        The snapshot must carry the supported schema version and a
        fingerprint matching this engine's configuration and the given
        process's parameters — mismatches fail loudly rather than
        resuming a subtly different run.  ``process`` is rewound to the
        snapshot's RNG position.
        """
        if self._s is not None:
            raise RuntimeError(
                "restore() needs a freshly constructed engine"
            )
        version = snapshot.get("version")
        if version != STREAM_SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported stream snapshot version {version!r}; "
                f"this build reads version {STREAM_SNAPSHOT_VERSION}"
            )
        self.process = process
        expected = self._fingerprint()
        found = snapshot["fingerprint"]
        if found != expected:
            diff = [
                key
                for key in expected
                if found.get(key) != expected[key]
            ]
            raise ValueError(
                "snapshot fingerprint does not match this engine "
                f"configuration (differs in: {', '.join(diff)})"
            )
        process.load_state(snapshot["process"])

        engine = snapshot["engine"]
        abuf = [_arrival_from_list(x) for x in engine["abuf"]]
        state = {
            "jbid": list(engine["jbid"]),
            "jlab": list(engine["jlab"]),
            "jarr": list(engine["jarr"]),
            "jprio": list(engine["jprio"]),
            "jdl": list(engine["jdl"]),
            "jstart": list(engine["jstart"]),
            "jcomp": list(engine["jcomp"]),
            "remaining": list(engine["remaining"]),
            "jpre": list(engine["jpre"]),
            "last_enq": list(engine["last_enq"]),
            "waiting": list(engine["waiting"]),
            "charged": list(engine["charged"]),
            "urgency": list(engine["urgency"]),
            "sortkey": list(engine["sortkey"]),
            "free_slots": list(engine["free_slots"]),
            "records": [tuple(r) for r in engine["records"]],
            "queue": dict.fromkeys(engine["queue"], True),
            "comp_heap": [tuple(e) for e in engine["comp_heap"]],
            "abuf": abuf,
            "atimes": [a.arrival_cycle for a in abuf],
            "abuf_i": 0,
            "deferred": (
                None
                if engine["deferred"] is None
                else _arrival_from_list(engine["deferred"])
            ),
            "gen_done": engine["gen_done"],
            "cur_job": list(engine["cur_job"]),
            "busy_until": list(engine["busy_until"]),
            "busy_cycles": list(engine["busy_cycles"]),
            "run_started": list(engine["run_started"]),
            "epoch": list(engine["epoch"]),
            "execs": list(engine["execs"]),
            "cur_cfg": list(engine["cur_cfg"]),
            "recfg_count": list(engine["recfg_count"]),
            "recfg_cycles_core": list(engine["recfg_cycles_core"]),
            "recfg_nj_core": list(engine["recfg_nj_core"]),
            "res_start": list(engine["res_start"]),
            "res_busy": list(engine["res_busy"]),
            "pending": [
                None if p is None else tuple(p)
                for p in engine["pending"]
            ],
            "per_power": [
                {power: cycles for power, cycles in pairs}
                for pairs in engine["per_power"]
            ],
            "preempted_now": set(engine["preempted_now"]),
            "core_dvfs": list(engine["core_dvfs"]),
            "sess_state": [dict() for _ in self.f.bench_names],
        }
        for key in self._SCALAR_KEYS:
            state[key] = engine[key]
        self._s = state

        f = self.f
        if engine["power"] is not None:
            f._power_pool.load_state(engine["power"])
        knowledge = snapshot["knowledge"]
        f.profiled = list(knowledge["profiled"])
        f.pred_raw = list(knowledge["pred_raw"])
        f.pred_size = list(knowledge["pred_size"])
        f.executed = [
            dict.fromkeys(keys, True) for keys in knowledge["executed"]
        ]
        f.best_known = [
            {size: (energy, cid) for size, energy, cid in entries}
            for entries in knowledge["best_known"]
        ]
        f.tuned = [set(sizes) for sizes in knowledge["tuned"]]
        f.touched = list(knowledge["touched"])
        f.touch_order = list(knowledge["touch_order"])
        f.sessions = {
            (b, size_kb): _session_from_dict(session)
            for b, size_kb, session in knowledge["sessions"]
        }

        stats = snapshot["stats"]
        self._wait_hist.load_state(stats["waiting"])
        self._turn_hist.load_state(stats["turnaround"])

        tel_state = snapshot.get("telemetry")
        if tel_state is not None:
            if self.telemetry is None:
                raise ValueError(
                    "the snapshot carries telemetry state; attach a "
                    "matching Telemetry (e.g. --telemetry-out) before "
                    "resuming, or delete the telemetry files and the "
                    "checkpoint to start over"
                )
            # Truncate the output files back to the checkpointed byte
            # offsets, then reopen for append: the resumed stream
            # rewrites exactly the samples the kill discarded, so the
            # final files are byte-identical to an uninterrupted run.
            self.telemetry.load_state(tel_state)
        if self.telemetry is not None:
            self.telemetry.begin(self._telemetry_header())

    def write_checkpoint(self, path: str) -> None:
        """Atomically write :meth:`snapshot` as JSON to ``path``."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle)
        os.replace(tmp, path)
