"""Simulation validation: energy-conservation ledger + invariants.

The paper's headline claim (28 % total-energy reduction, Figure 4's
idle / busy-static / dynamic ledger) is an *accounting* statement, so
the reproduction carries an independent double-entry bookkeeper that
can prove a run's energy totals are conserved rather than trusting the
simulation's own accumulators:

* :mod:`repro.validate.ledger` — :class:`EnergyLedger` independently
  accrues every charge and refund (dispatch, reconfiguration,
  profiling overhead, preemption refunds, idle leakage per
  config-residency interval) and asserts at end of run that ledger
  totals equal the :class:`~repro.core.results.SimulationResult`
  totals and the per-job / per-core attribution sums;
* :mod:`repro.validate.invariants` — :class:`SimulationValidator`
  hooks runtime invariant checks (queue conservation, core/pending
  consistency, refund bounds, ``0 < remaining_fraction <= 1``) into a
  :class:`~repro.core.simulation.SchedulerSimulation` behind its
  ``validate=True`` flag;
* :mod:`repro.validate.replay` — replays a recorded JSONL trace
  against an event-sourced ledger (the CLI ``validate`` subcommand).

Violations raise :class:`ValidationError`; with tracing attached they
also emit an :class:`~repro.obs.events.InvariantViolation` event and
bump the ``sim.validate.*`` counters first, so a failing run leaves a
diagnosable trail.
"""

from .ledger import EnergyLedger, LedgerEntry, ValidationError
from .invariants import SimulationValidator
from .replay import ReplayReport, replay_trace

__all__ = [
    "EnergyLedger",
    "LedgerEntry",
    "ReplayReport",
    "SimulationValidator",
    "ValidationError",
    "replay_trace",
]
