"""Runtime invariant checks for a running scheduler simulation.

:class:`SimulationValidator` is attached by
``SchedulerSimulation(..., validate=True)``.  The simulation calls its
hooks at every accounting event; the validator mirrors each charge into
an :class:`~repro.validate.ledger.EnergyLedger` and, after every engine
event, re-derives the structural invariants from the live state:

* **queue conservation** — ``arrived == completed + queued + running``;
* **core/pending consistency** — a core holds a job *iff* the
  simulation has a pending execution for it, the two agree on which
  job, and an occupied core's ``busy_until`` lies in the future;
* **refund bounds** — preemption refunds are non-negative and never
  exceed what the execution was charged;
* **fraction bounds** — every dispatch and every requeued victim
  satisfies ``0 < remaining_fraction <= 1``;
* **core liveness** — no dispatch to, and no occupancy of, a core
  inside a fault-injected failure window (``invariant.core_down``).

A violated invariant raises
:class:`~repro.validate.ledger.ValidationError`; when the simulation
carries a recorder/metrics registry, an
:class:`~repro.obs.events.InvariantViolation` event is emitted and the
``sim.validate.violations`` counter bumped *before* the raise, so the
trace of a failing run ends with the reason.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import InvariantViolation

from .ledger import EnergyLedger, ValidationError, _close

__all__ = ["SimulationValidator"]


class SimulationValidator:
    """Ledger + invariant harness for one simulation run."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.ledger = EnergyLedger()
        self.arrived = 0
        self.completed = 0
        self.checks = 0
        self.violations = 0

    # -- violation funnel ----------------------------------------------------

    def _violate(
        self,
        check: str,
        detail: str,
        *,
        job_id: Optional[int] = None,
        core_index: Optional[int] = None,
    ) -> None:
        self._record_violation(check, detail, job_id, core_index)
        raise ValidationError(check, detail)

    def _record_violation(
        self, check, detail, job_id=None, core_index=None
    ) -> None:
        self.violations += 1
        sim = self.sim
        if sim.metrics is not None:
            sim.metrics.counter("sim.validate.violations").inc()
        if sim.recorder.enabled:
            sim.recorder.emit(InvariantViolation(
                cycle=sim.now, check=check, detail=detail,
                job_id=job_id, core_index=core_index,
            ))

    # -- accounting hooks (mirror every charge into the ledger) --------------

    def on_arrival(self, job) -> None:
        self.arrived += 1

    def on_dispatch(
        self,
        job,
        core,
        *,
        dynamic_nj,
        static_nj,
        overhead_nj,
        reconfig_nj,
        token_nj=None,
    ) -> None:
        if core.failed:
            self._violate(
                "invariant.core_down",
                f"job {job.job_id} dispatched to core {core.index} inside "
                "a failure window",
                job_id=job.job_id, core_index=core.index,
            )
        fraction = job.remaining_fraction
        if not 0.0 < fraction <= 1.0:
            self._violate(
                "invariant.fraction",
                f"job {job.job_id} dispatched with remaining_fraction "
                f"{fraction!r} outside (0, 1]",
                job_id=job.job_id, core_index=core.index,
            )
        try:
            self.ledger.post_dispatch(
                self.sim.now, job.job_id, core.index,
                dynamic_nj=dynamic_nj, static_nj=static_nj,
                overhead_nj=overhead_nj, reconfig_nj=reconfig_nj,
                token_nj=token_nj,
            )
        except ValidationError as error:
            self._record_violation(
                error.check, error.detail,
                job_id=job.job_id, core_index=core.index,
            )
            raise

    def on_preempt(
        self,
        victim,
        core,
        *,
        fraction_run,
        refund_dynamic_nj,
        refund_static_nj,
        refund_overhead_nj,
        token_nj=None,
    ) -> None:
        if not 0.0 <= fraction_run < 1.0:
            self._violate(
                "invariant.fraction",
                f"job {victim.job_id} preempted with fraction_run "
                f"{fraction_run!r} outside [0, 1)",
                job_id=victim.job_id, core_index=core.index,
            )
        if not 0.0 < victim.remaining_fraction <= 1.0:
            self._violate(
                "invariant.fraction",
                f"job {victim.job_id} requeued with remaining_fraction "
                f"{victim.remaining_fraction!r} outside (0, 1]",
                job_id=victim.job_id, core_index=core.index,
            )
        if min(refund_dynamic_nj, refund_static_nj, refund_overhead_nj) < 0:
            self._violate(
                "invariant.refund",
                f"job {victim.job_id}: negative refund "
                f"(dynamic={refund_dynamic_nj}, static={refund_static_nj}, "
                f"overhead={refund_overhead_nj})",
                job_id=victim.job_id, core_index=core.index,
            )
        try:
            self.ledger.post_refund(
                self.sim.now, victim.job_id, core.index,
                dynamic_nj=refund_dynamic_nj,
                static_nj=refund_static_nj,
                overhead_nj=refund_overhead_nj,
                token_nj=token_nj,
            )
        except ValidationError as error:
            self._record_violation(
                error.check, error.detail,
                job_id=victim.job_id, core_index=core.index,
            )
            raise

    def on_complete(self, job, core_index: int) -> None:
        self.completed += 1
        if job.remaining_fraction != 0.0:
            self._violate(
                "invariant.fraction",
                f"job {job.job_id} completed with remaining_fraction "
                f"{job.remaining_fraction!r} != 0",
                job_id=job.job_id, core_index=core_index,
            )

    # -- structural invariants (run after every engine event) ----------------

    def after_event(self) -> None:
        sim = self.sim
        self.checks += 1
        queued = len(sim.queue)
        running = len(sim._pending)
        if self.arrived != self.completed + queued + running:
            self._violate(
                "invariant.queue",
                f"cycle {sim.now}: arrived {self.arrived} != completed "
                f"{self.completed} + queued {queued} + running {running}",
            )
        for core in sim.cores:
            pending = sim._pending.get(core.index)
            if core.current_job is None:
                if pending is not None:
                    self._violate(
                        "invariant.core",
                        f"core {core.index} is idle but job "
                        f"{pending.job.job_id} is still pending on it",
                        core_index=core.index,
                    )
            else:
                if core.failed:
                    self._violate(
                        "invariant.core_down",
                        f"core {core.index} is down but still runs job "
                        f"{core.current_job.job_id}",
                        core_index=core.index,
                    )
                if pending is None:
                    self._violate(
                        "invariant.core",
                        f"core {core.index} runs job "
                        f"{core.current_job.job_id} without a pending "
                        "execution",
                        core_index=core.index,
                    )
                elif pending.job is not core.current_job:
                    self._violate(
                        "invariant.core",
                        f"core {core.index} runs job "
                        f"{core.current_job.job_id} but job "
                        f"{pending.job.job_id} is pending on it",
                        core_index=core.index,
                    )
                elif core.busy_until < sim.now:
                    # busy_until == now is legal transiently: the
                    # completion event may still be queued at this
                    # timestamp.
                    self._violate(
                        "invariant.core",
                        f"core {core.index} is occupied past its release "
                        f"time (busy_until {core.busy_until} < now "
                        f"{sim.now})",
                        core_index=core.index,
                    )

    # -- end of run ----------------------------------------------------------

    def finish(self, result, makespan: int) -> None:
        """Close the ledger over residencies and run every total check."""
        sim = self.sim
        if self.completed != self.arrived:
            self._violate(
                "invariant.queue",
                f"run drained with {self.arrived} arrivals but "
                f"{self.completed} completions",
            )
        try:
            self.ledger.close_idle(
                sim.cores,
                makespan,
                lambda config: sim.energy_table.get(
                    config
                ).static_per_cycle_nj,
            )
            self.ledger.check(result)
            self._check_power_pool()
        except ValidationError as error:
            self._record_violation(error.check, error.detail)
            raise
        finally:
            if sim.metrics is not None:
                sim.metrics.counter("sim.validate.checks").inc(self.checks)

    def _check_power_pool(self) -> None:
        """Cross-check the token pool against the ledger's token account.

        At drain every grant must have been consumed or refunded (the
        pool holds nothing), and the pool's running grant/refund totals
        must equal the ledger's independently-accumulated sums exactly:
        both sides append the same floats, so any divergence is a leak,
        a double-refund, or a dispatch that bypassed the gate.
        """
        pool = getattr(self.sim, "power_pool", None)
        if pool is None:
            return
        if not pool.idle():
            self._violate(
                "token.pool",
                f"run drained with {len(pool._held)} grant(s) still held "
                f"({pool.outstanding_nj} nJ outstanding)",
            )
        if pool.grants != len(self.ledger.token_grants):
            self._violate(
                "token.pool",
                f"pool issued {pool.grants} grant(s) but the ledger "
                f"recorded {len(self.ledger.token_grants)}",
            )
        if pool.refunds != len(self.ledger.token_refunds):
            self._violate(
                "token.pool",
                f"pool issued {pool.refunds} refund(s) but the ledger "
                f"recorded {len(self.ledger.token_refunds)}",
            )
        if not _close(pool.granted_nj, self.ledger.token_granted_nj):
            self._violate(
                "token.pool",
                f"pool granted {pool.granted_nj} nJ but ledger recorded "
                f"{self.ledger.token_granted_nj} nJ",
            )
        if not _close(pool.refunded_nj, self.ledger.token_refunded_nj):
            self._violate(
                "token.pool",
                f"pool refunded {pool.refunded_nj} nJ but ledger recorded "
                f"{self.ledger.token_refunded_nj} nJ",
            )
