"""Double-entry energy-conservation ledger.

The :class:`EnergyLedger` is an *independent* bookkeeper for one
simulation run: every charge and refund the simulation makes is posted
here too, attributed simultaneously to the run's totals, to the job it
serves and to the core it runs on.  At end of run :meth:`check`
asserts three mutually-redundant views agree:

1. ledger category totals == the ``SimulationResult`` totals
   (idle / busy static / dynamic-plus-overheads, and their sum);
2. the per-job attributions sum to the execution charges
   (dynamic + busy static net of preemption refunds), and each
   completed job's attribution equals its ``JobRecord.energy_nj``;
3. the per-core attributions (execution charges + reconfiguration +
   profiling overhead + idle leakage) sum to the grand total.

Idle leakage is accrued per config-residency interval
(:meth:`~repro.core.scheduler.CoreState.residency_intervals`): a core
that reconfigured mid-run leaks at the static power of whichever
configuration was *installed* during each idle stretch.  Within a core
the idle cycles are grouped by static power before multiplying, which
both avoids needless float drift and reproduces the simulation's own
arithmetic bit-for-bit.

Comparisons use an ULP-scale relative tolerance
(:data:`REL_TOLERANCE`): the ledger receives the same IEEE-754 values
the simulation accumulates, in the same order, so totals agree exactly
except for benign re-association in the per-job/per-core regroupings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["EnergyLedger", "LedgerEntry", "ValidationError", "REL_TOLERANCE"]

#: Relative tolerance of the conservation checks.  Totals are sums of
#: thousands of nJ-scale doubles; 2**-40 relative (~1e-12) admits only
#: re-association noise, never a lost or double-counted charge.
REL_TOLERANCE = 2.0 ** -40

#: Absolute floor (nJ) under which differences are ignored — guards the
#: all-zero corner (empty refunds, zero-cost reconfigurations).
ABS_TOLERANCE = 1e-6


class ValidationError(AssertionError):
    """An energy-conservation or runtime invariant was violated.

    Subclasses ``AssertionError`` so a validated run fails loudly under
    test harnesses while remaining a distinct, catchable type.
    """

    def __init__(self, check: str, detail: str) -> None:
        super().__init__(f"{check}: {detail}")
        self.check = check
        self.detail = detail


@dataclass(frozen=True)
class LedgerEntry:
    """One posted charge (positive) or refund (negative amounts).

    ``kind`` is one of ``dispatch``, ``refund`` or ``idle``; dispatch
    entries may also carry reconfiguration energy (the tuner runs at
    dispatch time).
    """

    cycle: int
    kind: str
    job_id: Optional[int]
    core_index: Optional[int]
    dynamic_nj: float = 0.0
    static_nj: float = 0.0
    overhead_nj: float = 0.0
    reconfig_nj: float = 0.0
    idle_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        """Signed sum of every component of the entry."""
        return (
            self.dynamic_nj
            + self.static_nj
            + self.overhead_nj
            + self.reconfig_nj
            + self.idle_nj
        )


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE)


class EnergyLedger:
    """Independent double-entry accrual of one run's energy flows.

    Parameters
    ----------
    keep_entries:
        Retain every posted :class:`LedgerEntry` (diagnostics, tests).
        Off by default: the running totals alone are enough for the
        conservation checks, and long runs post one entry per dispatch.
    """

    def __init__(self, *, keep_entries: bool = False) -> None:
        self.entries: List[LedgerEntry] = []
        self._keep = keep_entries
        # Category totals (the result's decomposition).
        self.dynamic_nj = 0.0
        self.busy_static_nj = 0.0
        self.overhead_nj = 0.0
        self.reconfig_nj = 0.0
        self.idle_nj = 0.0
        # Attribution views.
        self.per_job_nj: Dict[int, float] = {}
        self.per_core_nj: Dict[int, float] = {}
        self.dispatches = 0
        self.refunds = 0
        self.closed = False
        # Token account (power axis): every posted grant and refund is
        # kept as an entry so conservation sums use math.fsum — the
        # 2**-40 check must not inherit running-sum drift.  Empty lists
        # (power off) cost nothing and disable the token checks.
        self.token_grants: List[float] = []
        self.token_refunds: List[float] = []

    # -- posting -------------------------------------------------------------

    def post_dispatch(
        self,
        cycle: int,
        job_id: int,
        core_index: int,
        *,
        dynamic_nj: float,
        static_nj: float,
        overhead_nj: float = 0.0,
        reconfig_nj: float = 0.0,
        token_nj: Optional[float] = None,
    ) -> None:
        """Record an execution start's charges (pro-rata for resumes).

        ``token_nj`` is the power-token grant backing this dispatch
        (``None`` when the power axis is off).  A granted dispatch must
        spend exactly its dynamic+static charge — the budget is priced
        from the same floats — so the grant is checked against the
        charges here and enters the token account for the end-of-run
        conservation check.
        """
        self._require_open()
        for name, value in (
            ("dynamic_nj", dynamic_nj),
            ("static_nj", static_nj),
            ("overhead_nj", overhead_nj),
            ("reconfig_nj", reconfig_nj),
        ):
            if value < 0.0 or math.isnan(value):
                raise ValidationError(
                    "ledger.dispatch",
                    f"cycle {cycle} job {job_id}: {name}={value} "
                    "must be a non-negative number",
                )
        if token_nj is not None:
            if token_nj < 0.0 or math.isnan(token_nj):
                raise ValidationError(
                    "token.grant",
                    f"cycle {cycle} job {job_id}: token grant {token_nj} "
                    "must be a non-negative number",
                )
            if token_nj != dynamic_nj + static_nj:
                raise ValidationError(
                    "token.grant",
                    f"cycle {cycle} job {job_id}: granted {token_nj!r} nJ "
                    f"of tokens for {dynamic_nj + static_nj!r} nJ of "
                    "execution charges (the budget must spend exactly "
                    "the dispatch's dynamic+static price)",
                )
            self.token_grants.append(token_nj)
        elif self.token_grants:
            raise ValidationError(
                "token.grant",
                f"cycle {cycle} job {job_id}: dispatch carried no token "
                "grant although the power axis granted earlier dispatches",
            )
        self.dynamic_nj += dynamic_nj
        self.busy_static_nj += static_nj
        self.overhead_nj += overhead_nj
        self.reconfig_nj += reconfig_nj
        # Job attribution covers the execution's own energy; system
        # overheads (tuner, counter readout) attribute to the core only.
        self.per_job_nj[job_id] = (
            self.per_job_nj.get(job_id, 0.0) + (dynamic_nj + static_nj)
        )
        self.per_core_nj[core_index] = (
            self.per_core_nj.get(core_index, 0.0)
            + (dynamic_nj + static_nj + overhead_nj + reconfig_nj)
        )
        self.dispatches += 1
        if self._keep:
            self.entries.append(LedgerEntry(
                cycle=cycle, kind="dispatch", job_id=job_id,
                core_index=core_index, dynamic_nj=dynamic_nj,
                static_nj=static_nj, overhead_nj=overhead_nj,
                reconfig_nj=reconfig_nj,
            ))

    def post_refund(
        self,
        cycle: int,
        job_id: int,
        core_index: int,
        *,
        dynamic_nj: float,
        static_nj: float,
        overhead_nj: float = 0.0,
        token_nj: Optional[float] = None,
    ) -> None:
        """Record a preemption's pro-rata refund (amounts are positive).

        ``token_nj`` is the power-token refund (``None`` when the power
        axis is off); it must equal the dynamic+static refund exactly —
        tokens return through the same floats the energy path refunds.
        """
        self._require_open()
        for name, value in (
            ("dynamic_nj", dynamic_nj),
            ("static_nj", static_nj),
            ("overhead_nj", overhead_nj),
        ):
            if value < 0.0 or math.isnan(value):
                raise ValidationError(
                    "ledger.refund",
                    f"cycle {cycle} job {job_id}: refund {name}={value} "
                    "must be a non-negative number",
                )
        if token_nj is not None:
            if token_nj != dynamic_nj + static_nj:
                raise ValidationError(
                    "token.refund",
                    f"cycle {cycle} job {job_id}: refunded {token_nj!r} nJ "
                    f"of tokens for {dynamic_nj + static_nj!r} nJ of "
                    "refunded execution charges",
                )
            if not self.token_grants:
                raise ValidationError(
                    "token.refund",
                    f"cycle {cycle} job {job_id}: token refund without any "
                    "prior token grant",
                )
            self.token_refunds.append(token_nj)
        elif self.token_grants:
            raise ValidationError(
                "token.refund",
                f"cycle {cycle} job {job_id}: preemption refunded no "
                "tokens although the power axis granted dispatches",
            )
        charged = self.per_job_nj.get(job_id, 0.0)
        refunded = dynamic_nj + static_nj
        if refunded > charged and not _close(refunded, charged):
            raise ValidationError(
                "ledger.refund",
                f"cycle {cycle} job {job_id}: refund {refunded} nJ exceeds "
                f"the {charged} nJ charged so far",
            )
        self.dynamic_nj -= dynamic_nj
        self.busy_static_nj -= static_nj
        self.overhead_nj -= overhead_nj
        self.per_job_nj[job_id] = charged - refunded
        self.per_core_nj[core_index] = (
            self.per_core_nj.get(core_index, 0.0)
            - (dynamic_nj + static_nj + overhead_nj)
        )
        self.refunds += 1
        if self._keep:
            self.entries.append(LedgerEntry(
                cycle=cycle, kind="refund", job_id=job_id,
                core_index=core_index, dynamic_nj=-dynamic_nj,
                static_nj=-static_nj, overhead_nj=-overhead_nj,
            ))

    def post_idle(
        self, core_index: int, idle_cycles: int, power_nj_per_cycle: float
    ) -> None:
        """Accrue one idle-leakage lot (cycles at one static power)."""
        self._require_open()
        if idle_cycles < 0:
            raise ValidationError(
                "ledger.idle",
                f"core {core_index}: negative idle cycles {idle_cycles} "
                "(busy beyond its residency interval)",
            )
        energy = idle_cycles * power_nj_per_cycle
        self.idle_nj += energy
        self.per_core_nj[core_index] = (
            self.per_core_nj.get(core_index, 0.0) + energy
        )
        if self._keep:
            self.entries.append(LedgerEntry(
                cycle=0, kind="idle", job_id=None,
                core_index=core_index, idle_nj=energy,
            ))

    def close_idle(
        self,
        cores: Sequence,
        makespan: int,
        power_of,
    ) -> None:
        """Integrate idle leakage piecewise over config residencies.

        ``cores`` are :class:`~repro.core.scheduler.CoreState` objects,
        ``power_of(config)`` maps a configuration to its static nJ per
        cycle.  Within one core, idle cycles are grouped by power value
        before multiplying (see module docstring).
        """
        for core in cores:
            per_power: Dict[float, int] = {}
            for start, end, config, busy in core.residency_intervals(makespan):
                idle_cycles = (end - start) - busy
                if idle_cycles < 0:
                    raise ValidationError(
                        "ledger.idle",
                        f"core {core.index}: busy {busy} cycles exceed the "
                        f"[{start}, {end}) residency interval",
                    )
                power = power_of(config)
                per_power[power] = per_power.get(power, 0) + idle_cycles
            for power, cycles in per_power.items():
                self.post_idle(core.index, cycles, power)
        self.closed = True

    # -- derived totals ------------------------------------------------------

    @property
    def execution_nj(self) -> float:
        """Net execution energy (dynamic + busy static, refunds netted)."""
        return self.dynamic_nj + self.busy_static_nj

    @property
    def token_granted_nj(self) -> float:
        """Total power tokens granted (``fsum`` over the account)."""
        return math.fsum(self.token_grants)

    @property
    def token_refunded_nj(self) -> float:
        """Total power tokens refunded (``fsum`` over the account)."""
        return math.fsum(self.token_refunds)

    @property
    def dynamic_with_overheads_nj(self) -> float:
        """The result's ``dynamic_energy_nj`` bucket (incl. overheads)."""
        return self.dynamic_nj + self.reconfig_nj + self.overhead_nj

    @property
    def total_nj(self) -> float:
        """Grand total: idle + busy static + dynamic + overheads."""
        return (
            self.idle_nj
            + self.busy_static_nj
            + self.dynamic_nj
            + self.reconfig_nj
            + self.overhead_nj
        )

    # -- checks --------------------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise ValidationError(
                "ledger.closed", "cannot post after close_idle()"
            )

    def _compare(self, check: str, ledger: float, reported: float) -> None:
        if not _close(ledger, reported):
            raise ValidationError(
                check,
                f"ledger accrued {ledger!r} nJ but the simulation reported "
                f"{reported!r} nJ (diff {reported - ledger:+.6g})",
            )

    def check(self, result, records: Optional[Sequence] = None) -> None:
        """Assert the ledger agrees with a ``SimulationResult``.

        ``records`` defaults to ``result.jobs``; pass explicitly when
        checking a partial view.  Raises :class:`ValidationError` on the
        first disagreement.
        """
        if records is None:
            records = result.jobs
        self._compare("ledger.idle", self.idle_nj, result.idle_energy_nj)
        self._compare(
            "ledger.busy_static",
            self.busy_static_nj,
            result.busy_static_energy_nj,
        )
        self._compare(
            "ledger.dynamic",
            self.dynamic_with_overheads_nj,
            result.dynamic_energy_nj,
        )
        self._compare(
            "ledger.reconfig", self.reconfig_nj, result.reconfig_energy_nj
        )
        self._compare(
            "ledger.overhead",
            self.overhead_nj,
            result.profiling_overhead_nj,
        )
        self._compare("ledger.total", self.total_nj, result.total_energy_nj)

        # Per-job attribution: each record's energy is what the ledger
        # actually charged that job, and the attributions sum to the
        # net execution energy.
        for record in records:
            attributed = self.per_job_nj.get(record.job_id)
            if attributed is None:
                raise ValidationError(
                    "ledger.job",
                    f"job {record.job_id} completed but was never charged",
                )
            if not _close(attributed, record.energy_nj):
                raise ValidationError(
                    "ledger.job",
                    f"job {record.job_id}: ledger charged {attributed!r} nJ "
                    f"but its record reports {record.energy_nj!r} nJ",
                )
        self._compare(
            "ledger.job_sum",
            math.fsum(self.per_job_nj.values()),
            self.execution_nj,
        )
        # Per-core attribution: cores partition the grand total.
        self._compare(
            "ledger.core_sum",
            math.fsum(self.per_core_nj.values()),
            self.total_nj,
        )

        # Token conservation (power axis): every dispatch spent tokens,
        # and granted − refunded equals the net execution charges.
        if self.token_grants:
            if len(self.token_grants) != self.dispatches:
                raise ValidationError(
                    "token.count",
                    f"{self.dispatches} dispatches but "
                    f"{len(self.token_grants)} token grants — a dispatch "
                    "bypassed the power budget",
                )
            if len(self.token_refunds) != self.refunds:
                raise ValidationError(
                    "token.count",
                    f"{self.refunds} refunds but "
                    f"{len(self.token_refunds)} token refunds — a "
                    "preemption leaked its grant",
                )
            self._compare(
                "token.conservation",
                self.token_granted_nj - self.token_refunded_nj,
                self.execution_nj,
            )
