"""Replay a recorded JSONL trace against an event-sourced ledger.

A simulation trace (:mod:`repro.obs`) carries every accounting event a
run made: ``energy_accrued`` charges, ``config_installed``
reconfiguration costs, ``job_preempted`` refunds and ``job_completed``
attributions.  :func:`replay_trace` rebuilds the energy ledger purely
from those events and checks the stream's internal consistency — no
simulation, store or energy table required, so a trace file alone is
auditable after the fact (the CLI ``validate`` subcommand).

Checks performed:

* event cycles are monotonically non-decreasing;
* every ``job_preempted`` matches an open execution on that core, its
  ``fraction_run`` lies in ``[0, 1)``, its refunds are non-negative
  and the refunded share equals ``(1 - fraction_run)`` of the charges;
* every ``job_completed`` closes an open execution on that core, and
  its ``energy_nj`` equals the net charge (dispatch charges minus
  refunds) the trace accrued for that job;
* ``waiting_cycles`` are non-negative, and at least the job's
  first-dispatch wait when the trace carries the arrival;
* every ``task_ready`` (DAG release) registers a job exactly once —
  releases are the DAG analogue of arrivals; every ``deadline_miss``
  names a job that completed, with a positive overshoot satisfying
  ``cycle - miss_cycles == deadline_cycle``;
* every ``token_grant`` (power axis) matches an open execution and
  equals its dispatch charges; in a powered trace every dispatch is
  granted, preemptions refund, and the granted-minus-refunded total
  equals the net execution energy (token conservation, offline);
* at end of trace no execution is left open, and every arrived job
  either completed or was never dispatched (jobs may legitimately
  still be queued only if the trace was truncated — reported, not
  fatal, via :attr:`ReplayReport.unfinished_jobs`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.events import (
    ConfigInstalled,
    DeadlineMiss,
    EnergyAccrued,
    JobArrived,
    JobCompleted,
    JobPreempted,
    PowerThrottled,
    TaskReady,
    TokenGrant,
    TraceEvent,
)

from .ledger import ABS_TOLERANCE, REL_TOLERANCE, ValidationError

__all__ = ["ReplayReport", "replay_trace"]


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOLERANCE, abs_tol=ABS_TOLERANCE)


@dataclass
class _OpenExecution:
    job_id: int
    dynamic_nj: float
    static_nj: float
    overhead_nj: float
    #: Power tokens held by this execution (``None`` = no grant seen).
    token_nj: Optional[float] = None


@dataclass
class ReplayReport:
    """Outcome of one trace replay (all checks passed)."""

    events: int
    arrivals: int
    completions: int
    preemptions: int
    reconfigurations: int
    #: Net execution energy accrued by the trace (dynamic + static,
    #: refunds netted; excludes overheads and idle, which dispatch-time
    #: events cannot carry).
    execution_nj: float
    overhead_nj: float
    reconfig_nj: float
    #: Net charge per job over all its slices.
    per_job_nj: Dict[int, float] = field(default_factory=dict)
    #: Jobs that arrived but neither completed nor were dispatched —
    #: nonempty only for truncated traces.
    unfinished_jobs: Tuple[int, ...] = ()
    #: DAG task releases (``task_ready`` events) observed in the trace.
    releases: int = 0
    #: ``deadline_miss`` events observed in the trace.
    deadline_misses: int = 0
    #: ``token_grant`` events observed (power axis enabled for the run).
    token_grants: int = 0
    #: ``power_throttled`` events (waits, degradations, overdrafts).
    power_throttled: int = 0
    #: Net tokens consumed: granted minus refunded-on-preemption.  For a
    #: complete powered trace this equals :attr:`execution_nj`.
    tokens_net_nj: float = 0.0

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        lines = [
            f"events:            {self.events}",
            f"arrivals:          {self.arrivals}",
            f"completions:       {self.completions}",
            f"preemptions:       {self.preemptions}",
            f"reconfigurations:  {self.reconfigurations}",
            f"execution energy:  {self.execution_nj / 1e6:.4f} mJ "
            "(net of refunds)",
            f"profiling overhead:{self.overhead_nj / 1e6:.4f} mJ",
            f"reconfig energy:   {self.reconfig_nj / 1e6:.4f} mJ",
            "ledger: conserved (charges - refunds == per-job attributions)",
        ]
        if self.token_grants:
            lines.insert(
                -1,
                f"token grants:      {self.token_grants} "
                f"({self.tokens_net_nj / 1e6:.4f} mJ net, "
                f"{self.power_throttled} throttle events)",
            )
        if self.releases or self.deadline_misses:
            lines.insert(
                2,
                f"task releases:     {self.releases}",
            )
            lines.insert(
                3,
                f"deadline misses:   {self.deadline_misses}",
            )
        if self.unfinished_jobs:
            lines.append(
                f"warning: {len(self.unfinished_jobs)} arrived jobs never "
                "completed (truncated trace?)"
            )
        return "\n".join(lines)


def replay_trace(events: Iterable[TraceEvent]) -> ReplayReport:
    """Re-derive and check the energy ledger of a recorded trace.

    Raises :class:`~repro.validate.ledger.ValidationError` on the first
    inconsistency; returns a :class:`ReplayReport` otherwise.
    """
    open_execs: Dict[int, _OpenExecution] = {}
    per_job: Dict[int, float] = {}
    arrived: Dict[int, int] = {}
    completed: set = set()
    execution_nj = 0.0
    overhead_nj = 0.0
    reconfig_nj = 0.0
    counts = {"events": 0, "arrivals": 0, "completions": 0,
              "preemptions": 0, "reconfigurations": 0,
              "releases": 0, "deadline_misses": 0,
              "token_grants": 0, "power_throttled": 0}
    token_granted_nj: List[float] = []
    token_refunded_nj: List[float] = []
    dispatches = 0
    last_cycle = -1

    for index, event in enumerate(events):
        counts["events"] += 1
        cycle = getattr(event, "cycle", None)
        if cycle is None or cycle < last_cycle:
            raise ValidationError(
                "replay.order",
                f"event {index} ({event.kind}) at cycle {cycle} precedes "
                f"cycle {last_cycle}",
            )
        last_cycle = cycle

        if isinstance(event, JobArrived):
            counts["arrivals"] += 1
            arrived[event.job_id] = cycle

        elif isinstance(event, TaskReady):
            counts["releases"] += 1
            if event.job_id in arrived:
                raise ValidationError(
                    "replay.release",
                    f"event {index}: job {event.job_id} released twice "
                    "(or released after arriving)",
                )
            # A release is the DAG analogue of an arrival: the task
            # enters the ready queue here, so downstream accounting
            # (waiting, completion, drain) treats it identically.
            arrived[event.job_id] = cycle

        elif isinstance(event, DeadlineMiss):
            counts["deadline_misses"] += 1
            if event.job_id not in completed:
                raise ValidationError(
                    "replay.deadline",
                    f"event {index}: deadline miss for job {event.job_id} "
                    "which has not completed",
                )
            if event.miss_cycles <= 0:
                raise ValidationError(
                    "replay.deadline",
                    f"event {index}: job {event.job_id} miss_cycles "
                    f"{event.miss_cycles} must be positive",
                )
            if cycle - event.miss_cycles != event.deadline_cycle:
                raise ValidationError(
                    "replay.deadline",
                    f"event {index}: job {event.job_id} miss arithmetic "
                    f"broken: {cycle} - {event.miss_cycles} != "
                    f"{event.deadline_cycle}",
                )

        elif isinstance(event, ConfigInstalled):
            counts["reconfigurations"] += 1
            if event.energy_nj < 0 or event.cycles < 0:
                raise ValidationError(
                    "replay.reconfig",
                    f"event {index}: negative reconfiguration cost",
                )
            reconfig_nj += event.energy_nj

        elif isinstance(event, EnergyAccrued):
            if event.core_index in open_execs:
                raise ValidationError(
                    "replay.dispatch",
                    f"event {index}: core {event.core_index} charged for "
                    f"job {event.job_id} while job "
                    f"{open_execs[event.core_index].job_id} is still "
                    "running on it",
                )
            if min(event.dynamic_nj, event.static_nj, event.overhead_nj) < 0:
                raise ValidationError(
                    "replay.dispatch",
                    f"event {index}: negative charge for job "
                    f"{event.job_id}",
                )
            open_execs[event.core_index] = _OpenExecution(
                job_id=event.job_id,
                dynamic_nj=event.dynamic_nj,
                static_nj=event.static_nj,
                overhead_nj=event.overhead_nj,
            )
            dispatches += 1
            execution_nj += event.dynamic_nj + event.static_nj
            overhead_nj += event.overhead_nj
            per_job[event.job_id] = (
                per_job.get(event.job_id, 0.0)
                + (event.dynamic_nj + event.static_nj)
            )

        elif isinstance(event, TokenGrant):
            counts["token_grants"] += 1
            execution = open_execs.get(event.core_index)
            if execution is None or execution.job_id != event.job_id:
                raise ValidationError(
                    "replay.token",
                    f"event {index}: token grant for job {event.job_id} on "
                    f"core {event.core_index} matches no open execution",
                )
            if execution.token_nj is not None:
                raise ValidationError(
                    "replay.token",
                    f"event {index}: job {event.job_id} granted tokens "
                    "twice for one execution",
                )
            charges = execution.dynamic_nj + execution.static_nj
            if not _close(event.tokens_nj, charges):
                raise ValidationError(
                    "replay.token",
                    f"event {index}: job {event.job_id} granted "
                    f"{event.tokens_nj!r} nJ of tokens but its dispatch "
                    f"charged {charges!r} nJ",
                )
            execution.token_nj = event.tokens_nj
            token_granted_nj.append(event.tokens_nj)

        elif isinstance(event, PowerThrottled):
            counts["power_throttled"] += 1
            if event.price_nj < 0:
                raise ValidationError(
                    "replay.token",
                    f"event {index}: negative throttle price for job "
                    f"{event.job_id}",
                )

        elif isinstance(event, JobPreempted):
            counts["preemptions"] += 1
            execution = open_execs.pop(event.core_index, None)
            if execution is None or execution.job_id != event.job_id:
                raise ValidationError(
                    "replay.preempt",
                    f"event {index}: preemption of job {event.job_id} on "
                    f"core {event.core_index} matches no open execution",
                )
            if not 0.0 <= event.fraction_run < 1.0:
                raise ValidationError(
                    "replay.preempt",
                    f"event {index}: fraction_run {event.fraction_run!r} "
                    "outside [0, 1)",
                )
            refunds = (
                event.refunded_dynamic_nj,
                event.refunded_static_nj,
                event.refunded_overhead_nj,
            )
            if min(refunds) < 0:
                raise ValidationError(
                    "replay.preempt",
                    f"event {index}: negative refund for job "
                    f"{event.job_id}",
                )
            share = 1.0 - event.fraction_run
            for name, refunded, charged in (
                ("dynamic", event.refunded_dynamic_nj, execution.dynamic_nj),
                ("static", event.refunded_static_nj, execution.static_nj),
                ("overhead", event.refunded_overhead_nj,
                 execution.overhead_nj),
            ):
                if not _close(refunded, charged * share):
                    raise ValidationError(
                        "replay.preempt",
                        f"event {index}: job {event.job_id} {name} refund "
                        f"{refunded!r} is not (1 - fraction_run) = "
                        f"{share!r} of the {charged!r} charged",
                    )
            if execution.token_nj is not None:
                token_refunded_nj.append(
                    event.refunded_dynamic_nj + event.refunded_static_nj
                )
            elif token_granted_nj:
                raise ValidationError(
                    "replay.token",
                    f"event {index}: job {event.job_id} preempted without "
                    "a token grant in a powered trace (tokens leaked)",
                )
            execution_nj -= (
                event.refunded_dynamic_nj + event.refunded_static_nj
            )
            overhead_nj -= event.refunded_overhead_nj
            per_job[event.job_id] = per_job.get(event.job_id, 0.0) - (
                event.refunded_dynamic_nj + event.refunded_static_nj
            )

        elif isinstance(event, JobCompleted):
            counts["completions"] += 1
            execution = open_execs.pop(event.core_index, None)
            if execution is None or execution.job_id != event.job_id:
                raise ValidationError(
                    "replay.complete",
                    f"event {index}: completion of job {event.job_id} on "
                    f"core {event.core_index} matches no open execution",
                )
            if event.job_id in completed:
                raise ValidationError(
                    "replay.complete",
                    f"event {index}: job {event.job_id} completed twice",
                )
            completed.add(event.job_id)
            if event.waiting_cycles < 0:
                raise ValidationError(
                    "replay.complete",
                    f"event {index}: job {event.job_id} waiting_cycles "
                    f"{event.waiting_cycles} is negative",
                )
            if execution.token_nj is None and token_granted_nj:
                raise ValidationError(
                    "replay.token",
                    f"event {index}: job {event.job_id} completed without "
                    "a token grant in a powered trace",
                )
            attributed = per_job.get(event.job_id, 0.0)
            if not _close(attributed, event.energy_nj):
                raise ValidationError(
                    "replay.attribution",
                    f"event {index}: job {event.job_id} reports "
                    f"{event.energy_nj!r} nJ but its slices net to "
                    f"{attributed!r} nJ",
                )

    if open_execs:
        stuck = sorted(e.job_id for e in open_execs.values())
        raise ValidationError(
            "replay.drain",
            f"trace ended with executions still open for jobs {stuck}",
        )
    unfinished = tuple(sorted(
        job_id for job_id in arrived
        if job_id not in completed and job_id not in per_job
    ))
    dispatched_unfinished = sorted(
        job_id for job_id in per_job
        if job_id not in completed
    )
    if dispatched_unfinished:
        raise ValidationError(
            "replay.drain",
            f"jobs {dispatched_unfinished} were charged but never "
            "completed",
        )
    tokens_net = 0.0
    if token_granted_nj:
        if counts["token_grants"] != dispatches:
            raise ValidationError(
                "replay.token",
                f"powered trace granted tokens on {counts['token_grants']} "
                f"of {dispatches} dispatches",
            )
        tokens_net = (
            math.fsum(token_granted_nj) - math.fsum(token_refunded_nj)
        )
        if not _close(tokens_net, execution_nj):
            raise ValidationError(
                "replay.token",
                f"tokens not conserved: granted - refunded nets to "
                f"{tokens_net!r} nJ but the trace accrued "
                f"{execution_nj!r} nJ of execution energy",
            )
    return ReplayReport(
        events=counts["events"],
        arrivals=counts["arrivals"],
        completions=counts["completions"],
        preemptions=counts["preemptions"],
        reconfigurations=counts["reconfigurations"],
        execution_nj=execution_nj,
        overhead_nj=overhead_nj,
        reconfig_nj=reconfig_nj,
        per_job_nj=dict(per_job),
        unfinished_jobs=unfinished,
        releases=counts["releases"],
        deadline_misses=counts["deadline_misses"],
        token_grants=counts["token_grants"],
        power_throttled=counts["power_throttled"],
        tokens_net_nj=tokens_net,
    )
