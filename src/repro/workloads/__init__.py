"""Workload substrate: synthetic EEMBC-analogue benchmarks, trace
generation, hardware counters and arrival streams.
"""

from .arrivals import (
    STREAM_CHUNK,
    ArrivalProcess,
    DiurnalProcess,
    JobArrival,
    MMPPProcess,
    PoissonProcess,
    QoSProcess,
    make_process,
    poisson_arrivals,
    uniform_arrivals,
    with_qos,
)
from .benchmark import BenchmarkSpec, InstructionMix, Trace
from .dag import (
    TaskGraph,
    TaskSpec,
    dag_arrivals,
    describe_graphs,
    dump_graphs,
    generate_task_graphs,
    load_graphs,
)
from .counters import (
    ALL_COUNTER_NAMES,
    ANN_SELECTED_FEATURES,
    HardwareCounters,
    collect_counters,
)
from .eembc import EEMBC_DOMAINS, EEMBC_NAMES, eembc_benchmark, eembc_suite
from .locality import (
    miss_ratio_curve,
    reuse_distance_histogram,
    working_set_curve,
)
from .tracegen import (
    HotspotAccess,
    PhasedTraceMix,
    LoopedArray,
    PointerChase,
    RandomAccess,
    SequentialStream,
    StridedAccess,
    TraceComponent,
    TraceMix,
    interleave_chunks,
)

__all__ = [
    "ALL_COUNTER_NAMES",
    "ANN_SELECTED_FEATURES",
    "ArrivalProcess",
    "BenchmarkSpec",
    "DiurnalProcess",
    "MMPPProcess",
    "PoissonProcess",
    "QoSProcess",
    "STREAM_CHUNK",
    "EEMBC_DOMAINS",
    "EEMBC_NAMES",
    "HardwareCounters",
    "HotspotAccess",
    "InstructionMix",
    "JobArrival",
    "LoopedArray",
    "PhasedTraceMix",
    "PointerChase",
    "RandomAccess",
    "SequentialStream",
    "StridedAccess",
    "TaskGraph",
    "TaskSpec",
    "Trace",
    "TraceComponent",
    "TraceMix",
    "collect_counters",
    "dag_arrivals",
    "describe_graphs",
    "dump_graphs",
    "generate_task_graphs",
    "load_graphs",
    "eembc_benchmark",
    "eembc_suite",
    "interleave_chunks",
    "make_process",
    "miss_ratio_curve",
    "poisson_arrivals",
    "reuse_distance_histogram",
    "uniform_arrivals",
    "with_qos",
    "working_set_curve",
]
